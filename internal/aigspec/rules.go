package aigspec

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/sqlmini"
	"github.com/aigrepro/aig/internal/srcpos"
)

// parseRule parses one rule section into a semantic rule.
func parseRule(a *aig.AIG, rs ruleSection) error {
	if _, ok := a.DTD.Production(rs.elem); !ok {
		return errAt(rs.pos, "rule for undeclared element %q", rs.elem)
	}
	if _, dup := a.Rules[rs.elem]; dup {
		return errAt(rs.pos, "duplicate rule for %q", rs.elem)
	}
	r := &aig.Rule{Elem: rs.elem, Inh: make(map[string]*aig.InhRule), Pos: rs.pos}
	a.Rules[rs.elem] = r

	for _, l := range rs.lines {
		if err := parseClause(a, r, l.text, l.pos); err != nil {
			return err
		}
	}
	if len(r.Inh) == 0 {
		r.Inh = nil
	}
	return nil
}

func parseClause(a *aig.AIG, r *aig.Rule, text string, pos srcpos.Pos) error {
	switch {
	case strings.HasPrefix(text, "text "):
		src, err := parseSrc(strings.TrimSpace(strings.TrimPrefix(text, "text ")))
		if err != nil {
			return errAt(pos, "%v", err)
		}
		r.TextSrc = src
		return nil

	case strings.HasPrefix(text, "syn "):
		member, expr, err := parseSynClause(a, strings.TrimPrefix(text, "syn "))
		if err != nil {
			return errAt(pos, "%v", err)
		}
		if r.Syn == nil {
			r.Syn = &aig.SynRule{Exprs: make(map[string]aig.SynExpr), Pos: make(map[string]srcpos.Pos)}
		}
		r.Syn.Exprs[member] = expr
		r.Syn.Pos[member] = pos
		return nil

	case strings.HasPrefix(text, "child "):
		return parseChildClause(a, r, nil, strings.TrimPrefix(text, "child "), pos)

	case strings.HasPrefix(text, "cond query"):
		q, params, err := parseQueryClause(strings.TrimPrefix(text, "cond "))
		if err != nil {
			return errAt(pos, "%v", err)
		}
		r.Cond = q
		r.CondParams = params
		r.CondPos = pos
		return nil

	case strings.HasPrefix(text, "branch "):
		rest := strings.TrimPrefix(text, "branch ")
		numStr, tail, found := strings.Cut(rest, " ")
		if !found {
			return errAt(pos, "branch needs a number and a clause")
		}
		num, err := strconv.Atoi(numStr)
		if err != nil || num < 1 {
			return errAt(pos, "bad branch number %q", numStr)
		}
		for len(r.Branches) < num {
			r.Branches = append(r.Branches, aig.Branch{})
		}
		b := &r.Branches[num-1]
		tail = strings.TrimSpace(tail)
		switch {
		case strings.HasPrefix(tail, "child "):
			return parseChildClause(a, r, b, strings.TrimPrefix(tail, "child "), pos)
		case strings.HasPrefix(tail, "syn "):
			member, expr, err := parseSynClause(a, strings.TrimPrefix(tail, "syn "))
			if err != nil {
				return errAt(pos, "%v", err)
			}
			if b.Syn == nil {
				b.Syn = &aig.SynRule{Exprs: make(map[string]aig.SynExpr), Pos: make(map[string]srcpos.Pos)}
			}
			b.Syn.Exprs[member] = expr
			b.Syn.Pos[member] = pos
			return nil
		default:
			return errAt(pos, "branch clause must be 'child' or 'syn': %q", tail)
		}

	default:
		return errAt(pos, "unrecognized rule clause %q", text)
	}
}

// parseChildClause handles the child rule forms; branch selects a choice
// alternative's rule instead of the shared map.
func parseChildClause(a *aig.AIG, r *aig.Rule, branch *aig.Branch, text string, pos srcpos.Pos) error {
	name, rest, found := strings.Cut(text, " ")
	if !found {
		return errAt(pos, "child clause needs a form: %q", text)
	}
	getRule := func() *aig.InhRule {
		if branch != nil {
			if branch.Inh == nil {
				branch.Inh = &aig.InhRule{Child: name, Pos: pos}
			}
			return branch.Inh
		}
		ir := r.Inh[name]
		if ir == nil {
			ir = &aig.InhRule{Child: name, Pos: pos}
			r.Inh[name] = ir
		}
		return ir
	}
	rest = strings.TrimSpace(rest)
	switch {
	case strings.HasPrefix(rest, "from query"):
		q, params, err := parseQueryClause(rest[len("from "):])
		if err != nil {
			return errAt(pos, "%v", err)
		}
		ir := getRule()
		if ir.Query != nil {
			return errAt(pos, "child %s already has a query", name)
		}
		ir.Query = q
		ir.QueryParams = params
		ir.QueryPos = pos
		return nil

	case strings.HasPrefix(rest, "collection "):
		// child X collection member from query [...]: SQL;
		rest = strings.TrimPrefix(rest, "collection ")
		member, tail, found := strings.Cut(rest, " ")
		if !found || !strings.HasPrefix(strings.TrimSpace(tail), "from query") {
			return errAt(pos, "collection clause must be 'collection <member> from query ...'")
		}
		q, params, err := parseQueryClause(strings.TrimSpace(tail)[len("from "):])
		if err != nil {
			return errAt(pos, "%v", err)
		}
		ir := getRule()
		ir.Query = q
		ir.QueryParams = params
		ir.QueryPos = pos
		ir.TargetCollection = member
		return nil

	case strings.HasPrefix(rest, "set "):
		// child X set member = src
		assign := strings.TrimPrefix(rest, "set ")
		member, srcText, found := strings.Cut(assign, "=")
		if !found {
			return errAt(pos, "set clause needs '=': %q", assign)
		}
		src, err := parseSrc(strings.TrimSpace(srcText))
		if err != nil {
			return errAt(pos, "%v", err)
		}
		ir := getRule()
		ir.Copies = append(ir.Copies, aig.Copy(strings.TrimSpace(member), src))
		return nil

	case strings.HasPrefix(rest, "copy "):
		// child X copy m1, m2 from inh(elem)
		body := strings.TrimPrefix(rest, "copy ")
		membersText, fromText, found := strings.Cut(body, " from ")
		if !found {
			return errAt(pos, "copy clause needs 'from': %q", body)
		}
		src, err := parseSrc(strings.TrimSpace(fromText))
		if err != nil {
			return errAt(pos, "%v", err)
		}
		if src.Member != "" {
			return errAt(pos, "copy ... from takes a whole attribute, not a member")
		}
		ir := getRule()
		for _, m := range strings.Split(membersText, ",") {
			m = strings.TrimSpace(m)
			ir.Copies = append(ir.Copies, aig.Copy(m, aig.SourceRef{Side: src.Side, Elem: src.Elem, Member: m}))
		}
		return nil

	case strings.HasPrefix(rest, "iterate "):
		// child X iterate src — star production driven by a collection.
		src, err := parseSrc(strings.TrimSpace(strings.TrimPrefix(rest, "iterate ")))
		if err != nil {
			return errAt(pos, "%v", err)
		}
		ir := getRule()
		ir.Copies = append(ir.Copies, aig.Copy("", src))
		return nil

	default:
		return errAt(pos, "unrecognized child form %q", rest)
	}
}

// parseQueryClause parses "query [v = inh(elem), V = syn(x).m]: SQL;".
func parseQueryClause(text string) (*sqlmini.Query, map[string]aig.SourceRef, error) {
	if !strings.HasPrefix(text, "query") {
		return nil, nil, fmt.Errorf("expected 'query', got %q", text)
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, "query"))
	params := make(map[string]aig.SourceRef)
	if strings.HasPrefix(rest, "[") {
		close := strings.IndexByte(rest, ']')
		if close < 0 {
			return nil, nil, fmt.Errorf("unterminated parameter list")
		}
		for _, binding := range splitTop(rest[1:close], ',') {
			binding = strings.TrimSpace(binding)
			if binding == "" {
				continue
			}
			name, srcText, found := strings.Cut(binding, "=")
			if !found {
				return nil, nil, fmt.Errorf("parameter binding needs '=': %q", binding)
			}
			src, err := parseSrc(strings.TrimSpace(srcText))
			if err != nil {
				return nil, nil, err
			}
			params[strings.TrimSpace(name)] = src
		}
		rest = strings.TrimSpace(rest[close+1:])
	}
	if !strings.HasPrefix(rest, ":") {
		return nil, nil, fmt.Errorf("query needs ':' before SQL")
	}
	sqlText := strings.TrimSpace(rest[1:])
	semi := strings.IndexByte(sqlText, ';')
	if semi < 0 {
		return nil, nil, fmt.Errorf("SQL must end with ';'")
	}
	q, err := sqlmini.Parse(strings.TrimSpace(sqlText[:semi]))
	if err != nil {
		return nil, nil, err
	}
	if len(params) == 0 {
		params = nil
	}
	return q, params, nil
}

// parseSrc parses "inh(elem).member", "syn(elem).member" or "inh(elem)".
func parseSrc(text string) (aig.SourceRef, error) {
	var side aig.Side
	switch {
	case strings.HasPrefix(text, "inh("):
		side = aig.InhSide
	case strings.HasPrefix(text, "syn("):
		side = aig.SynSide
	default:
		return aig.SourceRef{}, fmt.Errorf("source must be inh(...) or syn(...): %q", text)
	}
	rest := text[4:]
	close := strings.IndexByte(rest, ')')
	if close < 0 {
		return aig.SourceRef{}, fmt.Errorf("unterminated source reference %q", text)
	}
	elem := strings.TrimSpace(rest[:close])
	member := ""
	tail := strings.TrimSpace(rest[close+1:])
	if tail != "" {
		if !strings.HasPrefix(tail, ".") {
			return aig.SourceRef{}, fmt.Errorf("junk after source reference: %q", text)
		}
		member = strings.TrimSpace(tail[1:])
	}
	return aig.SourceRef{Side: side, Elem: elem, Member: member}, nil
}

// parseSynClause parses "member = expr".
func parseSynClause(a *aig.AIG, text string) (string, aig.SynExpr, error) {
	member, exprText, found := strings.Cut(text, "=")
	if !found {
		return "", nil, fmt.Errorf("syn clause needs '=': %q", text)
	}
	expr, err := parseSynExpr(a, strings.TrimSpace(exprText))
	if err != nil {
		return "", nil, err
	}
	return strings.TrimSpace(member), expr, nil
}

// parseSynExpr parses the g-function expressions.
func parseSynExpr(a *aig.AIG, text string) (aig.SynExpr, error) {
	switch {
	case text == "empty":
		return aig.EmptyOf{}, nil
	case strings.HasPrefix(text, "singleton(") && strings.HasSuffix(text, ")"):
		var srcs []aig.SourceRef
		for _, part := range splitTop(text[len("singleton("):len(text)-1], ',') {
			src, err := parseSrc(strings.TrimSpace(part))
			if err != nil {
				return nil, err
			}
			srcs = append(srcs, src)
		}
		return aig.SingletonOf{Srcs: srcs}, nil
	case strings.HasPrefix(text, "union(") && strings.HasSuffix(text, ")"):
		var terms []aig.SynExpr
		for _, part := range splitTop(text[len("union("):len(text)-1], ',') {
			term, err := parseSynExpr(a, strings.TrimSpace(part))
			if err != nil {
				return nil, err
			}
			terms = append(terms, term)
		}
		return aig.UnionOf{Terms: terms}, nil
	case strings.HasPrefix(text, "collect(") && strings.HasSuffix(text, ")"):
		body := text[len("collect(") : len(text)-1]
		child, member, found := strings.Cut(body, ".")
		if !found {
			return nil, fmt.Errorf("collect needs child.member: %q", text)
		}
		return aig.CollectChildren{Child: strings.TrimSpace(child), Member: strings.TrimSpace(member)}, nil
	default:
		src, err := parseSrc(text)
		if err != nil {
			return nil, err
		}
		// Scalar or collection reference? Decide from the declaration.
		var decl aig.AttrDecl
		if src.Side == aig.InhSide {
			decl = a.Inh[src.Elem]
		} else {
			decl = a.Syn[src.Elem]
		}
		if m, ok := decl.Member(src.Member); ok && m.Kind != aig.Scalar {
			return aig.CollectionOf{Src: src}, nil
		}
		return aig.ScalarOf{Src: src}, nil
	}
}
