// Package aigspec parses the textual AIG specification language — the
// machine-readable counterpart of the paper's Fig. 2. A specification
// bundles the DTD, the semantic-attribute declarations, the semantic
// rules with their embedded SQL, and the XML constraints:
//
//	dtd
//	  <!ELEMENT report (patient*)>
//	  <!ELEMENT SSN (#PCDATA)>
//	  ...
//	end
//
//	inh report (date)
//	inh patient (date, SSN, pname, policy)
//	inh bill (set trIdS(trId))
//	syn treatments (set trIdS(trId))
//	inh price (val:int)
//
//	rule report
//	  child patient from query [v = inh(report)]:
//	    select p.SSN, p.pname, p.policy
//	    from DB1:patient p, DB1:visitInfo i
//	    where p.SSN = i.SSN and i.date = $v.date;
//	  child patient set date = inh(report).date
//	end
//
//	rule patient
//	  child SSN set val = inh(patient).SSN
//	  child treatments copy date, SSN, policy from inh(patient)
//	  child bill set trIdS = syn(treatments).trIdS
//	end
//
//	rule treatments
//	  child treatment from query [v = inh(treatments)]: select ... ;
//	  syn trIdS = collect(treatment.trIdS)
//	end
//
//	rule trId
//	  text inh(trId).val
//	  syn val = inh(trId).val
//	end
//
//	rule result            # choice production: result -> cheap | pricey
//	  cond query [v = inh(result)]: select band from DB:bands where trId = $v.trId;
//	  branch 1 child cheap set val = inh(result).trId
//	  branch 2 child pricey set val = inh(result).trId
//	end
//
//	constraints
//	  patient(item.trId -> item)
//	  patient(treatment.trId [= item.trId)
//	end
//
// Lines starting with '#' or '--' are comments. SQL blocks run from the
// ':' after a query header to the next ';'.
package aigspec

import (
	"fmt"
	"strings"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/dtd"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/srcpos"
	"github.com/aigrepro/aig/internal/xconstraint"
)

// Parse parses a complete AIG specification. Parse errors are (or wrap)
// *srcpos.Error values positioned within input, and the resulting
// grammar's rules, attribute members, constraints and DTD types carry
// their source positions for diagnostics.
func Parse(input string) (*aig.AIG, error) {
	p := &parser{}
	if err := p.splitSections(input); err != nil {
		return nil, err
	}
	if p.dtdText == "" {
		return nil, fmt.Errorf("aigspec: missing dtd section")
	}
	// Section bodies keep their raw lines, so positions reported relative
	// to a section are off by a line shift only; columns are exact.
	d, err := dtd.Parse(p.dtdText)
	if err != nil {
		return nil, srcpos.ShiftErr(err, p.dtdStart-1)
	}
	for name, pos := range d.Pos {
		d.Pos[name] = pos.Shift(p.dtdStart - 1)
	}
	a := aig.New(d)
	for _, decl := range p.attrLines {
		if err := parseAttrDecl(a, decl.text, decl.pos); err != nil {
			return nil, err
		}
	}
	for _, rs := range p.ruleSections {
		if err := parseRule(a, rs); err != nil {
			return nil, err
		}
	}
	if p.sourcesText != "" {
		srcs, keys, fks, err := parseSources(p.sourcesText, p.sourcesStart)
		if err != nil {
			return nil, err
		}
		a.Sources = srcs
		a.SourceKeys = keys
		a.SourceFKs = fks
	}
	if p.constraintText != "" {
		cs, err := xconstraint.ParseAll(p.constraintText)
		if err != nil {
			return nil, srcpos.ShiftErr(err, p.constraintStart-1)
		}
		for i := range cs {
			cs[i].Pos = cs[i].Pos.Shift(p.constraintStart - 1)
		}
		a.Constraints = cs
	}
	return a, nil
}

// MustParse is Parse panicking on error.
func MustParse(input string) *aig.AIG {
	a, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return a
}

// attrLine is one meaningful line of the spec: its stripped text and the
// position of its first non-space byte.
type attrLine struct {
	text string
	pos  srcpos.Pos
}

type ruleSection struct {
	elem  string
	pos   srcpos.Pos // position of the "rule X" header line
	lines []attrLine
}

type parser struct {
	dtdText         string
	dtdStart        int // 1-based line of the dtd section's first body line
	attrLines       []attrLine
	ruleSections    []ruleSection
	sourcesText     string
	sourcesStart    int
	constraintText  string
	constraintStart int
}

// errAt builds a positioned aigspec error.
func errAt(pos srcpos.Pos, format string, args ...any) error {
	return srcpos.Errorf(pos, "aigspec: "+format, args...)
}

// indentOf returns the 1-based column of a line's first non-space byte.
func indentOf(raw string) int {
	return len(raw) - len(strings.TrimLeft(raw, " \t")) + 1
}

// splitSections does the coarse, line-oriented pass.
func (p *parser) splitSections(input string) error {
	lines := strings.Split(input, "\n")
	i := 0
	n := len(lines)
	strip := func(s string) string {
		s = strings.TrimSpace(s)
		if strings.HasPrefix(s, "#") || strings.HasPrefix(s, "--") {
			return ""
		}
		return s
	}
	// section collects the raw body of a "<keyword> ... end" block,
	// returning the body and the 1-based line its first body line is on.
	section := func(keyword string, headerPos srcpos.Pos) (string, int, error) {
		i++
		start := i + 1
		var body []string
		for i < n && strip(lines[i]) != "end" {
			body = append(body, lines[i])
			i++
		}
		if i == n {
			return "", 0, errAt(headerPos, "unterminated %s section", keyword)
		}
		i++
		return strings.Join(body, "\n"), start, nil
	}
	for i < n {
		line := strip(lines[i])
		pos := srcpos.At(i+1, indentOf(lines[i]))
		switch {
		case line == "":
			i++
		case line == "dtd":
			body, start, err := section("dtd", pos)
			if err != nil {
				return err
			}
			p.dtdText, p.dtdStart = body, start
		case line == "sources":
			body, start, err := section("sources", pos)
			if err != nil {
				return err
			}
			p.sourcesText, p.sourcesStart = body, start
		case line == "constraints":
			body, start, err := section("constraints", pos)
			if err != nil {
				return err
			}
			p.constraintText, p.constraintStart = body, start
		case strings.HasPrefix(line, "inh ") || strings.HasPrefix(line, "syn "):
			p.attrLines = append(p.attrLines, attrLine{text: line, pos: pos})
			i++
		case strings.HasPrefix(line, "rule "):
			elem := strings.TrimSpace(strings.TrimPrefix(line, "rule "))
			if elem == "" {
				return errAt(pos, "rule without element type")
			}
			i++
			rs := ruleSection{elem: elem, pos: pos}
			// Collect rule body, joining SQL continuation lines: a clause
			// containing "query" and ':' extends until a ';'.
			for i < n {
				body := strip(lines[i])
				if body == "end" {
					i++
					break
				}
				if body == "" {
					i++
					continue
				}
				clausePos := srcpos.At(i+1, indentOf(lines[i]))
				if idx := strings.Index(body, ":"); idx >= 0 && strings.Contains(body[:idx+1], "query") {
					// Multi-line SQL until ';'.
					for !strings.Contains(body, ";") {
						i++
						if i >= n || strip(lines[i]) == "end" {
							return errAt(clausePos, "unterminated SQL block (missing ';')")
						}
						body += " " + strip(lines[i])
					}
				}
				rs.lines = append(rs.lines, attrLine{text: body, pos: clausePos})
				i++
				if i > n {
					return errAt(pos, "unterminated rule %s", elem)
				}
			}
			p.ruleSections = append(p.ruleSections, rs)
		default:
			return errAt(pos, "unrecognized directive %q", line)
		}
	}
	return nil
}

// parseSources parses the body of a "sources" section: one declaration
// per line. Table declarations read "SOURCE:table(col, col:kind, ...)"
// (columns default to string, like relstore schema strings); relational
// constraints on those tables read
//
//	key SOURCE:table(col, ...)
//	fkey SOURCE:table(col, ...) -> SOURCE2:table2(col2, ...)
//
// and are returned alongside the schema signature. Constraint lines may
// precede the tables they mention; validation resolves them later.
func parseSources(body string, startLine int) (aig.DeclaredSources, []aig.SourceKey, []aig.SourceFK, error) {
	out := make(aig.DeclaredSources)
	var keys []aig.SourceKey
	var fks []aig.SourceFK
	for li, raw := range strings.Split(body, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "--") {
			continue
		}
		pos := srcpos.At(startLine+li, indentOf(raw))
		switch {
		case strings.HasPrefix(line, "key "):
			src, table, cols, err := parseTableCols(strings.TrimSpace(strings.TrimPrefix(line, "key ")), pos)
			if err != nil {
				return nil, nil, nil, err
			}
			keys = append(keys, aig.SourceKey{Source: src, Table: table, Cols: cols, Pos: pos})
		case strings.HasPrefix(line, "fkey "):
			rest := strings.TrimSpace(strings.TrimPrefix(line, "fkey "))
			left, right, found := strings.Cut(rest, "->")
			if !found {
				return nil, nil, nil, errAt(pos, "fkey needs SRC:table(cols) -> SRC:table(cols): %q", line)
			}
			ls, lt, lc, err := parseTableCols(strings.TrimSpace(left), pos)
			if err != nil {
				return nil, nil, nil, err
			}
			rs, rt, rc, err := parseTableCols(strings.TrimSpace(right), pos)
			if err != nil {
				return nil, nil, nil, err
			}
			fks = append(fks, aig.SourceFK{
				Source: ls, Table: lt, Cols: lc,
				RefSource: rs, RefTable: rt, RefCols: rc,
				Pos: pos,
			})
		default:
			source, rest, found := strings.Cut(line, ":")
			source = strings.TrimSpace(source)
			if !found || source == "" {
				return nil, nil, nil, errAt(pos, "source table needs SOURCE:table(columns): %q", line)
			}
			open := strings.IndexByte(rest, '(')
			if open < 0 || !strings.HasSuffix(rest, ")") {
				return nil, nil, nil, errAt(pos, "source table needs (columns): %q", line)
			}
			table := strings.TrimSpace(rest[:open])
			if table == "" {
				return nil, nil, nil, errAt(pos, "missing table name in %q", line)
			}
			schema, err := relstore.ParseSchema(strings.Split(rest[open+1:len(rest)-1], ","))
			if err != nil {
				return nil, nil, nil, errAt(pos, "%v", err)
			}
			if out[source] == nil {
				out[source] = make(map[string]relstore.Schema)
			}
			if _, dup := out[source][table]; dup {
				return nil, nil, nil, errAt(pos, "table %s:%s declared twice", source, table)
			}
			out[source][table] = schema
		}
	}
	if len(out) == 0 && len(keys) == 0 && len(fks) == 0 {
		return nil, nil, nil, nil
	}
	return out, keys, fks, nil
}

// parseTableCols parses "SOURCE:table(col, col, ...)" — the operand shape
// shared by key and fkey lines — into its parts.
func parseTableCols(s string, pos srcpos.Pos) (source, table string, cols []string, err error) {
	source, rest, found := strings.Cut(s, ":")
	source = strings.TrimSpace(source)
	if !found || source == "" {
		return "", "", nil, errAt(pos, "need SOURCE:table(columns), got %q", s)
	}
	open := strings.IndexByte(rest, '(')
	if open < 0 || !strings.HasSuffix(rest, ")") {
		return "", "", nil, errAt(pos, "need (columns) in %q", s)
	}
	table = strings.TrimSpace(rest[:open])
	if table == "" {
		return "", "", nil, errAt(pos, "missing table name in %q", s)
	}
	for _, c := range strings.Split(rest[open+1:len(rest)-1], ",") {
		c = strings.TrimSpace(c)
		if c == "" {
			return "", "", nil, errAt(pos, "empty column name in %q", s)
		}
		cols = append(cols, c)
	}
	return source, table, cols, nil
}

// parseAttrDecl parses "inh patient (date, SSN)" / "syn treatments (set
// trIdS(trId))".
func parseAttrDecl(a *aig.AIG, text string, pos srcpos.Pos) error {
	side, rawRest, _ := strings.Cut(text, " ")
	restOff := len(side) + 1 + (len(rawRest) - len(strings.TrimLeft(rawRest, " \t")))
	rest := strings.TrimSpace(rawRest)
	open := strings.IndexByte(rest, '(')
	if open < 0 || !strings.HasSuffix(rest, ")") {
		return errAt(pos, "attribute declaration needs (members): %q", text)
	}
	elem := strings.TrimSpace(rest[:open])
	if _, ok := a.DTD.Production(elem); !ok {
		return errAt(pos, "attribute for undeclared element %q", elem)
	}
	body := rest[open+1 : len(rest)-1]
	decl, err := parseMembers(body, pos, restOff+open+1)
	if err != nil {
		if srcpos.PosOf(err).IsValid() {
			return err
		}
		return errAt(pos, "%v", err)
	}
	if side == "inh" {
		a.Inh[elem] = decl
	} else {
		a.Syn[elem] = decl
	}
	return nil
}

// parseMembers parses "date, SSN:string, set trIdS(trId:string), bag B(v)".
// base is the position of the declaration line and bodyOff the byte offset
// of body within it, so each member's position can be recorded.
func parseMembers(body string, base srcpos.Pos, bodyOff int) (aig.AttrDecl, error) {
	var decl aig.AttrDecl
	off := 0
	for _, rawPart := range splitTop(body, ',') {
		part := strings.TrimSpace(rawPart)
		lead := len(rawPart) - len(strings.TrimLeft(rawPart, " \t"))
		mpos := srcpos.At(base.Line, base.Col+bodyOff+off+lead)
		off += len(rawPart) + 1
		if part == "" {
			continue
		}
		kind := aig.Scalar
		switch {
		case strings.HasPrefix(part, "set "):
			kind = aig.Set
			part = strings.TrimSpace(strings.TrimPrefix(part, "set "))
		case strings.HasPrefix(part, "bag "):
			kind = aig.Bag
			part = strings.TrimSpace(strings.TrimPrefix(part, "bag "))
		}
		if kind == aig.Scalar {
			name, kindName, hasKind := strings.Cut(part, ":")
			vk := relstore.KindString
			if hasKind {
				var err error
				vk, err = relstore.ParseKind(kindName)
				if err != nil {
					return decl, errAt(mpos, "%v", err)
				}
			}
			m := aig.ScalarMember(strings.TrimSpace(name), vk)
			m.Pos = mpos
			decl.Members = append(decl.Members, m)
			continue
		}
		open := strings.IndexByte(part, '(')
		if open < 0 || !strings.HasSuffix(part, ")") {
			return decl, errAt(mpos, "collection member needs (fields): %q", part)
		}
		name := strings.TrimSpace(part[:open])
		fields, err := relstore.ParseSchema(strings.Split(part[open+1:len(part)-1], ","))
		if err != nil {
			return decl, errAt(mpos, "%v", err)
		}
		decl.Members = append(decl.Members, aig.MemberDecl{Name: name, Kind: kind, Fields: fields, Pos: mpos})
	}
	return decl, nil
}

// splitTop splits on sep at paren depth zero.
func splitTop(s string, sep byte) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case sep:
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}
