// Package aigspec parses the textual AIG specification language — the
// machine-readable counterpart of the paper's Fig. 2. A specification
// bundles the DTD, the semantic-attribute declarations, the semantic
// rules with their embedded SQL, and the XML constraints:
//
//	dtd
//	  <!ELEMENT report (patient*)>
//	  <!ELEMENT SSN (#PCDATA)>
//	  ...
//	end
//
//	inh report (date)
//	inh patient (date, SSN, pname, policy)
//	inh bill (set trIdS(trId))
//	syn treatments (set trIdS(trId))
//	inh price (val:int)
//
//	rule report
//	  child patient from query [v = inh(report)]:
//	    select p.SSN, p.pname, p.policy
//	    from DB1:patient p, DB1:visitInfo i
//	    where p.SSN = i.SSN and i.date = $v.date;
//	  child patient set date = inh(report).date
//	end
//
//	rule patient
//	  child SSN set val = inh(patient).SSN
//	  child treatments copy date, SSN, policy from inh(patient)
//	  child bill set trIdS = syn(treatments).trIdS
//	end
//
//	rule treatments
//	  child treatment from query [v = inh(treatments)]: select ... ;
//	  syn trIdS = collect(treatment.trIdS)
//	end
//
//	rule trId
//	  text inh(trId).val
//	  syn val = inh(trId).val
//	end
//
//	rule result            # choice production: result -> cheap | pricey
//	  cond query [v = inh(result)]: select band from DB:bands where trId = $v.trId;
//	  branch 1 child cheap set val = inh(result).trId
//	  branch 2 child pricey set val = inh(result).trId
//	end
//
//	constraints
//	  patient(item.trId -> item)
//	  patient(treatment.trId [= item.trId)
//	end
//
// Lines starting with '#' or '--' are comments. SQL blocks run from the
// ':' after a query header to the next ';'.
package aigspec

import (
	"fmt"
	"strings"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/dtd"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/xconstraint"
)

// Parse parses a complete AIG specification.
func Parse(input string) (*aig.AIG, error) {
	p := &parser{}
	if err := p.splitSections(input); err != nil {
		return nil, err
	}
	if p.dtdText == "" {
		return nil, fmt.Errorf("aigspec: missing dtd section")
	}
	d, err := dtd.Parse(p.dtdText)
	if err != nil {
		return nil, err
	}
	a := aig.New(d)
	for _, decl := range p.attrLines {
		if err := parseAttrDecl(a, decl.text, decl.line); err != nil {
			return nil, err
		}
	}
	for _, rs := range p.ruleSections {
		if err := parseRule(a, rs); err != nil {
			return nil, err
		}
	}
	if p.constraintText != "" {
		cs, err := xconstraint.ParseAll(p.constraintText)
		if err != nil {
			return nil, err
		}
		a.Constraints = cs
	}
	return a, nil
}

// MustParse is Parse panicking on error.
func MustParse(input string) *aig.AIG {
	a, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return a
}

type attrLine struct {
	text string
	line int
}

type ruleSection struct {
	elem  string
	lines []attrLine
}

type parser struct {
	dtdText        string
	attrLines      []attrLine
	ruleSections   []ruleSection
	constraintText string
}

func errAt(line int, format string, args ...any) error {
	return fmt.Errorf("aigspec: line %d: %s", line, fmt.Sprintf(format, args...))
}

// splitSections does the coarse, line-oriented pass.
func (p *parser) splitSections(input string) error {
	lines := strings.Split(input, "\n")
	i := 0
	n := len(lines)
	strip := func(s string) string {
		s = strings.TrimSpace(s)
		if strings.HasPrefix(s, "#") || strings.HasPrefix(s, "--") {
			return ""
		}
		return s
	}
	for i < n {
		line := strip(lines[i])
		lineNo := i + 1
		switch {
		case line == "":
			i++
		case line == "dtd":
			i++
			var body []string
			for i < n && strip(lines[i]) != "end" {
				body = append(body, lines[i])
				i++
			}
			if i == n {
				return errAt(lineNo, "unterminated dtd section")
			}
			i++
			p.dtdText = strings.Join(body, "\n")
		case line == "constraints":
			i++
			var body []string
			for i < n && strip(lines[i]) != "end" {
				body = append(body, lines[i])
				i++
			}
			if i == n {
				return errAt(lineNo, "unterminated constraints section")
			}
			i++
			p.constraintText = strings.Join(body, "\n")
		case strings.HasPrefix(line, "inh ") || strings.HasPrefix(line, "syn "):
			p.attrLines = append(p.attrLines, attrLine{text: line, line: lineNo})
			i++
		case strings.HasPrefix(line, "rule "):
			elem := strings.TrimSpace(strings.TrimPrefix(line, "rule "))
			if elem == "" {
				return errAt(lineNo, "rule without element type")
			}
			i++
			rs := ruleSection{elem: elem}
			// Collect rule body, joining SQL continuation lines: a clause
			// containing "query" and ':' extends until a ';'.
			for i < n {
				body := strip(lines[i])
				if body == "end" {
					i++
					break
				}
				if body == "" {
					i++
					continue
				}
				start := i + 1
				if idx := strings.Index(body, ":"); idx >= 0 && strings.Contains(body[:idx+1], "query") {
					// Multi-line SQL until ';'.
					for !strings.Contains(body, ";") {
						i++
						if i >= n || strip(lines[i]) == "end" {
							return errAt(start, "unterminated SQL block (missing ';')")
						}
						body += " " + strip(lines[i])
					}
				}
				rs.lines = append(rs.lines, attrLine{text: body, line: start})
				i++
				if i > n {
					return errAt(lineNo, "unterminated rule %s", elem)
				}
			}
			p.ruleSections = append(p.ruleSections, rs)
		default:
			return errAt(lineNo, "unrecognized directive %q", line)
		}
	}
	return nil
}

// parseAttrDecl parses "inh patient (date, SSN)" / "syn treatments (set
// trIdS(trId))".
func parseAttrDecl(a *aig.AIG, text string, line int) error {
	side, rest, _ := strings.Cut(text, " ")
	rest = strings.TrimSpace(rest)
	open := strings.IndexByte(rest, '(')
	if open < 0 || !strings.HasSuffix(rest, ")") {
		return errAt(line, "attribute declaration needs (members): %q", text)
	}
	elem := strings.TrimSpace(rest[:open])
	if _, ok := a.DTD.Production(elem); !ok {
		return errAt(line, "attribute for undeclared element %q", elem)
	}
	body := rest[open+1 : len(rest)-1]
	decl, err := parseMembers(body)
	if err != nil {
		return errAt(line, "%v", err)
	}
	if side == "inh" {
		a.Inh[elem] = decl
	} else {
		a.Syn[elem] = decl
	}
	return nil
}

// parseMembers parses "date, SSN:string, set trIdS(trId:string), bag B(v)".
func parseMembers(body string) (aig.AttrDecl, error) {
	var decl aig.AttrDecl
	for _, part := range splitTop(body, ',') {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind := aig.Scalar
		switch {
		case strings.HasPrefix(part, "set "):
			kind = aig.Set
			part = strings.TrimSpace(strings.TrimPrefix(part, "set "))
		case strings.HasPrefix(part, "bag "):
			kind = aig.Bag
			part = strings.TrimSpace(strings.TrimPrefix(part, "bag "))
		}
		if kind == aig.Scalar {
			name, kindName, hasKind := strings.Cut(part, ":")
			vk := relstore.KindString
			if hasKind {
				var err error
				vk, err = relstore.ParseKind(kindName)
				if err != nil {
					return decl, err
				}
			}
			decl.Members = append(decl.Members, aig.ScalarMember(strings.TrimSpace(name), vk))
			continue
		}
		open := strings.IndexByte(part, '(')
		if open < 0 || !strings.HasSuffix(part, ")") {
			return decl, fmt.Errorf("collection member needs (fields): %q", part)
		}
		name := strings.TrimSpace(part[:open])
		fields, err := relstore.ParseSchema(strings.Split(part[open+1:len(part)-1], ","))
		if err != nil {
			return decl, err
		}
		decl.Members = append(decl.Members, aig.MemberDecl{Name: name, Kind: kind, Fields: fields})
	}
	return decl, nil
}

// splitTop splits on sep at paren depth zero.
func splitTop(s string, sep byte) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case sep:
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}
