package specialize

import (
	"fmt"
	"sort"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/dtd"
	"github.com/aigrepro/aig/internal/srcpos"
)

// Unfold rewrites a recursive AIG into a non-recursive one by replicating
// each recursive element type once per level, up to the given depth
// (§5.5). Replicas are named "type@level" and carry a label mapping back
// to the original type name, so generated documents still conform to the
// original DTD. At the cutoff depth, star productions that would recurse
// further are truncated to the empty production (their queries simply
// never run); a sequence or choice that cannot be truncated this way is
// an error.
//
// Constraints compiled into guards survive unfolding (the guards are
// attached to every replica); the declarative constraint list is cleared
// because its type names no longer exist in the unfolded DTD — compile
// constraints before unfolding.
func Unfold(a *aig.AIG, depth int) (*aig.AIG, error) {
	out, _, err := UnfoldInfo(a, depth)
	return out, err
}

// TruncProbe describes one truncated replica type: the star production
// that was cut and its original query rule (with attribute references
// renamed to the replica), so that runtime re-unrolling (§5.5) can probe
// whether any instance was blocked waiting for deeper expansion.
type TruncProbe struct {
	Type string
	Rule *aig.InhRule
}

// UnfoldInfo is Unfold, additionally reporting a probe per truncated
// replica type (e.g. "procedure@5"). An empty list means the unfolding is
// exact for every instance.
func UnfoldInfo(a *aig.AIG, depth int) (*aig.AIG, []TruncProbe, error) {
	if depth < 1 {
		return nil, nil, fmt.Errorf("specialize: unfold depth must be >= 1, got %d", depth)
	}
	rec := a.DTD.RecursiveTypes()
	if len(rec) == 0 {
		return a.Clone(), nil, nil
	}
	comp := sccIDs(a.DTD)
	// Header of each recursive SCC: the type at which the cycle is cut.
	// Truncation replaces the productions referencing header@(depth+1)
	// with empty ones, which is only legal for star productions — so
	// prefer a member whose intra-SCC parents are all stars (e.g.
	// "treatment", referenced by procedure -> treatment*). Ties and
	// fallbacks resolve lexicographically.
	header := make(map[int]string)
	cuttable := make(map[string]bool)
	for t := range rec {
		cuttable[t] = true
	}
	for _, parent := range a.DTD.Types() {
		p, _ := a.DTD.Production(parent)
		if !rec[parent] {
			continue
		}
		for _, c := range p.Children {
			if rec[c] && comp[c] == comp[parent] && p.Kind != dtd.ProdStar {
				cuttable[c] = false
			}
		}
	}
	for t := range rec {
		id := comp[t]
		h, ok := header[id]
		switch {
		case !ok:
			header[id] = t
		case cuttable[t] && !cuttable[h]:
			header[id] = t
		case cuttable[t] == cuttable[h] && t < h:
			header[id] = t
		}
	}

	u := &unfolder{
		src:    a,
		depth:  depth,
		rec:    rec,
		comp:   comp,
		header: header,
		out:    aig.New(dtd.New("")),
		done:   make(map[string]bool),
	}
	u.out.Labels = make(map[string]string)
	u.out.DTD.Root = a.DTD.Root
	if rec[a.DTD.Root] {
		u.out.DTD.Root = levelName(a.DTD.Root, 1)
	}
	// Expand every reachable type. Non-recursive types keep their names;
	// recursive types are expanded per level on demand.
	if err := u.expand(a.DTD.Root, 0); err != nil {
		return nil, nil, err
	}
	u.out.Constraints = nil
	if err := u.out.DTD.Validate(); err != nil {
		return nil, nil, fmt.Errorf("specialize: unfolding produced an invalid DTD: %v", err)
	}
	sort.Slice(u.truncated, func(i, j int) bool { return u.truncated[i].Type < u.truncated[j].Type })
	return u.out, u.truncated, nil
}

func levelName(t string, level int) string { return fmt.Sprintf("%s@%d", t, level) }

type unfolder struct {
	src    *aig.AIG
	depth  int
	rec    map[string]bool
	comp   map[string]int
	header map[int]string
	out    *aig.AIG
	done   map[string]bool

	truncated []TruncProbe
}

// childName maps a child reference from a type at the given level (0 for
// non-recursive context) to the unfolded child type name, or "" when the
// reference crosses the depth cutoff.
func (u *unfolder) childName(parent string, parentLevel int, child string) string {
	if !u.rec[child] {
		return child
	}
	level := 1
	if parentLevel > 0 && u.comp[parent] == u.comp[child] {
		level = parentLevel
		if child == u.header[u.comp[child]] {
			level = parentLevel + 1
		}
	}
	if level > u.depth {
		return ""
	}
	return levelName(child, level)
}

// expand produces the unfolded type (and transitively its children) for
// the original type at the given level (0 for non-recursive types).
func (u *unfolder) expand(orig string, level int) error {
	name := orig
	if u.rec[orig] {
		name = levelName(orig, level)
	}
	if u.done[name] {
		return nil
	}
	u.done[name] = true
	if u.rec[orig] {
		u.out.Labels[name] = orig
	}

	p, ok := u.src.DTD.Production(orig)
	if !ok {
		return fmt.Errorf("specialize: type %q has no production", orig)
	}

	// Map children, detecting truncation.
	mapped := make([]string, len(p.Children))
	truncated := false
	for i, c := range p.Children {
		mapped[i] = u.childName(orig, level, c)
		if mapped[i] == "" {
			truncated = true
		}
	}
	if truncated && p.Kind != dtd.ProdStar {
		return fmt.Errorf("specialize: cannot truncate %s production of %q at depth %d; only star productions can be cut", p.Kind, orig, u.depth)
	}

	// Attribute declarations carry over.
	u.out.Inh[name] = u.src.Inh[orig].Clone()
	u.out.Syn[name] = u.src.Syn[orig].Clone()

	rule := u.src.Rules[orig]

	if truncated {
		// Cut star: the type becomes empty; collection members of Syn
		// default to empty, scalars to Null, and guards still apply.
		probe := TruncProbe{Type: name}
		if rule != nil {
			if ir := rule.Inh[p.Children[0]]; ir.IsQuery() {
				renamed := renameRule(rule, name, func(s string) string {
					if s == orig {
						return name
					}
					return s
				})
				probe.Rule = renamed.Inh[p.Children[0]]
			}
		}
		u.truncated = append(u.truncated, probe)
		u.out.DTD.DefineEmpty(name)
		if rule != nil {
			nr := &aig.Rule{Elem: name, Guards: append([]aig.Guard(nil), rule.Guards...)}
			if !u.src.Syn[orig].IsEmpty() {
				nr.Syn = &aig.SynRule{Exprs: map[string]aig.SynExpr{}}
				for _, m := range u.src.Syn[orig].Members {
					if m.Kind != aig.Scalar {
						nr.Syn.Exprs[m.Name] = aig.EmptyOf{}
					}
				}
			}
			u.out.Rules[name] = nr
		}
		return nil
	}

	u.out.DTD.Define(name, dtd.Production{Kind: p.Kind, Children: mapped})

	if rule != nil {
		rename := func(s string) string {
			// Child rename within this production.
			for i, c := range p.Children {
				if c == s {
					return mapped[i]
				}
			}
			if s == orig {
				return name
			}
			return s
		}
		u.out.Rules[name] = renameRule(rule, name, rename)
	}

	for i, c := range p.Children {
		childLevel := 0
		if u.rec[c] {
			// Parse level back from mapped name: we know the mapping rule.
			childLevel = 1
			if level > 0 && u.comp[orig] == u.comp[c] {
				childLevel = level
				if c == u.header[u.comp[c]] {
					childLevel = level + 1
				}
			}
		}
		_ = mapped[i]
		if err := u.expand(c, childLevel); err != nil {
			return err
		}
	}
	return nil
}

// renameRule deep-copies a rule, renaming element references via the
// rename function.
func renameRule(r *aig.Rule, elem string, rename func(string) string) *aig.Rule {
	renameRef := func(s aig.SourceRef) aig.SourceRef {
		s.Elem = rename(s.Elem)
		return s
	}
	renameParams := func(m map[string]aig.SourceRef) map[string]aig.SourceRef {
		if m == nil {
			return nil
		}
		out := make(map[string]aig.SourceRef, len(m))
		for k, v := range m {
			out[k] = renameRef(v)
		}
		return out
	}
	renameInh := func(ir *aig.InhRule) *aig.InhRule {
		if ir == nil {
			return nil
		}
		out := &aig.InhRule{
			Child:            rename(ir.Child),
			TargetCollection: ir.TargetCollection,
			QueryParams:      renameParams(ir.QueryParams),
			Pos:              ir.Pos,
			QueryPos:         ir.QueryPos,
		}
		if ir.Query != nil {
			out.Query = ir.Query.Clone()
		}
		for _, q := range ir.Chain {
			out.Chain = append(out.Chain, q.Clone())
		}
		for _, c := range ir.Copies {
			out.Copies = append(out.Copies, aig.CopyAssign{TargetMember: c.TargetMember, Src: renameRef(c.Src)})
		}
		return out
	}
	renameSyn := func(sr *aig.SynRule) *aig.SynRule {
		if sr == nil {
			return nil
		}
		out := &aig.SynRule{Exprs: make(map[string]aig.SynExpr, len(sr.Exprs))}
		for k, e := range sr.Exprs {
			out.Exprs[k] = renameExpr(e, rename)
		}
		if sr.Pos != nil {
			out.Pos = make(map[string]srcpos.Pos, len(sr.Pos))
			for k, p := range sr.Pos {
				out.Pos[k] = p
			}
		}
		return out
	}

	out := &aig.Rule{
		Elem:    elem,
		TextSrc: renameRef(r.TextSrc),
		Syn:     renameSyn(r.Syn),
		Guards:  append([]aig.Guard(nil), r.Guards...),
		Pos:     r.Pos,
		CondPos: r.CondPos,
	}
	if r.TextSrc == (aig.SourceRef{}) {
		out.TextSrc = aig.SourceRef{}
	}
	if r.Inh != nil {
		out.Inh = make(map[string]*aig.InhRule, len(r.Inh))
		for k, ir := range r.Inh {
			out.Inh[rename(k)] = renameInh(ir)
		}
	}
	if r.Cond != nil {
		out.Cond = r.Cond.Clone()
		out.CondParams = renameParams(r.CondParams)
	}
	for _, b := range r.Branches {
		out.Branches = append(out.Branches, aig.Branch{Inh: renameInh(b.Inh), Syn: renameSyn(b.Syn)})
	}
	return out
}

func renameExpr(e aig.SynExpr, rename func(string) string) aig.SynExpr {
	renameRef := func(s aig.SourceRef) aig.SourceRef {
		s.Elem = rename(s.Elem)
		return s
	}
	switch e := e.(type) {
	case aig.ScalarOf:
		return aig.ScalarOf{Src: renameRef(e.Src)}
	case aig.CollectionOf:
		return aig.CollectionOf{Src: renameRef(e.Src)}
	case aig.SingletonOf:
		srcs := make([]aig.SourceRef, len(e.Srcs))
		for i, s := range e.Srcs {
			srcs[i] = renameRef(s)
		}
		return aig.SingletonOf{Srcs: srcs}
	case aig.UnionOf:
		terms := make([]aig.SynExpr, len(e.Terms))
		for i, t := range e.Terms {
			terms[i] = renameExpr(t, rename)
		}
		return aig.UnionOf{Terms: terms}
	case aig.CollectChildren:
		return aig.CollectChildren{Child: rename(e.Child), Member: e.Member}
	default:
		return e
	}
}

// sccIDs assigns a strongly-connected-component id to every element type.
func sccIDs(d *dtd.DTD) map[string]int {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	comp := make(map[string]int)
	var stack []string
	next, compID := 0, 0

	var connect func(v string)
	connect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		p, _ := d.Production(v)
		for _, w := range p.Children {
			if _, seen := index[w]; !seen {
				connect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = compID
				if w == v {
					break
				}
			}
			compID++
		}
	}
	types := d.Types()
	sort.Strings(types)
	for _, t := range types {
		if _, seen := index[t]; !seen {
			connect(t)
		}
	}
	return comp
}
