package specialize_test

import (
	"testing"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/dtd"
	"github.com/aigrepro/aig/internal/hospital"
	"github.com/aigrepro/aig/internal/mediator"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/source"
	"github.com/aigrepro/aig/internal/specialize"
	"github.com/aigrepro/aig/internal/sqlmini"
	"github.com/aigrepro/aig/internal/xconstraint"
)

// ledgerAIG builds a grammar with composite-field constraints (the XML
// Schema-style extension): each (customer, day) pair keys at most one
// order, and every shipment pair must match an order pair.
func ledgerAIG(t *testing.T) *aig.AIG {
	t.Helper()
	d := dtd.MustParse(`
		<!ELEMENT ledger (orders, shipments)>
		<!ELEMENT orders (order*)>
		<!ELEMENT shipments (shipment*)>
		<!ELEMENT order (cust, day, amount)>
		<!ELEMENT shipment (cust, day)>
		<!ELEMENT cust (#PCDATA)>
		<!ELEMENT day (#PCDATA)>
		<!ELEMENT amount (#PCDATA)>
	`)
	a := aig.New(d)
	a.Inh["order"] = aig.Attr(aig.StringMember("cust"), aig.StringMember("day"), aig.ScalarMember("amount", relstore.KindInt))
	a.Inh["shipment"] = aig.Attr(aig.StringMember("cust"), aig.StringMember("day"))
	for _, leaf := range []string{"cust", "day"} {
		a.Inh[leaf] = aig.Attr(aig.StringMember("val"))
		a.Rules[leaf] = &aig.Rule{Elem: leaf, TextSrc: aig.InhOf(leaf, "val")}
	}
	a.Inh["amount"] = aig.Attr(aig.ScalarMember("val", relstore.KindInt))
	a.Rules["amount"] = &aig.Rule{Elem: "amount", TextSrc: aig.InhOf("amount", "val")}

	a.Rules["ledger"] = &aig.Rule{Elem: "ledger"}
	a.Rules["orders"] = &aig.Rule{
		Elem: "orders",
		Inh: map[string]*aig.InhRule{
			"order": {Child: "order", Query: sqlmini.MustParse(`select cust, day, amount from DB:orders`)},
		},
	}
	a.Rules["shipments"] = &aig.Rule{
		Elem: "shipments",
		Inh: map[string]*aig.InhRule{
			"shipment": {Child: "shipment", Query: sqlmini.MustParse(`select cust, day from DB:shipments`)},
		},
	}
	a.Rules["order"] = &aig.Rule{
		Elem: "order",
		Inh: map[string]*aig.InhRule{
			"cust":   {Child: "cust", Copies: []aig.CopyAssign{aig.Copy("val", aig.InhOf("order", "cust"))}},
			"day":    {Child: "day", Copies: []aig.CopyAssign{aig.Copy("val", aig.InhOf("order", "day"))}},
			"amount": {Child: "amount", Copies: []aig.CopyAssign{aig.Copy("val", aig.InhOf("order", "amount"))}},
		},
	}
	a.Rules["shipment"] = &aig.Rule{
		Elem: "shipment",
		Inh: map[string]*aig.InhRule{
			"cust": {Child: "cust", Copies: []aig.CopyAssign{aig.Copy("val", aig.InhOf("shipment", "cust"))}},
			"day":  {Child: "day", Copies: []aig.CopyAssign{aig.Copy("val", aig.InhOf("shipment", "day"))}},
		},
	}
	cs, err := xconstraint.ParseAll(`
		ledger(order.(cust,day) -> order)
		ledger(shipment.(cust,day) [= order.(cust,day))
	`)
	if err != nil {
		t.Fatal(err)
	}
	a.Constraints = cs
	return a
}

func ledgerCatalog(orders [][3]any, shipments [][2]string) *relstore.Catalog {
	cat := relstore.NewCatalog()
	db := relstore.NewDatabase("DB")
	ot := db.CreateTable("orders", relstore.MustSchema("cust:string", "day:string", "amount:int"))
	for _, o := range orders {
		ot.MustInsert(relstore.Tuple{relstore.String(o[0].(string)), relstore.String(o[1].(string)), relstore.Int(int64(o[2].(int)))})
	}
	st := db.CreateTable("shipments", relstore.MustSchema("cust:string", "day:string"))
	for _, s := range shipments {
		st.MustInsert(relstore.Tuple{relstore.String(s[0]), relstore.String(s[1])})
	}
	cat.Add(db)
	return cat
}

func TestCompositeConstraintsParseAndValidate(t *testing.T) {
	a := ledgerAIG(t)
	key := a.Constraints[0]
	if len(key.TargetFields) != 2 || key.String() != "ledger(order.(cust,day) -> order)" {
		t.Errorf("composite key = %v", key)
	}
	if err := key.ValidateAgainst(a.DTD); err != nil {
		t.Error(err)
	}
	// Arity mismatch rejected at parse time.
	if _, err := xconstraint.Parse("ledger(shipment.(cust,day) [= order.cust)"); err == nil {
		t.Error("arity mismatch accepted")
	}
	// Duplicate field rejected by validation.
	dup := xconstraint.MustParse("ledger(order.(cust,cust) -> order)")
	if err := dup.ValidateAgainst(a.DTD); err == nil {
		t.Error("duplicate field accepted")
	}
}

func TestCompositeConstraintsEndToEnd(t *testing.T) {
	a := ledgerAIG(t)
	good := ledgerCatalog(
		[][3]any{{"alice", "mon", 10}, {"alice", "tue", 20}, {"bob", "mon", 30}},
		[][2]string{{"alice", "mon"}, {"bob", "mon"}},
	)
	if err := a.Validate(sqlmini.CatalogSchemas{Catalog: good}); err != nil {
		t.Fatal(err)
	}
	sa, err := specialize.CompileConstraints(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := sa.Validate(sqlmini.CatalogSchemas{Catalog: good}); err != nil {
		t.Fatalf("compiled composite AIG invalid: %v", err)
	}
	env := hospital.EnvFor(good)
	doc, err := sa.Eval(env, nil)
	if err != nil {
		t.Fatalf("satisfied composite constraints aborted: %v", err)
	}
	if v := xconstraint.CheckAll(a.Constraints, doc); len(v) != 0 {
		t.Errorf("direct checker disagrees: %v", v)
	}

	// The mediator enforces the same guards and produces the same tree.
	m := mediator.New(source.RegistryFromCatalog(good), mediator.DefaultOptions())
	res, err := m.Evaluate(sa, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !doc.Equal(res.Doc) {
		t.Errorf("mediator composite document differs:\n%s\n%s", doc, res.Doc)
	}

	// Key violation: same (cust, day) twice — same cust on different days
	// stays legal.
	dupKey := ledgerCatalog(
		[][3]any{{"alice", "mon", 10}, {"alice", "mon", 99}},
		nil,
	)
	if _, err := sa.Eval(hospital.EnvFor(dupKey), nil); err == nil {
		t.Error("duplicate (cust,day) pair not caught")
	}

	// Inclusion violation: shipment pair without a matching order pair,
	// even though each component value appears in some order.
	badIC := ledgerCatalog(
		[][3]any{{"alice", "mon", 10}, {"bob", "tue", 20}},
		[][2]string{{"alice", "tue"}}, // cross pairing
	)
	if _, err := sa.Eval(hospital.EnvFor(badIC), nil); err == nil {
		t.Error("cross-paired shipment not caught: composite IC must compare tuples, not components")
	}
	// The direct checker agrees.
	plainDoc, err := a.Eval(hospital.EnvFor(badIC), nil)
	if err != nil {
		t.Fatal(err)
	}
	if v := xconstraint.CheckAll(a.Constraints, plainDoc); len(v) == 0 {
		t.Error("direct checker missed the cross pairing")
	}
}
