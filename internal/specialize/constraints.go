// Package specialize turns an AIG into a specialized AIG (§3.3–§3.4,
// §4–§5.5 of the paper): XML constraints are compiled into synthesized
// attributes and guards checked during generation; multi-source queries
// are decomposed into chains of single-source queries (the paper's
// internal states); copy chains are analyzed for copy elimination; and
// recursive DTDs are unfolded to a bounded depth. The output is still an
// aig.AIG, evaluable by both the conceptual evaluator and the mediator.
package specialize

import (
	"fmt"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/dtd"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/xconstraint"
)

// CompileConstraints returns a copy of the AIG in which every XML
// constraint has been compiled into additional synthesized-attribute
// members, semantic rules that propagate field values up the tree, and a
// guard at the context type (§3.3). Keys become bag members checked by
// unique(); inclusion constraints become two set members checked by
// subset().
func CompileConstraints(a *aig.AIG) (*aig.AIG, error) {
	out := a.Clone()
	for i, c := range a.Constraints {
		if err := c.ValidateAgainst(a.DTD); err != nil {
			return nil, err
		}
		switch c.Kind {
		case xconstraint.Key:
			member := fmt.Sprintf("k%d", i)
			if err := addCollector(out, member, aig.Bag, c.Target, c.TargetFields); err != nil {
				return nil, err
			}
			addGuard(out, c.Context, aig.Guard{Kind: aig.GuardUnique, Member: member, Origin: c})
		case xconstraint.Inclusion:
			sub := fmt.Sprintf("ic%d_sub", i)
			super := fmt.Sprintf("ic%d_sup", i)
			if err := addCollector(out, sub, aig.Set, c.Source, c.SourceFields); err != nil {
				return nil, err
			}
			if err := addCollector(out, super, aig.Set, c.Target, c.TargetFields); err != nil {
				return nil, err
			}
			ensureMember(out, c.Context, sub, aig.Set, collectorFields(out, c.SourceFields))
			ensureMember(out, c.Context, super, aig.Set, collectorFields(out, c.TargetFields))
			addGuard(out, c.Context, aig.Guard{Kind: aig.GuardSubset, Sub: sub, Super: super, Origin: c})
		}
	}
	return out, nil
}

// collectorFields returns the schema of a collector member for PCDATA
// field types, one column per field: each column's kind is taken from the
// field's inherited scalar when declared, defaulting to string.
func collectorFields(a *aig.AIG, fields []string) relstore.Schema {
	out := make(relstore.Schema, 0, len(fields))
	for i, field := range fields {
		kind := relstore.KindString
		if r := a.Rules[field]; r != nil && r.TextSrc.Member != "" {
			if m, ok := a.Inh[field].Member(r.TextSrc.Member); ok && m.Kind == aig.Scalar {
				kind = m.ValueKind
			}
		} else if members := a.Inh[field].Members; len(members) == 1 && members[0].Kind == aig.Scalar {
			kind = members[0].ValueKind
		}
		out = append(out, relstore.Column{Name: fmt.Sprintf("v%d", i), Kind: kind})
	}
	return out
}

// ensureMember adds the member to Syn(elem) if absent.
func ensureMember(a *aig.AIG, elem, member string, kind aig.MemberKind, fields relstore.Schema) {
	decl := a.Syn[elem]
	if _, ok := decl.Member(member); ok {
		return
	}
	decl.Members = append(decl.Members, aig.MemberDecl{Name: member, Kind: kind, Fields: fields})
	a.Syn[elem] = decl
}

func addGuard(a *aig.AIG, elem string, g aig.Guard) {
	r := a.Rules[elem]
	if r == nil {
		r = &aig.Rule{Elem: elem}
		a.Rules[elem] = r
	}
	r.Guards = append(r.Guards, g)
}

// addCollector adds member (of the given collection kind) to Syn(X) for
// every element type X that can contain a target element, with semantic
// rules that propagate the value of the target's field subelement up the
// tree: at the target itself the own field value is contributed as a
// singleton; elsewhere the member unions the same member of the children
// that can contain targets. This realizes rules (i) and (ii) of §3.3 with
// the static simplification the paper describes (types that cannot reach
// the target are skipped, cf. Fig. 3's Syn(patient).B = Syn(bill).B).
func addCollector(a *aig.AIG, member string, kind aig.MemberKind, target string, fieldNames []string) error {
	fields := collectorFields(a, fieldNames)

	// Ensure each field's Syn exposes the PCDATA value for the target's
	// own contribution.
	valMembers := make(map[string]string, len(fieldNames))
	for i, field := range fieldNames {
		valMember := fmt.Sprintf("%s_v%d", member, i)
		valMembers[field] = valMember
		if err := ensureTextSyn(a, field, valMember, fields[i].Kind); err != nil {
			return err
		}
	}

	// scope = every type from which the target is reachable (including the
	// target itself).
	scope := reachingSet(a.DTD, target)

	for x := range scope {
		ensureMember(a, x, member, kind, fields)
		p, _ := a.DTD.Production(x)
		r := a.Rules[x]
		if r == nil {
			r = &aig.Rule{Elem: x}
			a.Rules[x] = r
		}
		switch p.Kind {
		case dtd.ProdSeq:
			expr := seqCollector(x, p, scope, member, valMembers, target, fieldNames)
			setSynExpr(r, member, expr)
		case dtd.ProdStar:
			child := p.Children[0]
			if scope[child] {
				setSynExpr(r, member, aig.CollectChildren{Child: child, Member: member})
			} else {
				setSynExpr(r, member, aig.EmptyOf{})
			}
		case dtd.ProdChoice:
			if len(r.Branches) != len(p.Children) {
				return fmt.Errorf("specialize: choice rule for %s has %d branches, want %d", x, len(r.Branches), len(p.Children))
			}
			for bi := range r.Branches {
				child := p.Children[bi]
				var expr aig.SynExpr = aig.EmptyOf{}
				if scope[child] {
					expr = aig.CollectionOf{Src: aig.SynOf(child, member)}
				}
				if x == target && len(fieldNames) == 1 && child == fieldNames[0] {
					expr = singletonOf(fieldNames, valMembers)
				}
				if r.Branches[bi].Syn == nil {
					r.Branches[bi].Syn = &aig.SynRule{Exprs: map[string]aig.SynExpr{}}
				}
				r.Branches[bi].Syn.Exprs[member] = expr
			}
		case dtd.ProdText, dtd.ProdEmpty:
			// The target itself cannot be a text/empty type (its field is a
			// subelement), and non-containers contribute the default empty
			// collection.
		}
	}
	return nil
}

// seqCollector builds the union expression for a sequence production.
// When x is the target, the singleton of the (possibly composite) field
// tuple is contributed exactly once.
func seqCollector(x string, p dtd.Production, scope map[string]bool, member string, valMembers map[string]string, target string, fieldNames []string) aig.SynExpr {
	isField := make(map[string]bool, len(fieldNames))
	for _, f := range fieldNames {
		isField[f] = true
	}
	var terms []aig.SynExpr
	addedSingleton := false
	seen := make(map[string]bool)
	for _, child := range p.Children {
		if seen[child] {
			continue
		}
		seen[child] = true
		if x == target && isField[child] {
			if !addedSingleton {
				addedSingleton = true
				terms = append(terms, singletonOf(fieldNames, valMembers))
			}
			continue
		}
		if scope[child] {
			terms = append(terms, aig.CollectionOf{Src: aig.SynOf(child, member)})
		}
	}
	switch len(terms) {
	case 0:
		return aig.EmptyOf{}
	case 1:
		return terms[0]
	default:
		return aig.UnionOf{Terms: terms}
	}
}

// singletonOf builds the singleton expression of a field tuple.
func singletonOf(fieldNames []string, valMembers map[string]string) aig.SynExpr {
	srcs := make([]aig.SourceRef, len(fieldNames))
	for i, f := range fieldNames {
		srcs[i] = aig.SynOf(f, valMembers[f])
	}
	return aig.SingletonOf{Srcs: srcs}
}

func setSynExpr(r *aig.Rule, member string, expr aig.SynExpr) {
	if r.Syn == nil {
		r.Syn = &aig.SynRule{Exprs: map[string]aig.SynExpr{}}
	}
	r.Syn.Exprs[member] = expr
}

// ensureTextSyn guarantees Syn(field) has a scalar member carrying the
// element's PCDATA, defined from the text rule's source.
func ensureTextSyn(a *aig.AIG, field, member string, kind relstore.Kind) error {
	p, ok := a.DTD.Production(field)
	if !ok || p.Kind != dtd.ProdText {
		return fmt.Errorf("specialize: constraint field %q is not a text element type", field)
	}
	decl := a.Syn[field]
	if _, exists := decl.Member(member); exists {
		return nil
	}
	decl.Members = append(decl.Members, aig.ScalarMember(member, kind))
	a.Syn[field] = decl

	r := a.Rules[field]
	if r == nil {
		r = &aig.Rule{Elem: field}
		a.Rules[field] = r
	}
	src := r.TextSrc
	if src == (aig.SourceRef{}) {
		// Default text rule: the single inherited scalar.
		members := a.Inh[field].Members
		if len(members) != 1 || members[0].Kind != aig.Scalar {
			return fmt.Errorf("specialize: text element %q has no PCDATA source to expose", field)
		}
		src = aig.InhOf(field, members[0].Name)
	}
	setSynExpr(r, member, aig.ScalarOf{Src: src})
	return nil
}

// reachingSet computes every element type from which target is reachable
// through the DTD's type-reference graph, including target itself.
func reachingSet(d *dtd.DTD, target string) map[string]bool {
	// reverse edges: child -> parents
	parents := make(map[string][]string)
	for _, t := range d.Types() {
		p, _ := d.Production(t)
		for _, c := range p.Children {
			parents[c] = append(parents[c], t)
		}
	}
	out := map[string]bool{target: true}
	stack := []string{target}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range parents[cur] {
			if !out[p] {
				out[p] = true
				stack = append(stack, p)
			}
		}
	}
	return out
}
