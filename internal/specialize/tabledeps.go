package specialize

import (
	"sort"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/sqlmini"
)

// TableScan records one base-table reference made by a semantic-rule
// query, together with everything a maintenance judge can use to decide
// whether a row-level change to that table can affect the query's
// output: the predicates attributable to the scan and the rule's
// parameter bindings. This is the static side of incremental view
// maintenance; the dynamic side (internal/ivm) turns these records into
// relevance verdicts for concrete deltas.
type TableScan struct {
	// Elem is the element type owning the rule; Child the child whose
	// Inh the query computes ("" for condition queries); ChainStep the
	// 1-based position within a decomposed chain (0 outside chains).
	Elem      string
	Child     string
	ChainStep int

	// Source and Table name the scanned base relation; Alias is the
	// name by which the query's columns reference it.
	Source string
	Table  string
	Alias  string

	// Sole reports that this is the query's only FROM entry, so
	// unqualified column references resolve to it.
	Sole bool

	// Preds are the WHERE conjuncts attributable to this scan: their
	// left column resolves here and their right side is a constant, an
	// IN list, or a scalar parameter field. Join predicates (column =
	// column) and set-parameter membership are excluded — they depend
	// on other relations and are never usable to prove a delta
	// irrelevant.
	Preds []sqlmini.Pred

	// Params is the owning rule's parameter binding map: parameter name
	// to the attribute reference it is bound from.
	Params map[string]aig.SourceRef
}

// TableScans statically extracts every base-table scan of the AIG's
// semantic-rule queries. Run it after DecomposeQueries so that chain
// steps (each single-source) are what ships to the sources; parameter
// table references ($prev and friends) carry no Source and are skipped.
// The result is sorted by (Source, Table, Elem, Child, ChainStep) for
// deterministic consumers.
func TableScans(a *aig.AIG) []TableScan {
	var out []TableScan
	collect := func(elem, child string, step int, q *sqlmini.Query, params map[string]aig.SourceRef) {
		if q == nil {
			return
		}
		sole := len(q.From) == 1
		for _, ref := range q.From {
			if ref.IsParam() || ref.Source == "" {
				continue
			}
			ts := TableScan{
				Elem: elem, Child: child, ChainStep: step,
				Source: ref.Source, Table: ref.Table, Alias: ref.BindName(),
				Sole: sole, Params: params,
			}
			for _, p := range q.Where {
				switch p.Kind {
				case sqlmini.PredColConst, sqlmini.PredColParam, sqlmini.PredColInList:
				default:
					continue
				}
				if p.Left.Table != ts.Alias && !(p.Left.Table == "" && sole) {
					continue
				}
				ts.Preds = append(ts.Preds, p)
			}
			out = append(out, ts)
		}
	}

	for _, elem := range a.DTD.Types() {
		r := a.Rules[elem]
		if r == nil {
			continue
		}
		if r.Cond != nil {
			collect(elem, "", 0, r.Cond, r.CondParams)
		}
		children := make([]string, 0, len(r.Inh))
		for c := range r.Inh {
			children = append(children, c)
		}
		sort.Strings(children)
		for _, child := range children {
			ir := r.Inh[child]
			if ir == nil || !ir.IsQuery() {
				continue
			}
			if len(ir.Chain) > 0 {
				for i, q := range ir.Chain {
					collect(elem, child, i+1, q, ir.QueryParams)
				}
			} else {
				collect(elem, child, 0, ir.Query, ir.QueryParams)
			}
		}
		for _, b := range r.Branches {
			if b.Inh.IsQuery() && b.Inh.Query != nil {
				collect(elem, b.Inh.Child, 0, b.Inh.Query, b.Inh.QueryParams)
			}
		}
	}

	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Source != b.Source {
			return a.Source < b.Source
		}
		if a.Table != b.Table {
			return a.Table < b.Table
		}
		if a.Elem != b.Elem {
			return a.Elem < b.Elem
		}
		if a.Child != b.Child {
			return a.Child < b.Child
		}
		return a.ChainStep < b.ChainStep
	})
	return out
}
