package specialize

import (
	"testing"

	"github.com/aigrepro/aig/internal/hospital"
	"github.com/aigrepro/aig/internal/source"
	"github.com/aigrepro/aig/internal/sqlmini"
)

func TestTableScansCoversHospitalDependencies(t *testing.T) {
	reg := source.RegistryFromCatalog(hospital.TinyCatalog())
	a := hospital.Sigma0(true)
	comp, err := CompileConstraints(a)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecomposeQueries(comp, reg, reg, sqlmini.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}

	scans := TableScans(dec)
	seen := make(map[string]bool)
	for _, ts := range scans {
		seen[ts.Source+":"+ts.Table] = true
	}
	for _, want := range []string{
		"DB1:patient", "DB1:visitInfo", "DB2:cover",
		"DB3:billing", "DB4:treatment", "DB4:procedure",
	} {
		if !seen[want] {
			t.Errorf("missing scan of %s (got %v)", want, seen)
		}
	}
	if seen["Mediator:prev"] {
		t.Error("parameter refs must not appear as table scans")
	}

	// Q1's visitInfo scan carries the root-bound date predicate; its
	// patient scan carries none (only a join predicate, which is not
	// attributable to one scan).
	var visitPreds, patientPreds int
	for _, ts := range scans {
		if ts.Elem != "report" {
			continue
		}
		switch ts.Table {
		case "visitInfo":
			visitPreds += len(ts.Preds)
			for _, p := range ts.Preds {
				if p.Kind == sqlmini.PredColCol {
					t.Errorf("join predicate leaked into scan preds: %v", p)
				}
			}
		case "patient":
			patientPreds += len(ts.Preds)
		}
	}
	if visitPreds == 0 {
		t.Error("visitInfo scan in report production lost its date predicate")
	}
	if patientPreds != 0 {
		t.Errorf("patient scan has %d preds, want 0", patientPreds)
	}

	// Determinism: extraction is order-stable.
	again := TableScans(dec)
	if len(again) != len(scans) {
		t.Fatalf("non-deterministic scan count: %d vs %d", len(again), len(scans))
	}
	for i := range scans {
		if scans[i].Source != again[i].Source || scans[i].Table != again[i].Table ||
			scans[i].Elem != again[i].Elem || scans[i].Child != again[i].Child ||
			scans[i].ChainStep != again[i].ChainStep {
			t.Fatalf("non-deterministic order at %d: %+v vs %+v", i, scans[i], again[i])
		}
	}
}
