package specialize

import (
	"strings"
	"testing"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/dtd"
	"github.com/aigrepro/aig/internal/hospital"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/sqlmini"
	"github.com/aigrepro/aig/internal/xconstraint"
)

func TestCompileConstraintsValidatesAndRuns(t *testing.T) {
	a := hospital.Sigma0(true)
	sa, err := CompileConstraints(a)
	if err != nil {
		t.Fatal(err)
	}
	cat := hospital.TinyCatalog()
	if err := sa.Validate(sqlmini.CatalogSchemas{Catalog: cat}); err != nil {
		t.Fatalf("compiled AIG invalid: %v", err)
	}

	// Structure: patient gains the key bag and both IC sets, with a guard.
	if _, ok := sa.Syn["patient"].Member("k0"); !ok {
		t.Errorf("Syn(patient) lacks key member: %v", sa.Syn["patient"])
	}
	pr := sa.Rules["patient"]
	if len(pr.Guards) != 2 {
		t.Fatalf("patient has %d guards, want 2", len(pr.Guards))
	}
	// Static simplification (Fig. 3): the key member of patient collects
	// only from bill — the treatments subtree cannot contain items.
	expr, ok := pr.Syn.Exprs["k0"]
	if !ok {
		t.Fatal("patient has no rule for k0")
	}
	if got := expr.String(); !strings.Contains(got, "bill") || strings.Contains(got, "treatments") {
		t.Errorf("k0 rule should collect from bill only, got %s", got)
	}

	// Evaluation succeeds (the tiny data satisfies both constraints) and
	// produces the same document as the unspecialized grammar.
	env := hospital.EnvFor(cat)
	want, err := hospital.Sigma0(false).Eval(env, hospital.RootInh(a, "d1"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sa.Eval(env, hospital.RootInh(sa, "d1"))
	if err != nil {
		t.Fatalf("guarded evaluation failed: %v", err)
	}
	if !want.Equal(got) {
		t.Errorf("constraint compilation changed the document:\n%s\n%s", want, got)
	}
}

// mutateCatalog applies a named mutation to the tiny catalog and reports
// whether the constraints should then be violated on date d1.
func mutations(t *testing.T) map[string]func(cat *relstore.Catalog) {
	t.Helper()
	return map[string]func(cat *relstore.Catalog){
		// Removing t4 from billing breaks the inclusion constraint: the
		// nested treatment t4 has no bill item.
		"drop-billing-row": func(cat *relstore.Catalog) {
			billing, err := cat.Table("DB3", "billing")
			if err != nil {
				t.Fatal(err)
			}
			clean := relstore.NewTable("billing", billing.Schema())
			for _, row := range billing.Rows() {
				if row[0].AsString() != "t4" {
					clean.MustInsert(row)
				}
			}
			db, _ := cat.Database("DB3")
			db.AddTable(clean)
		},
		// A duplicate billing row for t1 breaks the key: two items with
		// the same trId under one patient.
		"dup-billing-row": func(cat *relstore.Catalog) {
			billing, err := cat.Table("DB3", "billing")
			if err != nil {
				t.Fatal(err)
			}
			billing.MustInsert(relstore.Tuple{relstore.String("t1"), relstore.Int(101)})
		},
	}
}

// TestGuardsAgreeWithDirectChecker: for each data mutation, the guarded
// evaluation aborts exactly when the independent tree checker finds a
// violation in the unguarded output.
func TestGuardsAgreeWithDirectChecker(t *testing.T) {
	for name, mutate := range mutations(t) {
		t.Run(name, func(t *testing.T) {
			cat := hospital.TinyCatalog()
			mutate(cat)
			env := hospital.EnvFor(cat)

			plain := hospital.Sigma0(true)
			doc, err := plain.Eval(env, hospital.RootInh(plain, "d1"))
			if err != nil {
				t.Fatalf("unguarded evaluation failed: %v", err)
			}
			directViolated := len(xconstraint.CheckAll(plain.Constraints, doc)) > 0

			guarded, err := CompileConstraints(plain)
			if err != nil {
				t.Fatal(err)
			}
			_, err = guarded.Eval(env, hospital.RootInh(guarded, "d1"))
			guardAborted := err != nil
			if guardAborted != directViolated {
				t.Errorf("guard aborted=%v but direct checker violated=%v (err=%v)", guardAborted, directViolated, err)
			}
			if guardAborted {
				var abort *aig.AbortError
				if !asAbort(err, &abort) {
					t.Errorf("abort error has wrong type: %T %v", err, err)
				} else if abort.Elem != "patient" {
					t.Errorf("guard fired at %s, want patient", abort.Elem)
				}
			}
		})
	}
}

func asAbort(err error, target **aig.AbortError) bool {
	for err != nil {
		if ae, ok := err.(*aig.AbortError); ok {
			*target = ae
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestDecomposeQ2(t *testing.T) {
	cat := hospital.TinyCatalog()
	schemas := sqlmini.CatalogSchemas{Catalog: cat}
	stats := sqlmini.CatalogStats{Catalog: cat}
	q := sqlmini.MustParse(hospital.Q2)
	params := sqlmini.ParamSchemas{"v": relstore.MustSchema("date:string", "SSN:string", "policy:string")}

	chain, err := Decompose(q, schemas, params, stats, sqlmini.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) < 2 {
		t.Fatalf("Q2 decomposed into %d steps, want >= 2:\n%v", len(chain), chain)
	}
	for i, step := range chain {
		if srcs := step.Sources(); len(srcs) != 1 {
			t.Errorf("step %d references %v", i+1, srcs)
		}
	}

	// The chain computes the same result as the direct query for every
	// parameter binding.
	for _, v := range [][]string{
		{"d1", "s1", "gold"},
		{"d1", "s2", "silver"},
		{"d2", "s2", "silver"},
		{"d9", "s1", "gold"},
	} {
		bind := sqlmini.Params{"v": sqlmini.ScalarBinding(
			[]string{"date", "SSN", "policy"},
			relstore.Tuple{relstore.String(v[0]), relstore.String(v[1]), relstore.String(v[2])})}
		want, err := sqlmini.Run("direct", q, schemas, sqlmini.CatalogData{Catalog: cat}, stats, bind, sqlmini.PlanOptions{})
		if err != nil {
			t.Fatal(err)
		}
		var prev *relstore.Table
		for i, step := range chain {
			p := sqlmini.Params{}
			for k, b := range bind {
				p[k] = b
			}
			if prev != nil {
				p[aig.PrevParam] = sqlmini.TableBinding(prev)
			}
			prev, err = sqlmini.Run("step", step, schemas, sqlmini.CatalogData{Catalog: cat}, stats, p, sqlmini.PlanOptions{})
			if err != nil {
				t.Fatalf("step %d (%s): %v", i+1, step, err)
			}
		}
		if !want.Equal(prev) {
			t.Errorf("params %v: chain result differs:\ndirect: %v\nchain:  %v", v, want, prev)
		}
	}
}

func TestDecomposeSingleSourceIsIdentity(t *testing.T) {
	cat := hospital.TinyCatalog()
	q := sqlmini.MustParse(hospital.Q3)
	params := sqlmini.ParamSchemas{"v": relstore.MustSchema("trId:string")}
	chain, err := Decompose(q, sqlmini.CatalogSchemas{Catalog: cat}, params, sqlmini.CatalogStats{Catalog: cat}, sqlmini.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 1 {
		t.Fatalf("single-source query decomposed into %d steps", len(chain))
	}
	if chain[0].String() != q.String() {
		t.Errorf("identity decomposition changed the query:\n%s\n%s", q, chain[0])
	}
}

func TestDecomposedAIGProducesSameDocument(t *testing.T) {
	cat := hospital.TinyCatalog()
	env := hospital.EnvFor(cat)
	orig := hospital.Sigma0(false)
	want, err := orig.Eval(env, hospital.RootInh(orig, "d1"))
	if err != nil {
		t.Fatal(err)
	}

	dec, err := DecomposeQueries(orig, sqlmini.CatalogSchemas{Catalog: cat}, sqlmini.CatalogStats{Catalog: cat}, sqlmini.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.Validate(sqlmini.CatalogSchemas{Catalog: cat}); err != nil {
		t.Fatalf("decomposed AIG invalid: %v", err)
	}
	// Q2 must now be a chain.
	if ir := dec.Rules["treatments"].Inh["treatment"]; ir.Query != nil || len(ir.Chain) < 2 {
		t.Fatalf("treatments rule not decomposed: query=%v chain=%d", ir.Query, len(ir.Chain))
	}
	got, err := dec.Eval(env, hospital.RootInh(dec, "d1"))
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Errorf("decomposition changed the document:\n%s\n%s", want, got)
	}
}

func TestUnfoldDeepEnoughMatchesRecursive(t *testing.T) {
	cat := hospital.TinyCatalog()
	env := hospital.EnvFor(cat)
	orig := hospital.Sigma0(false)
	want, err := orig.Eval(env, hospital.RootInh(orig, "d1"))
	if err != nil {
		t.Fatal(err)
	}

	// Tiny data nests treatments 3 deep (t2 -> t4 -> t5); depth 4 covers it.
	unf, err := Unfold(orig, 4)
	if err != nil {
		t.Fatal(err)
	}
	if unf.DTD.IsRecursive() {
		t.Fatal("unfolded DTD is still recursive")
	}
	if err := unf.Validate(sqlmini.CatalogSchemas{Catalog: cat}); err != nil {
		t.Fatalf("unfolded AIG invalid: %v", err)
	}
	got, err := unf.Eval(env, hospital.RootInh(unf, "d1"))
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Errorf("unfolding changed the document:\nwant:\n%s\ngot:\n%s", want, got)
	}
	// The unfolded output still conforms to the ORIGINAL DTD thanks to
	// label mapping.
	if err := dtd.Conforms(orig.DTD, got); err != nil {
		t.Errorf("unfolded output violates original DTD: %v", err)
	}
}

func TestUnfoldTruncates(t *testing.T) {
	cat := hospital.TinyCatalog()
	env := hospital.EnvFor(cat)
	orig := hospital.Sigma0(false)

	unf, err := Unfold(orig, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := unf.Eval(env, hospital.RootInh(unf, "d1"))
	if err != nil {
		t.Fatal(err)
	}
	// At depth 1 no nested treatments appear: every procedure is empty.
	for _, proc := range got.Descendants("procedure") {
		if len(proc.Children) != 0 {
			t.Fatalf("depth-1 unfolding kept nested treatments:\n%s", got)
		}
	}
	if err := dtd.Conforms(orig.DTD, got); err != nil {
		t.Errorf("truncated output violates original DTD: %v", err)
	}
	// Depth 2 keeps one nesting level (t4) but drops the next (t5).
	unf2, err := Unfold(orig, 2)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := unf2.Eval(env, hospital.RootInh(unf2, "d1"))
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	for _, tr := range got2.Descendants("trId") {
		ids[tr.StringValue()] = true
	}
	if !ids["t4"] {
		t.Error("depth-2 unfolding lost the first nesting level")
	}
	// t5 appears only as a treatment nested 3 deep; it must be gone from
	// treatments (it may still appear in bills? No: bill items come from
	// collected trIdS, which no longer includes t5).
	for _, tr := range got2.Descendants("treatment") {
		if tr.Child("trId").StringValue() == "t5" {
			t.Error("depth-2 unfolding kept a depth-3 treatment")
		}
	}
}

func TestUnfoldInvalidDepth(t *testing.T) {
	if _, err := Unfold(hospital.Sigma0(false), 0); err == nil {
		t.Error("depth 0 accepted")
	}
}

func TestUnfoldNonRecursiveIsClone(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT a (b)> <!ELEMENT b (#PCDATA)>`)
	a := aig.New(d)
	out, err := Unfold(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Labels) != 0 {
		t.Errorf("non-recursive unfold introduced labels: %v", out.Labels)
	}
}

func TestFullPipelineCompileUnfoldDecompose(t *testing.T) {
	cat := hospital.TinyCatalog()
	env := hospital.EnvFor(cat)
	schemas := sqlmini.CatalogSchemas{Catalog: cat}
	stats := sqlmini.CatalogStats{Catalog: cat}

	a := hospital.Sigma0(true)
	sa, err := CompileConstraints(a)
	if err != nil {
		t.Fatal(err)
	}
	sa, err = Unfold(sa, 5)
	if err != nil {
		t.Fatal(err)
	}
	sa, err = DecomposeQueries(sa, schemas, stats, sqlmini.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sa.Validate(schemas); err != nil {
		t.Fatalf("pipeline output invalid: %v", err)
	}
	got, err := sa.Eval(env, hospital.RootInh(sa, "d1"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := hospital.Sigma0(false).Eval(env, hospital.RootInh(a, "d1"))
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Errorf("full pipeline changed the document:\n%s\n%s", want, got)
	}
	if err := dtd.Conforms(a.DTD, got); err != nil {
		t.Error(err)
	}
	if v := xconstraint.CheckAll(hospital.Constraints(), got); len(v) != 0 {
		t.Errorf("pipeline output violates constraints: %v", v)
	}
}
