package specialize

import (
	"fmt"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/sqlmini"
)

// DecomposeQueries returns a copy of the AIG in which every multi-source
// query has been rewritten into a chain of single-source queries (§3.4).
// A left-deep plan is generated for each such query using the sources'
// statistics; consecutive plan steps on the same source are fused into
// one sub-query; and each sub-query receives the accumulated intermediate
// result as the set parameter $prev (the paper's internal states St, St1,
// St2 — here flowing through the chain instead of materializing as tree
// nodes). Every sub-query references tables of exactly one source, so it
// can be shipped to and executed by that source's engine.
func DecomposeQueries(a *aig.AIG, schemas sqlmini.SchemaProvider, stats sqlmini.Stats, opts sqlmini.PlanOptions) (*aig.AIG, error) {
	out := a.Clone()
	for _, elem := range out.DTD.Types() {
		r := out.Rules[elem]
		if r == nil {
			continue
		}
		for _, child := range childKeys(r.Inh) {
			ir := r.Inh[child]
			if ir == nil || ir.Query == nil || len(ir.Query.Sources()) <= 1 {
				continue
			}
			params, err := ParamSchemasFor(out, ir.QueryParams, ir.Query)
			if err != nil {
				return nil, fmt.Errorf("specialize: rule for %s child %s: %v", elem, child, err)
			}
			chain, err := Decompose(ir.Query, schemas, params, stats, opts)
			if err != nil {
				return nil, fmt.Errorf("specialize: decomposing query for %s child %s: %v", elem, child, err)
			}
			if len(chain) == 1 {
				ir.Query = chain[0]
				continue
			}
			ir.Query = nil
			ir.Chain = chain
		}
	}
	return out, nil
}

func childKeys(m map[string]*aig.InhRule) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ParamSchemasFor derives the binding schema of each query parameter from
// its attribute source, mirroring how the evaluator will bind it.
func ParamSchemasFor(a *aig.AIG, params map[string]aig.SourceRef, q *sqlmini.Query) (sqlmini.ParamSchemas, error) {
	out := make(sqlmini.ParamSchemas)
	for _, name := range q.Params() {
		src, ok := params[name]
		if !ok {
			return nil, fmt.Errorf("parameter $%s has no source", name)
		}
		var decl aig.AttrDecl
		if src.Side == aig.InhSide {
			decl = a.Inh[src.Elem]
		} else {
			decl = a.Syn[src.Elem]
		}
		if src.Member == "" {
			out[name] = decl.ScalarSchema()
			continue
		}
		m, ok := decl.Member(src.Member)
		if !ok {
			return nil, fmt.Errorf("%s has no member %q", src, src.Member)
		}
		if m.Kind == aig.Scalar {
			out[name] = relstore.Schema{{Name: m.Name, Kind: m.ValueKind}}
		} else {
			out[name] = m.Fields
		}
	}
	return out, nil
}

// Decompose rewrites one multi-source query into an equivalent chain of
// single-source queries. Step i+1 reads step i's output via the set
// parameter $prev. The chain's final output schema equals the original
// query's output schema, so the rewrite is transparent to the rule that
// owns the query.
func Decompose(q *sqlmini.Query, schemas sqlmini.SchemaProvider, params sqlmini.ParamSchemas, stats sqlmini.Stats, opts sqlmini.PlanOptions) ([]*sqlmini.Query, error) {
	r, err := sqlmini.Resolve(q, schemas, params)
	if err != nil {
		return nil, err
	}
	plan, err := sqlmini.BuildPlan(r, stats, opts)
	if err != nil {
		return nil, err
	}

	// Group consecutive plan steps by source. Parameter tables (source
	// "") attach to the group where the plan visits them; a leading
	// parameter table attaches to the following group.
	type group struct {
		source string
		tables []int // indexes into q.From
	}
	var groups []group
	var pendingParams []int
	for _, ti := range plan.Order {
		ref := q.From[ti]
		if ref.IsParam() {
			if len(groups) == 0 {
				pendingParams = append(pendingParams, ti)
			} else {
				groups[len(groups)-1].tables = append(groups[len(groups)-1].tables, ti)
			}
			continue
		}
		if len(groups) > 0 && groups[len(groups)-1].source == ref.Source {
			groups[len(groups)-1].tables = append(groups[len(groups)-1].tables, ti)
			continue
		}
		groups = append(groups, group{source: ref.Source, tables: []int{ti}})
		if pendingParams != nil {
			groups[len(groups)-1].tables = append(pendingParams, groups[len(groups)-1].tables...)
			pendingParams = nil
		}
	}
	if pendingParams != nil {
		// Query over parameter tables only; nothing to decompose.
		return []*sqlmini.Query{q.Clone()}, nil
	}
	if len(groups) <= 1 {
		return []*sqlmini.Query{q.Clone()}, nil
	}

	// groupOf[ti] = index of the group containing FROM table ti.
	groupOf := make(map[int]int)
	for gi, g := range groups {
		for _, ti := range g.tables {
			groupOf[gi0(ti)] = gi
		}
	}

	// passName gives the unique pass-through column name of an absolute
	// resolved column.
	passName := func(abs int) string {
		ti := r.TableOf(abs)
		col := r.TableSchemas[ti][abs-r.Offsets[ti]].Name
		return q.From[ti].BindName() + "_" + col
	}
	// colRefIn renders a column reference for use inside step gi: direct
	// when the column's table is in group gi, otherwise through $prev's
	// alias P.
	colRefIn := func(abs, gi int) sqlmini.ColRef {
		ti := r.TableOf(abs)
		if groupOf[ti] == gi {
			col := r.TableSchemas[ti][abs-r.Offsets[ti]].Name
			return sqlmini.ColRef{Table: q.From[ti].BindName(), Column: col}
		}
		return sqlmini.ColRef{Table: "P", Column: passName(abs)}
	}
	// predGroup is the step at which a predicate can first be evaluated:
	// the latest group among its table references.
	predGroup := func(p sqlmini.Pred, ri sqlmini.ResolvedPred) int {
		g := groupOf[r.TableOf(ri.Left)]
		if ri.Kind == sqlmini.PredColCol {
			if g2 := groupOf[r.TableOf(ri.Right)]; g2 > g {
				g = g2
			}
		}
		return g
	}

	// needed[gi] = absolute columns from groups <= gi required after step
	// gi: referenced by later predicates or by the final SELECT.
	needed := make([][]int, len(groups))
	addNeeded := func(abs, upTo int) {
		for gi := groupOf[r.TableOf(abs)]; gi < upTo; gi++ {
			needed[gi] = append(needed[gi], abs)
		}
	}
	for _, abs := range r.SelectCols {
		addNeeded(abs, len(groups)-1+1) // needed through every later boundary
	}
	for i, p := range r.Preds {
		pg := predGroup(q.Where[i], p)
		addNeeded(p.Left, pg)
		if p.Kind == sqlmini.PredColCol {
			addNeeded(p.Right, pg)
		}
	}
	for gi := range needed {
		needed[gi] = dedupInts(needed[gi])
	}

	steps := make([]*sqlmini.Query, len(groups))
	for gi, g := range groups {
		step := &sqlmini.Query{}
		// FROM: the group's tables plus $prev.
		for _, ti := range g.tables {
			ref := q.From[ti]
			if ref.Alias == "" {
				ref.Alias = ref.BindName()
			}
			step.From = append(step.From, ref)
		}
		if gi > 0 {
			step.From = append(step.From, sqlmini.TableRef{Param: aig.PrevParam, Alias: "P"})
		}
		// WHERE: predicates that become evaluable at this step.
		for i, rp := range r.Preds {
			if predGroup(q.Where[i], rp) != gi {
				continue
			}
			p := q.Where[i] // copy
			p.Left = colRefIn(rp.Left, gi)
			if p.Kind == sqlmini.PredColCol {
				p.Right = colRefIn(rp.Right, gi)
			}
			step.Where = append(step.Where, p)
		}
		// SELECT: the final step emits the original output; earlier steps
		// emit the needed pass-through columns.
		if gi == len(groups)-1 {
			step.Distinct = q.Distinct
			for si, item := range q.Select {
				step.Select = append(step.Select, sqlmini.SelectItem{
					Expr: colRefIn(r.SelectCols[si], gi),
					As:   item.OutputName(),
				})
			}
		} else {
			for _, abs := range needed[gi] {
				step.Select = append(step.Select, sqlmini.SelectItem{
					Expr: colRefIn(abs, gi),
					As:   passName(abs),
				})
			}
		}
		steps[gi] = step
	}

	// Sanity: every step must reference at most one source and must
	// resolve, threading the $prev schema.
	prev := relstore.Schema(nil)
	for i, step := range steps {
		if srcs := step.Sources(); len(srcs) > 1 {
			return nil, fmt.Errorf("specialize: step %d still references sources %v", i+1, srcs)
		}
		ps := make(sqlmini.ParamSchemas, len(params)+1)
		for k, v := range params {
			ps[k] = v
		}
		if prev != nil {
			ps[aig.PrevParam] = prev
		}
		sr, err := sqlmini.Resolve(step, schemas, ps)
		if err != nil {
			return nil, fmt.Errorf("specialize: step %d (%s) does not resolve: %v", i+1, step, err)
		}
		prev = sr.Output
	}
	return steps, nil
}

func gi0(i int) int { return i }

func dedupInts(in []int) []int {
	seen := make(map[int]bool, len(in))
	out := in[:0]
	for _, v := range in {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
