package mediator

import (
	"math"
	"testing"
)

// chainGraph builds A(DB1) -> B(DB2) -> C(DB1) with known costs.
func chainGraph() []*node {
	a := &node{idx: 0, kind: nodeQuery, source: "DB1", estCost: 1, done: make(chan struct{})}
	b := &node{idx: 1, kind: nodeQuery, source: "DB2", estCost: 2, done: make(chan struct{})}
	c := &node{idx: 2, kind: nodeQuery, source: "DB1", estCost: 3, done: make(chan struct{})}
	link := func(f, t *node, bytes float64) {
		e := &edge{from: f, to: t, estBytes: bytes}
		f.out = append(f.out, e)
		t.in = append(t.in, e)
	}
	link(a, b, 125000) // 1s at 1 Mbps, doubled via the mediator hop
	link(b, c, 0)
	return []*node{a, b, c}
}

func TestCostOfSerialChain(t *testing.T) {
	nodes := chainGraph()
	net := NetModel{BandwidthBytesPerSec: 125000, LatencySec: 0, QueryOverheadSec: 0}
	p := schedule(nodes, net, ScheduleLevel)
	got := costOf(nodes, p, net, estimatedInputs(net))
	// comp(A)=1; arrival at B: 1 + 2*(125000/125000) = 3; comp(B)=5;
	// comp(C)=5+3=8.
	if math.Abs(got-8) > 1e-9 {
		t.Errorf("cost = %v, want 8", got)
	}
}

func TestCostOfChargesOverheadPerQuery(t *testing.T) {
	nodes := chainGraph()
	net := NetModel{BandwidthBytesPerSec: 125000, LatencySec: 0, QueryOverheadSec: 0.5}
	p := schedule(nodes, net, ScheduleLevel)
	got := costOf(nodes, p, net, estimatedInputs(net))
	if math.Abs(got-9.5) > 1e-9 { // three queries, +0.5 each
		t.Errorf("cost = %v, want 9.5", got)
	}
}

func TestCostOfSameSourceSerialization(t *testing.T) {
	// Two independent queries on one source serialize on its schedule.
	a := &node{idx: 0, kind: nodeQuery, source: "DB1", estCost: 2, done: make(chan struct{})}
	b := &node{idx: 1, kind: nodeQuery, source: "DB1", estCost: 3, done: make(chan struct{})}
	nodes := []*node{a, b}
	net := NetModel{BandwidthBytesPerSec: 1, LatencySec: 0}
	p := schedule(nodes, net, ScheduleFIFO)
	got := costOf(nodes, p, net, estimatedInputs(net))
	if math.Abs(got-5) > 1e-9 {
		t.Errorf("cost = %v, want 5 (serialized)", got)
	}
	// On different sources they run in parallel.
	b.source = "DB2"
	p = schedule(nodes, net, ScheduleFIFO)
	got = costOf(nodes, p, net, estimatedInputs(net))
	if math.Abs(got-3) > 1e-9 {
		t.Errorf("cost = %v, want 3 (parallel)", got)
	}
}

func TestTopoOrderAndAcyclicity(t *testing.T) {
	nodes := chainGraph()
	order := topoOrder(nodes)
	if len(order) != 3 || order[0].idx != 0 || order[2].idx != 2 {
		t.Errorf("topoOrder = %v", order)
	}
	if !isAcyclic(nodes) {
		t.Error("chain reported cyclic")
	}
	// Close the cycle.
	e := &edge{from: nodes[2], to: nodes[0]}
	nodes[2].out = append(nodes[2].out, e)
	nodes[0].in = append(nodes[0].in, e)
	if isAcyclic(nodes) {
		t.Error("cycle not detected")
	}
}

func TestLevelsPrioritizeLongPaths(t *testing.T) {
	// Two roots on the same source: one feeds a long expensive chain,
	// the other is a leaf. The chain head must get the higher level.
	head := &node{idx: 0, kind: nodeQuery, source: "DB1", estCost: 1}
	mid := &node{idx: 1, kind: nodeQuery, source: "DB2", estCost: 10}
	leaf := &node{idx: 2, kind: nodeQuery, source: "DB1", estCost: 1}
	e := &edge{from: head, to: mid}
	head.out = append(head.out, e)
	mid.in = append(mid.in, e)
	nodes := []*node{head, mid, leaf}
	level := levels(nodes, DefaultNet())
	if level[head] <= level[leaf] {
		t.Errorf("head level %v not above leaf level %v", level[head], level[leaf])
	}
	p := schedule(nodes, DefaultNet(), ScheduleLevel)
	if p.order["DB1"][0] != head {
		t.Errorf("schedule did not prioritize the chain head: %v", p.order["DB1"])
	}
}
