package mediator

import (
	"strings"
	"testing"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/aigspec"
	"github.com/aigrepro/aig/internal/hospital"
	"github.com/aigrepro/aig/internal/static"
)

// findInhRule locates the inherited-attribute rule for elem -> child,
// looking through choice branches as static.Classify does.
func findInhRule(a *aig.AIG, elem, child string) *aig.InhRule {
	r := a.Rules[elem]
	if r == nil {
		return nil
	}
	if ir := r.Inh[child]; ir != nil {
		return ir
	}
	for _, b := range r.Branches {
		if b.Inh != nil && b.Inh.Child == child {
			return b.Inh
		}
	}
	return nil
}

// TestCopyElimMatchesStaticClassification cross-checks the §4 rule
// classification the static package exposes against the predicate the
// mediator's copy elimination actually gates on (isPureProjection): a
// QSR must never be elided, and a CSR is elidable exactly when all of
// its copies project the parent's inherited attribute.
func TestCopyElimMatchesStaticClassification(t *testing.T) {
	grammars := map[string]*aig.AIG{"sigma0": hospital.Sigma0(true)}
	if parsed, err := aigspec.Parse(hospital.SpecText); err != nil {
		t.Fatal(err)
	} else {
		grammars["spec"] = parsed
	}
	for name, a := range grammars {
		for key, class := range static.Classify(a) {
			elem, child, _ := strings.Cut(key, "/")
			ir := findInhRule(a, elem, child)
			if ir == nil {
				t.Errorf("%s: classified rule %s has no InhRule", name, key)
				continue
			}
			pure := isPureProjection(ir)
			switch class {
			case static.QSR:
				if pure {
					t.Errorf("%s: %s is a QSR but isPureProjection elides it", name, key)
				}
			case static.CSR:
				want := true
				for _, cp := range ir.Copies {
					if cp.Src.Side != aig.InhSide {
						want = false
					}
				}
				if pure != want {
					t.Errorf("%s: CSR %s: isPureProjection = %v, copies = %v", name, key, pure, ir.Copies)
				}
			}
		}
	}
}

// TestCopyChainsArePureProjections checks that every chain reported by
// static.CopyChains really is collapsible: each parent -> child link
// along a chain must be a rule copy elimination elides.
func TestCopyChainsArePureProjections(t *testing.T) {
	a := hospital.Sigma0(true)
	chains := static.CopyChains(a)
	if len(chains) == 0 {
		t.Fatal("σ0 has no copy chains; expected at least patient -> treatments")
	}
	found := false
	for _, chain := range chains {
		if len(chain) < 2 {
			t.Errorf("chain %v is too short", chain)
			continue
		}
		if chain[0] == "patient" && chain[len(chain)-1] == "treatments" {
			found = true
		}
		for i := 0; i+1 < len(chain); i++ {
			parent, child := chain[i], chain[i+1]
			ir := findInhRule(a, parent, child)
			if ir == nil {
				t.Errorf("chain %v: no rule for %s -> %s", chain, parent, child)
				continue
			}
			if !isPureProjection(ir) {
				t.Errorf("chain %v: link %s -> %s is not a pure projection", chain, parent, child)
			}
		}
	}
	if !found {
		t.Errorf("expected the patient -> treatments chain of Fig. 2, got %v", chains)
	}
}
