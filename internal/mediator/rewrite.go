package mediator

import (
	"fmt"
	"sort"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/sqlmini"
)

// ParentCol is the path-encoding column threaded through every
// set-oriented query: the id of the parent element instance each output
// tuple belongs to (§5.1 — "the output relation of each query contains
// information that can uniquely identify the position of a node in the
// XML tree").
const ParentCol = "__parent"

// paramKind classifies how a rewritten query consumes a parameter table.
type paramKind int

const (
	// paramScalars: the parent instances' scalar inherited tuple, one row
	// per parent, keyed by ParentCol (the paper's Tpatient).
	paramScalars paramKind = iota
	// paramCollection: a per-parent collection member flattened to
	// (ParentCol, fields...) rows.
	paramCollection
	// paramParentIDs: just the parent ids, cross-joined when the query
	// does not otherwise reference the parent.
	paramParentIDs
	// paramPrev: the output of the previous chain step (already carries
	// ParentCol).
	paramPrev
)

// paramSpec describes one parameter table of a rewritten query.
type paramSpec struct {
	name   string // parameter name in the rewritten query
	kind   paramKind
	src    aig.SourceRef   // attribute source for scalars/collections
	schema relstore.Schema // binding schema including ParentCol
}

// rewritten is a set-oriented query plus its parameter-table specs.
type rewritten struct {
	query *sqlmini.Query
	specs []paramSpec
}

// rewriteSetOriented converts a per-tuple rule query into its
// set-oriented form: scalar parameter fields become equi-joins against a
// parameter table of all parent instances, IN-parameters become
// equi-joins against flattened collection tables, and the output gains
// the ParentCol path column. prevSchema is non-nil for chain steps whose
// $prev parameter carries the previous step's (already rewritten) output.
//
// attrSchema resolves a source reference to the schema its binding would
// have in per-tuple mode (without ParentCol).
func rewriteSetOriented(q *sqlmini.Query, params map[string]aig.SourceRef,
	attrSchema func(aig.SourceRef) (relstore.Schema, error), prevSchema relstore.Schema) (*rewritten, error) {

	out := q.Clone()
	for _, item := range out.Select {
		if item.OutputName() == ParentCol {
			return nil, fmt.Errorf("mediator: query already outputs %s: %s", ParentCol, q)
		}
	}

	used := make(map[string]bool)
	for _, t := range out.From {
		if t.IsParam() {
			used[t.Param] = true
		}
	}

	// Classify parameter usages in predicates.
	scalarParams := make(map[string]bool)
	inParams := make(map[string]bool)
	for _, p := range out.Where {
		switch p.Kind {
		case sqlmini.PredColParam:
			scalarParams[p.Param] = true
		case sqlmini.PredColInParam:
			inParams[p.Param] = true
		}
	}
	for name := range scalarParams {
		if inParams[name] {
			return nil, fmt.Errorf("mediator: parameter $%s used both as scalar and as set in %s", name, q)
		}
	}

	taken := make(map[string]bool)
	for _, t := range out.From {
		taken[t.BindName()] = true
	}
	nextAlias := 0
	fresh := func() string {
		for {
			a := fmt.Sprintf("__p%d", nextAlias)
			nextAlias++
			if !taken[a] {
				taken[a] = true
				return a
			}
		}
	}

	var rw rewritten
	alias := make(map[string]string) // param name -> table alias
	var anchors []string             // aliases carrying ParentCol

	// Parameter-table columns are renamed with a reserved prefix so they
	// can never make the query's own unqualified column references
	// ambiguous (Q4's "trId" vs the trIdS collection's "trId").
	addParamTable := func(name string, kind paramKind, src aig.SourceRef, fields relstore.Schema) {
		a := fresh()
		alias[name] = a
		anchors = append(anchors, a)
		schema := relstore.Schema{{Name: ParentCol, Kind: relstore.KindInt}}
		for _, f := range fields {
			schema = append(schema, relstore.Column{Name: paramField(f.Name), Kind: f.Kind})
		}
		out.From = append(out.From, sqlmini.TableRef{Param: name, Alias: a})
		rw.specs = append(rw.specs, paramSpec{name: name, kind: kind, src: src, schema: schema})
	}

	names := make([]string, 0, len(scalarParams)+len(inParams))
	for n := range scalarParams {
		names = append(names, n)
	}
	for n := range inParams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		src, ok := params[name]
		if !ok {
			return nil, fmt.Errorf("mediator: parameter $%s has no source in %s", name, q)
		}
		fields, err := attrSchema(src)
		if err != nil {
			return nil, err
		}
		if inParams[name] {
			if len(fields) != 1 {
				return nil, fmt.Errorf("mediator: IN parameter $%s must have one column, has %d", name, len(fields))
			}
			addParamTable(name, paramCollection, src, fields)
		} else {
			addParamTable(name, paramScalars, src, fields)
		}
	}

	// Rewrite parameter predicates into joins.
	for i, p := range out.Where {
		switch p.Kind {
		case sqlmini.PredColParam:
			out.Where[i] = sqlmini.Pred{
				Kind:  sqlmini.PredColCol,
				Op:    p.Op,
				Left:  p.Left,
				Right: sqlmini.ColRef{Table: alias[p.Param], Column: paramField(p.ParamField)},
			}
		case sqlmini.PredColInParam:
			src := params[p.Param]
			fields, err := attrSchema(src)
			if err != nil {
				return nil, err
			}
			out.Where[i] = sqlmini.Pred{
				Kind:  sqlmini.PredColCol,
				Op:    sqlmini.OpEq,
				Left:  p.Left,
				Right: sqlmini.ColRef{Table: alias[p.Param], Column: paramField(fields[0].Name)},
			}
		}
	}

	// Chain steps: the $prev table already carries ParentCol and anchors
	// the output when present.
	if prevSchema != nil {
		prevAlias := ""
		for _, t := range out.From {
			if t.IsParam() && t.Param == aig.PrevParam {
				prevAlias = t.BindName()
			}
		}
		if prevAlias == "" {
			return nil, fmt.Errorf("mediator: chain step does not reference $%s: %s", aig.PrevParam, q)
		}
		rw.specs = append(rw.specs, paramSpec{name: aig.PrevParam, kind: paramPrev, schema: prevSchema})
		anchors = append(anchors, prevAlias)
	}

	// No parent reference at all: cross-join the parent-id table so every
	// parent instance receives the full result.
	if len(anchors) == 0 {
		a := fresh()
		schema := relstore.Schema{{Name: ParentCol, Kind: relstore.KindInt}}
		out.From = append(out.From, sqlmini.TableRef{Param: "__parents", Alias: a})
		rw.specs = append(rw.specs, paramSpec{name: "__parents", kind: paramParentIDs, schema: schema})
		anchors = append(anchors, a)
	}

	// All anchors must agree on the parent (they describe the same parent
	// instance).
	for _, a := range anchors[1:] {
		out.Where = append(out.Where, sqlmini.Pred{
			Kind:  sqlmini.PredColCol,
			Op:    sqlmini.OpEq,
			Left:  sqlmini.ColRef{Table: a, Column: ParentCol},
			Right: sqlmini.ColRef{Table: anchors[0], Column: ParentCol},
		})
	}

	// Output the path column first.
	out.Select = append([]sqlmini.SelectItem{{
		Expr: sqlmini.ColRef{Table: anchors[0], Column: ParentCol},
		As:   ParentCol,
	}}, out.Select...)

	rw.query = out
	return &rw, nil
}

// paramField is the reserved name of an attribute field inside a
// parameter table.
func paramField(name string) string { return "__f_" + name }

// paramSchemasOf builds the sqlmini.ParamSchemas of a rewritten query for
// resolution and cost estimation.
func (rw *rewritten) paramSchemas() sqlmini.ParamSchemas {
	out := make(sqlmini.ParamSchemas, len(rw.specs))
	for _, s := range rw.specs {
		out[s.name] = s.schema
	}
	return out
}
