package mediator

import (
	"context"
	"errors"
	"fmt"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/specialize"
	"github.com/aigrepro/aig/internal/sqlmini"
)

// EvaluateRecursive evaluates a recursive AIG by iterative unfolding
// (§5.5): begin with the user-supplied depth estimate, evaluate, probe
// whether any truncated context was blocked waiting on deeper unrolling
// (its original star query returns rows for some frontier instance), and
// if so double the depth and re-evaluate, up to maxDepth. It returns the
// result and the depth that sufficed.
//
// The input AIG should already have constraints compiled and multi-source
// queries decomposed; unfolding preserves both. Compiled-guard aborts at
// a depth below maxDepth trigger re-unrolling rather than an immediate
// error, since a truncated document can violate (or satisfy) a
// constraint that the full document does not; an abort that persists at
// maxDepth is reported as such.
func (m *Mediator) EvaluateRecursive(a *aig.AIG, rootInh *aig.AttrValue, estDepth, maxDepth int) (*Result, int, error) {
	return m.EvaluateRecursiveContext(context.Background(), a, rootInh, estDepth, maxDepth)
}

// EvaluateRecursiveContext is EvaluateRecursive with a caller-supplied
// context; every unfolding round's evaluation and every truncation probe
// runs under the trace ctx carries.
func (m *Mediator) EvaluateRecursiveContext(ctx context.Context, a *aig.AIG, rootInh *aig.AttrValue, estDepth, maxDepth int) (*Result, int, error) {
	if estDepth < 1 {
		estDepth = 1
	}
	if maxDepth < estDepth {
		maxDepth = estDepth
	}
	depth := estDepth
	for {
		unf, probes, err := specialize.UnfoldInfo(a, depth)
		if err != nil {
			return nil, depth, err
		}
		res, g, err := m.evaluate(ctx, unf, rootInh)
		if err != nil {
			// A guard abort at a truncated depth is not trustworthy:
			// truncation can both remove tuples a subset constraint needs
			// and hide duplicates a key constraint would reject. Keep
			// expanding; the abort is genuine only once deepening stops
			// changing the document.
			var abort *aig.AbortError
			if errors.As(err, &abort) && depth < maxDepth {
				depth *= 2
				if depth > maxDepth {
					depth = maxDepth
				}
				continue
			}
			return nil, depth, err
		}
		blocked, err := m.anyBlocked(g, probes)
		if err != nil {
			return nil, depth, err
		}
		if !blocked {
			return res, depth, nil
		}
		if depth >= maxDepth {
			return nil, depth, fmt.Errorf("mediator: recursion still expandable at depth %d (max %d); cyclic source data?", depth, maxDepth)
		}
		depth *= 2
		if depth > maxDepth {
			depth = maxDepth
		}
	}
}

// anyBlocked reports whether any instance of a truncated context would
// have expanded further: the probe rule's query returns rows for it.
func (m *Mediator) anyBlocked(g *graph, probes []specialize.TruncProbe) (bool, error) {
	if len(probes) == 0 {
		return false, nil
	}
	byType := make(map[string]specialize.TruncProbe, len(probes))
	for _, p := range probes {
		byType[p.Type] = p
	}
	blocked := false
	var scan func(c *ctxNode) error
	scan = func(c *ctxNode) error {
		if blocked {
			return nil
		}
		if probe, cut := byType[c.elem]; cut {
			if probe.Rule == nil {
				// No query to probe with: be conservative.
				if g.st.count(c.path) > 0 {
					blocked = true
				}
			} else {
				for _, inst := range g.st.all(c.path) {
					hit, err := m.probeInstance(g, probe.Rule, c, inst)
					if err != nil {
						return err
					}
					if hit {
						blocked = true
						break
					}
				}
			}
		}
		for _, ch := range c.children {
			if err := scan(ch); err != nil {
				return err
			}
		}
		return nil
	}
	if err := scan(g.root); err != nil {
		return false, err
	}
	return blocked, nil
}

// probeInstance runs the original star rule's query (or chain) for one
// frontier instance and reports whether it returns any row.
func (m *Mediator) probeInstance(g *graph, ir *aig.InhRule, c *ctxNode, inst *instance) (bool, error) {
	scope := aig.InstanceScope{Elem: c.elem, Inh: inst.inh}
	steps := ir.Chain
	if ir.Query != nil {
		steps = []*sqlmini.Query{ir.Query}
	}
	var prev sqlmini.Binding
	havePrev := false
	for _, q := range steps {
		params := make(sqlmini.Params)
		for _, name := range q.Params() {
			if name == aig.PrevParam && havePrev {
				params[name] = prev
				continue
			}
			src, ok := ir.QueryParams[name]
			if !ok {
				return false, fmt.Errorf("mediator: probe parameter $%s has no source", name)
			}
			b, err := scope.ResolveBinding(src)
			if err != nil {
				return false, err
			}
			params[name] = b
		}
		var out *relstore.Table
		if srcs := q.Sources(); len(srcs) == 1 {
			src, gerr := g.reg.Get(srcs[0])
			if gerr != nil {
				return false, gerr
			}
			var xerr error
			out, _, xerr = src.Exec(g.ctx, "probe", q, params, g.opts.PlanOpts)
			if xerr != nil {
				return false, xerr
			}
		} else {
			// Parameter-only (or undecomposed multi-source) probe runs at
			// the mediator; the latter requires local sources.
			var xerr error
			out, xerr = sqlmini.Run("probe", q, g.reg, g.reg, g.reg, params, g.opts.PlanOpts)
			if xerr != nil {
				return false, xerr
			}
		}
		prev = sqlmini.TableBinding(out)
		havePrev = true
		if out.Len() == 0 {
			return false, nil
		}
	}
	return havePrev && len(prev.Rows) > 0, nil
}
