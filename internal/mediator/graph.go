package mediator

import (
	"context"
	"fmt"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/dtd"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/source"
)

// ctxNode is one occurrence of an element type in the DTD's template tree
// — the unit at which the mediator materializes instance tables and
// computes synthesized attributes. Distinguishing occurrences (Fig. 6
// shows trId once under treatment and once under item) is what keeps the
// dependency graph acyclic when a type is shared between independent
// subtrees.
type ctxNode struct {
	path     string
	elem     string
	parent   *ctxNode
	children []*ctxNode // production order; one per occurrence
}

// buildContextTree expands the (non-recursive) DTD into its template
// tree.
func buildContextTree(d *dtd.DTD) (*ctxNode, error) {
	if d.IsRecursive() {
		return nil, fmt.Errorf("mediator: the DTD is recursive; unfold it first (specialize.Unfold) or use EvaluateRecursive")
	}
	var expand func(elem, path string, parent *ctxNode) *ctxNode
	expand = func(elem, path string, parent *ctxNode) *ctxNode {
		n := &ctxNode{path: path, elem: elem, parent: parent}
		p, _ := d.Production(elem)
		occ := make(map[string]int)
		for _, c := range p.Children {
			occ[c]++
			childPath := path + "/" + c
			if occ[c] > 1 {
				childPath = fmt.Sprintf("%s#%d", childPath, occ[c])
			}
			n.children = append(n.children, expand(c, childPath, n))
		}
		return n
	}
	return expand(d.Root, d.Root, nil), nil
}

// child returns the first child occurrence of the given element type.
func (c *ctxNode) child(elem string) *ctxNode {
	for _, ch := range c.children {
		if ch.elem == elem {
			return ch
		}
	}
	return nil
}

// nodeKind discriminates graph nodes.
type nodeKind int

const (
	nodeQuery nodeKind = iota // executes at a real source
	nodeLocal                 // mediator-side application code
)

// edge is a producer-consumer dependency in the query dependency graph,
// annotated with the shipped volume (estimated at compile time, measured
// at run time).
type edge struct {
	from, to *node
	estBytes float64
	bytes    int
	// producers, set when edges are rewired around merged nodes, lists
	// the original producing nodes this edge stands for: the consumer
	// receives only those parts' outputs ("the relevant tuples from Q are
	// extracted before shipping", §5.4).
	producers []*node
}

// node is one vertex of the dependency graph: a (possibly merged) query
// at a source, or a local mediator task.
type node struct {
	idx    int
	name   string
	kind   nodeKind
	source string
	in     []*edge
	out    []*edge

	// Query nodes execute their parts in order; merging fuses nodes by
	// concatenating parts (§5.4).
	parts []*part
	// items, set on merged nodes, interleaves query parts with absorbed
	// local tasks in dependency order.
	items []mergedItem

	// Local nodes run application code against the store; they report the
	// number of rows touched so the virtual clock can charge
	// MediatorRowCostSec.
	runLocal func(x *exec) (rows int, err error)

	// Compile-time estimates (for Schedule/Merge).
	estCost     float64
	estOutBytes float64

	// Runtime measurements.
	done     chan struct{}
	finished bool // set (under the exec mutex) before done closes
	err      error
	evalSec  float64
	outRows  int
	outBytes int
}

// part is one original query inside a (possibly merged) query node.
type part struct {
	name      string
	rw        *rewritten
	origin    *node // the pre-merge node that owned this part
	parentCtx *ctxNode
	// branch restricts the parent instances to those that chose the given
	// alternative of a choice production (0 = no restriction).
	branch int
	// prev is the chain predecessor whose output binds $prev.
	prev *part
	// estimates
	estRows  float64
	estBytes float64
	estCost  float64
	// runtime result
	out *relstore.Table
}

// graph is the compiled dependency graph plus the store and context tree.
type graph struct {
	a     *aig.AIG
	reg   *source.Registry
	opts  Options
	ctx   context.Context // compile-time context; carries the caller's trace
	root  *ctxNode
	nodes []*node
	edges []*edge

	inhDone map[string]*node // ctx path -> barrier: instance table complete
	synOf   map[string]*node // ctx path -> syn computed
	estRows map[string]float64

	st      *store
	rootIDs []int // ids of root instances (exactly one)

	// executed, set after a successful run, is the plan as executed (the
	// recorded dispatch order under dynamic scheduling) — what
	// ExplainAnalyze renders.
	executed *plan
}

func (g *graph) newNode(kind nodeKind, src, name string) *node {
	n := &node{idx: len(g.nodes), kind: kind, source: src, name: name, done: make(chan struct{})}
	g.nodes = append(g.nodes, n)
	return n
}

func (g *graph) addEdge(from, to *node, estBytes float64) {
	if from == nil || to == nil || from == to {
		return
	}
	for _, e := range to.in {
		if e.from == from {
			e.estBytes += estBytes
			return
		}
	}
	e := &edge{from: from, to: to, estBytes: estBytes}
	g.edges = append(g.edges, e)
	from.out = append(from.out, e)
	to.in = append(to.in, e)
}

// attrSchemaFn resolves a rule source reference to its per-tuple binding
// schema within the AIG's declarations.
func (g *graph) attrSchema(src aig.SourceRef) (relstore.Schema, error) {
	var decl aig.AttrDecl
	if src.Side == aig.InhSide {
		decl = g.a.Inh[src.Elem]
	} else {
		decl = g.a.Syn[src.Elem]
	}
	if src.Member == "" {
		return decl.ScalarSchema(), nil
	}
	m, ok := decl.Member(src.Member)
	if !ok {
		return nil, fmt.Errorf("mediator: %s has no member %q", src, src.Member)
	}
	if m.Kind == aig.Scalar {
		return relstore.Schema{{Name: m.Name, Kind: m.ValueKind}}, nil
	}
	return m.Fields, nil
}

// depNodeFor returns the graph node whose completion makes a rule source
// available at the given parent context: the parent's inherited barrier
// for Inh references, the sibling's syn node for Syn references.
func (g *graph) depNodeFor(parentCtx *ctxNode, src aig.SourceRef) (*node, error) {
	if src.Side == aig.InhSide {
		return g.inhDone[parentCtx.path], nil
	}
	sib := parentCtx.child(src.Elem)
	if sib == nil {
		return nil, fmt.Errorf("mediator: %s: no child %q under %s", src, src.Elem, parentCtx.path)
	}
	return g.synOf[sib.path], nil
}

// compile builds the dependency graph for the AIG. ctx carries the
// caller's trace (source Estimate calls made while costing parent under
// the compile-phase span) and cancellation.
func compile(ctx context.Context, a *aig.AIG, reg *source.Registry, opts Options) (*graph, error) {
	root, err := buildContextTree(a.DTD)
	if err != nil {
		return nil, err
	}
	g := &graph{
		a: a, reg: reg, opts: opts, ctx: ctx, root: root,
		inhDone: make(map[string]*node),
		synOf:   make(map[string]*node),
		estRows: make(map[string]float64),
		st:      newStore(),
	}

	// Pass 1: create the barrier and syn nodes for every context.
	var mk func(c *ctxNode)
	mk = func(c *ctxNode) {
		g.inhDone[c.path] = g.newNode(nodeLocal, MediatorSource, "inh:"+c.path)
		g.synOf[c.path] = g.newNode(nodeLocal, MediatorSource, "syn:"+c.path)
		for _, ch := range c.children {
			mk(ch)
		}
	}
	mk(root)

	// The root barrier creates the single root instance from the AIG's
	// attribute (bound at execution time via exec.rootInh).
	g.inhDone[root.path].runLocal = func(x *exec) (int, error) {
		g.st.add(root.path, -1, x.rootInh)
		return 1, nil
	}

	// Pass 2: per-context materialization tasks, top-down so estimates
	// cascade.
	g.estRows[root.path] = 1
	if err := g.buildCtx(root); err != nil {
		return nil, err
	}

	// Pass 3: syn tasks bottom-up.
	var wireSyn func(c *ctxNode)
	wireSyn = func(c *ctxNode) {
		for _, ch := range c.children {
			wireSyn(ch)
		}
		g.buildSyn(c)
	}
	wireSyn(root)
	return g, nil
}

// buildCtx creates the materialization nodes for the children of context
// c and recurses.
func (g *graph) buildCtx(c *ctxNode) error {
	p, ok := g.a.DTD.Production(c.elem)
	if !ok {
		return fmt.Errorf("mediator: no production for %q", c.elem)
	}
	r := g.a.Rules[c.elem]

	switch p.Kind {
	case dtd.ProdText, dtd.ProdEmpty:
		// Leaves: nothing to materialize below.
		return nil

	case dtd.ProdSeq:
		for _, ch := range c.children {
			var ir *aig.InhRule
			if r != nil {
				ir = r.Inh[ch.elem]
			}
			if err := g.buildEdge(c, ch, ir, 0, false); err != nil {
				return err
			}
			if err := g.buildCtx(ch); err != nil {
				return err
			}
		}
		return nil

	case dtd.ProdStar:
		ch := c.children[0]
		var ir *aig.InhRule
		if r != nil {
			ir = r.Inh[ch.elem]
		}
		if ir == nil {
			return fmt.Errorf("mediator: star production of %s has no rule for %s", c.elem, ch.elem)
		}
		if err := g.buildEdge(c, ch, ir, 0, true); err != nil {
			return err
		}
		return g.buildCtx(ch)

	case dtd.ProdChoice:
		if r == nil || r.Cond == nil {
			return fmt.Errorf("mediator: choice production of %s has no condition query", c.elem)
		}
		condNode, err := g.buildCond(c, r)
		if err != nil {
			return err
		}
		for bi, ch := range c.children {
			var ir *aig.InhRule
			if bi < len(r.Branches) {
				ir = r.Branches[bi].Inh
			}
			if err := g.buildBranchEdge(c, ch, ir, bi+1, condNode); err != nil {
				return err
			}
			if err := g.buildCtx(ch); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("mediator: bad production kind for %s", c.elem)
	}
}
