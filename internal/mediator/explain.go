package mediator

import (
	"fmt"
	"sort"
	"strings"

	"github.com/aigrepro/aig/internal/aig"
)

// Explain compiles the AIG into its query dependency graph, applies the
// configured optimizations, and renders the resulting plan as text — the
// counterpart of a relational EXPLAIN for AIG evaluation. Nothing is
// executed; costs shown are the compile-time estimates the optimizer used
// (§5.2).
func (m *Mediator) Explain(a *aig.AIG) (string, error) {
	g, err := compile(a, m.reg, m.opts)
	if err != nil {
		return "", err
	}
	merged := 0
	if m.opts.Merge {
		merged = g.mergeQueries()
	}
	p := schedule(g.nodes, m.opts.Net, m.opts.Schedule)
	est := costOf(g.nodes, p, m.opts.Net, estimatedInputs(m.opts.Net))

	var b strings.Builder
	fmt.Fprintf(&b, "dependency graph: %d nodes, %d edges", len(g.nodes), len(g.edges))
	if m.opts.Merge {
		fmt.Fprintf(&b, " (%d merged groups)", merged)
	}
	fmt.Fprintf(&b, "\nestimated response time: %.3fs\n", est)

	sources := make([]string, 0, len(p.order))
	for s := range p.order {
		sources = append(sources, s)
	}
	sort.Strings(sources)
	for _, src := range sources {
		var queries []*node
		localCost := 0.0
		for _, n := range p.order[src] {
			if n.kind == nodeQuery {
				queries = append(queries, n)
			} else {
				localCost += n.estCost
			}
		}
		if src == MediatorSource {
			fmt.Fprintf(&b, "\n%s: %d local tasks (est %.3fs application time)\n",
				src, len(p.order[src])-len(queries), localCost)
		} else {
			fmt.Fprintf(&b, "\n%s: %d queries in schedule order\n", src, len(queries))
		}
		for i, n := range queries {
			fmt.Fprintf(&b, "  %2d. %s (est %.3fs, ~%s out)\n", i+1, n.name, n.estCost, byteCount(n.estOutBytes))
			for _, item := range n.items {
				if item.pt != nil {
					fmt.Fprintf(&b, "        part: %s\n", item.pt.rw.query)
				}
			}
			for _, pt := range n.parts {
				if n.items == nil {
					fmt.Fprintf(&b, "        %s\n", pt.rw.query)
				}
			}
			for _, e := range n.in {
				if e.from.kind == nodeQuery || e.estBytes > 0 {
					fmt.Fprintf(&b, "        <- %s (~%s shipped)\n", e.from.name, byteCount(e.estBytes))
				}
			}
		}
	}
	return b.String(), nil
}

func byteCount(bytes float64) string {
	switch {
	case bytes >= 1<<20:
		return fmt.Sprintf("%.1fMB", bytes/(1<<20))
	case bytes >= 1<<10:
		return fmt.Sprintf("%.1fKB", bytes/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", bytes)
	}
}
