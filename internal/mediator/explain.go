package mediator

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"github.com/aigrepro/aig/internal/aig"
)

// Explain compiles the AIG into its query dependency graph, applies the
// configured optimizations, and renders the resulting plan as text — the
// counterpart of a relational EXPLAIN for AIG evaluation. Nothing is
// executed; costs shown are the compile-time estimates the optimizer used
// (§5.2).
func (m *Mediator) Explain(a *aig.AIG) (string, error) {
	g, err := compile(context.Background(), a, m.reg, m.opts)
	if err != nil {
		return "", err
	}
	merged := 0
	if m.opts.Merge {
		merged = g.mergeQueries()
	}
	p := schedule(g.nodes, m.opts.Net, m.opts.Schedule)
	return renderPlan(g, p, merged, nil), nil
}

// ExplainAnalyze is the runtime counterpart of Explain: it evaluates the
// AIG and renders the executed plan annotated with the measured actuals —
// engine time, result rows and bytes per query node — next to the
// optimizer's compile-time estimates, plus the per-node estimation error.
// The evaluation result (document and report) is returned alongside the
// rendering so callers can still use or verify the output.
func (m *Mediator) ExplainAnalyze(a *aig.AIG, rootInh *aig.AttrValue) (string, *Result, error) {
	res, g, err := m.evaluate(context.Background(), a, rootInh)
	if err != nil {
		return "", nil, err
	}
	return renderPlan(g, g.executed, res.Report.MergedGroups, res), res, nil
}

// renderPlan is the shared renderer behind Explain (res == nil: estimates
// only) and ExplainAnalyze (res != nil: estimates next to measured
// actuals and the estimation error).
func renderPlan(g *graph, p *plan, merged int, res *Result) string {
	analyze := res != nil
	var b strings.Builder
	fmt.Fprintf(&b, "dependency graph: %d nodes, %d edges", len(g.nodes), len(g.edges))
	if g.opts.Merge {
		fmt.Fprintf(&b, " (%d merged groups)", merged)
	}
	est := costOf(g.nodes, p, g.opts.Net, estimatedInputs(g.opts.Net))
	fmt.Fprintf(&b, "\nestimated response time: %.3fs\n", est)
	if analyze {
		fmt.Fprintf(&b, "measured response time:  %.3fs (virtual clock, error %s)\n",
			res.Report.ResponseTimeSec, pctError(res.Report.ResponseTimeSec, est))
		fmt.Fprintf(&b, "wall time: %.3fs (compile %.3fs, optimize %.3fs, execute %.3fs, tag %.3fs)\n",
			res.Report.WallSec, res.Report.PhaseSec["compile"], res.Report.PhaseSec["optimize"],
			res.Report.PhaseSec["execute"], res.Report.PhaseSec["tag"])
	}

	sources := make([]string, 0, len(p.order))
	for s := range p.order {
		sources = append(sources, s)
	}
	sort.Strings(sources)
	for _, src := range sources {
		var queries []*node
		localEst, localActual := 0.0, 0.0
		for _, n := range p.order[src] {
			if n.kind == nodeQuery {
				queries = append(queries, n)
			} else {
				localEst += n.estCost
				localActual += n.evalSec
			}
		}
		if src == MediatorSource {
			fmt.Fprintf(&b, "\n%s: %d local tasks (est %.3fs application time", src, len(p.order[src])-len(queries), localEst)
			if analyze {
				fmt.Fprintf(&b, ", actual %.3fs", localActual)
			}
			b.WriteString(")\n")
		} else {
			fmt.Fprintf(&b, "\n%s: %d queries in %s order\n", src, len(queries), orderName(analyze))
		}
		for i, n := range queries {
			renderNode(&b, i+1, n, analyze)
		}
	}
	return b.String()
}

func orderName(analyze bool) string {
	if analyze {
		return "execution"
	}
	return "schedule"
}

// renderNode prints one query node: its estimate line (and, when
// analyzing, the actuals and estimation error), its query parts in
// execution order, and its incoming shipments.
func renderNode(b *strings.Builder, pos int, n *node, analyze bool) {
	fmt.Fprintf(b, "  %2d. %s (est %.3fs, ~%s out", pos, n.name, n.estCost, byteCount(n.estOutBytes))
	if analyze {
		fmt.Fprintf(b, "; actual %.3fs, %d rows, %s out; bytes err %s",
			n.evalSec, n.outRows, byteCount(float64(n.outBytes)), pctError(float64(n.outBytes), n.estOutBytes))
	}
	b.WriteString(")\n")
	if n.err != nil {
		fmt.Fprintf(b, "        ERROR: %v\n", n.err)
	}
	parts := queryParts(n)
	for _, pt := range parts {
		prefix := ""
		if len(parts) > 1 {
			prefix = "part: "
		}
		fmt.Fprintf(b, "        %s%s\n", prefix, pt.rw.query)
		if analyze && pt.out != nil {
			fmt.Fprintf(b, "          -> %d rows, %s (est %.0f rows, ~%s; rows err %s)\n",
				pt.out.Len(), byteCount(float64(pt.out.ByteSize())),
				pt.estRows, byteCount(pt.estBytes), pctError(float64(pt.out.Len()), pt.estRows))
		}
	}
	for _, e := range n.in {
		if e.from.kind != nodeQuery && e.estBytes <= 0 && e.bytes == 0 {
			continue
		}
		fmt.Fprintf(b, "        <- %s (~%s shipped", e.from.name, byteCount(e.estBytes))
		if analyze {
			fmt.Fprintf(b, ", actual %s", byteCount(float64(e.bytes)))
		}
		b.WriteString(")\n")
	}
}

// queryParts returns the node's query parts in execution order,
// regardless of whether the node was merged (items, interleaving absorbed
// local tasks that are skipped here) or not (parts). This is the single
// source of truth for plan rendering; Explain and ExplainAnalyze share
// it.
func queryParts(n *node) []*part {
	if n.items == nil {
		return n.parts
	}
	var ps []*part
	for _, item := range n.items {
		if item.pt != nil {
			ps = append(ps, item.pt)
		}
	}
	return ps
}

// pctError formats the relative estimation error of actual vs est
// ("+12%", "-31%"); when the estimate is zero there is nothing to
// compare against.
func pctError(actual, est float64) string {
	if est == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.0f%%", 100*(actual-est)/est)
}

func byteCount(bytes float64) string {
	switch {
	case bytes >= 1<<20:
		return fmt.Sprintf("%.1fMB", bytes/(1<<20))
	case bytes >= 1<<10:
		return fmt.Sprintf("%.1fKB", bytes/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", bytes)
	}
}
