package mediator

import (
	"testing"

	"github.com/aigrepro/aig/internal/hospital"
	"github.com/aigrepro/aig/internal/relstore"
)

// TestDynamicSchedulingMatches verifies the §5.5 dynamic scheduler
// produces the same document as the static schedulers, on both the
// hospital pipeline and the contention workload.
func TestDynamicSchedulingMatches(t *testing.T) {
	cat := hospital.TinyCatalog()
	a, reg := prepared(t, cat, 4, true)
	want := conceptualDoc(t, a, cat, "d1")

	opts := DefaultOptions()
	opts.Schedule = ScheduleDynamic
	m := New(reg, opts)
	res, err := m.Evaluate(a, hospital.RootInh(a, "d1"))
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(res.Doc) {
		t.Errorf("dynamic scheduling changed the document:\n%s\n%s", want, res.Doc)
	}
	if res.Report.ResponseTimeSec <= 0 {
		t.Errorf("response time = %v", res.Report.ResponseTimeSec)
	}

	wl, wreg := contentionWorkload(t)
	wopts := DefaultOptions()
	wopts.Merge = false
	wopts.Schedule = ScheduleDynamic
	dres, err := New(wreg, wopts).Evaluate(wl, nil)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := New(wreg, Options{Net: DefaultNet(), Schedule: ScheduleLevel}).Evaluate(wl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dres.Doc.CountNodes() != sres.Doc.CountNodes() {
		t.Errorf("dynamic vs static document sizes differ: %d vs %d",
			dres.Doc.CountNodes(), sres.Doc.CountNodes())
	}
}

// TestDynamicSchedulingPropagatesErrors checks that a failing query
// unblocks every worker and surfaces the error.
func TestDynamicSchedulingPropagatesErrors(t *testing.T) {
	cat := hospital.TinyCatalog()
	a, reg := prepared(t, cat, 3, true)
	// Break DB3 after preparation so Q4 fails at run time.
	db3, err := cat.Database("DB3")
	if err != nil {
		t.Fatal(err)
	}
	db3.DropTable("billing")
	db3.CreateTable("billing", relstore.MustSchema("other:string"))

	opts := DefaultOptions()
	opts.Schedule = ScheduleDynamic
	m := New(reg, opts)
	if _, err := m.Evaluate(a, hospital.RootInh(a, "d1")); err == nil {
		t.Fatal("broken source did not surface an error")
	}
}
