// Package mediator implements the middleware system of §5: it compiles a
// specialized AIG into a query dependency graph of set-oriented,
// single-source queries, optimizes the graph by cost-based query merging
// (Algorithm Merge, §5.4) and list scheduling (Algorithm Schedule, §5.3),
// executes the plan with one worker per data source shipping intermediate
// tables through the mediator, and finally tags the cached tables into
// the output XML tree.
//
// The evaluation is set-at-a-time: each semantic-rule query runs once per
// production edge over the entire table of parent instances (rewritten to
// join a parameter table carrying the parent identifiers — the paper's
// "path encoding" columns), instead of once per node as in the conceptual
// evaluator. Both evaluators produce identical documents; the aig package
// tests rely on that.
//
// Communication and per-query overheads are accounted on a deterministic
// virtual clock (the paper itself computed total evaluation time "by
// simulating the transfer of temporary tables ... using different
// bandwidths"); real execution still runs sources concurrently.
package mediator

import (
	"github.com/aigrepro/aig/internal/obs"
	"github.com/aigrepro/aig/internal/sqlmini"
	"github.com/aigrepro/aig/internal/xmltree"
)

// MediatorSource is the pseudo-source name for work executed inside the
// middleware (local tasks, synthesized-attribute computation, tagging).
const MediatorSource = "Mediator"

// NetModel is the simulated communication model used for cost estimation
// and virtual-clock accounting.
type NetModel struct {
	// BandwidthBytesPerSec is the link bandwidth between any two sites.
	// The paper's experiments use 1 Mbps = 125000 bytes/s.
	BandwidthBytesPerSec float64
	// LatencySec is the fixed cost of one shipment.
	LatencySec float64
	// QueryOverheadSec is the fixed cost of issuing one query to a source
	// (opening a connection, parsing and preparing the statement, creating
	// and populating temporary tables — §5.1).
	QueryOverheadSec float64
	// MediatorRowCostSec is the application-code cost per row of
	// mediator-local processing; the prototype middleware "does not
	// possess a relational engine" (§5.5), so local work is slower per
	// tuple than source-engine work.
	MediatorRowCostSec float64
}

// DefaultNet returns the experimental setup of §6: 1 Mbps links with
// small fixed overheads.
func DefaultNet() NetModel {
	return NetModel{
		BandwidthBytesPerSec: 125000, // 1 Mbps
		LatencySec:           0.010,
		QueryOverheadSec:     0.050,
		MediatorRowCostSec:   0.00002,
	}
}

// TransCost returns the simulated seconds to ship b bytes from source s1
// to source s2 (§5.2). Same-site transfers are free; transfers between
// two real sources route through the mediator and pay twice.
func (n NetModel) TransCost(s1, s2 string, bytes int) float64 {
	if s1 == s2 {
		return 0
	}
	hop := n.LatencySec + float64(bytes)/n.BandwidthBytesPerSec
	if s1 != MediatorSource && s2 != MediatorSource {
		return 2 * hop
	}
	return hop
}

// ScheduleAlgo selects the per-source query ordering strategy.
type ScheduleAlgo int

// The scheduling algorithms.
const (
	// ScheduleLevel is Algorithm Schedule of §5.3: list scheduling by
	// maximum downstream path cost, fixed before execution.
	ScheduleLevel ScheduleAlgo = iota
	// ScheduleFIFO is the ablation baseline: queries run in graph
	// construction order.
	ScheduleFIFO
	// ScheduleDynamic is the extension sketched in §5.5/§7: each source
	// worker dispatches, at run time, whichever of its pending queries has
	// all inputs available, breaking ties by the §5.3 path-cost priority.
	// A statically early query whose inputs are late no longer blocks the
	// queue behind it.
	ScheduleDynamic
)

// Options configures a mediator evaluation.
type Options struct {
	// Merge enables Algorithm Merge (§5.4). Figure 10 is the ratio of
	// evaluation time with Merge off to Merge on.
	Merge bool
	// Schedule selects the scheduling algorithm.
	Schedule ScheduleAlgo
	// CopyElim enables copy elimination (§4): element types whose
	// inherited attributes are pure projections of their parent's are not
	// materialized; queries read the origin tables directly.
	CopyElim bool
	// Net is the simulated communication model.
	Net NetModel
	// PlanOpts tunes per-source query planning.
	PlanOpts sqlmini.PlanOptions
	// Tracer, when non-nil, records one span tree per evaluation: a root
	// "evaluate" span with one child per Fig. 5 phase (compile, optimize,
	// execute, tag) and, under "execute", one span per dependency-graph
	// node carrying the optimizer's estimates next to the measured
	// actuals. A nil tracer disables tracing at negligible cost.
	Tracer *obs.Tracer
}

// DefaultOptions enables every optimization with the §6 network model.
func DefaultOptions() Options {
	return Options{Merge: true, Schedule: ScheduleLevel, CopyElim: true, Net: DefaultNet()}
}

// Report describes one evaluation: the virtual response time of the
// executed plan (the paper's cost(P)) and volume counters.
type Report struct {
	// ResponseTimeSec is cost(P): the maximum completion time over all
	// plan nodes on the virtual clock.
	ResponseTimeSec float64
	// SourceQueryCount is the number of query requests issued to real
	// sources after merging.
	SourceQueryCount int
	// MergedGroups is the number of merged nodes containing >1 query.
	MergedGroups int
	// ShippedBytes is the total simulated communication volume.
	ShippedBytes int
	// NodeCount and EdgeCount describe the final dependency graph.
	NodeCount, EdgeCount int
	// PerSourceBusySec is the summed eval time per source.
	PerSourceBusySec map[string]float64
	// WallSec is the measured wall-clock duration of the evaluation (as
	// opposed to ResponseTimeSec, which runs on the virtual clock).
	WallSec float64
	// PhaseSec maps each Fig. 5 phase — "compile", "optimize", "execute",
	// "tag" — to its measured wall-clock duration in seconds.
	PhaseSec map[string]float64
}

// Result is the outcome of a mediator evaluation.
type Result struct {
	Doc    *xmltree.Node
	Report Report
}
