package mediator

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/aigrepro/aig/internal/hospital"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/source"
	"github.com/aigrepro/aig/internal/specialize"
	"github.com/aigrepro/aig/internal/sqlmini"
)

// errInjected marks the failure planted by failingSource.
var errInjected = errors.New("injected source failure")

// failingSource delegates to a real source but fails the Nth Exec call
// across all wrapped sources (shared counter), so the plan is already
// partly executed when the failure lands.
type failingSource struct {
	source.Source
	calls  *int32
	failAt int32
}

func (f *failingSource) Exec(ctx context.Context, name string, q *sqlmini.Query, params sqlmini.Params, opts sqlmini.PlanOptions) (*relstore.Table, time.Duration, error) {
	if atomic.AddInt32(f.calls, 1) == f.failAt {
		return nil, 0, errInjected
	}
	return f.Source.Exec(ctx, name, q, params, opts)
}

// failingRegistry wraps every database of the catalog so that the
// failAt-th source query fails.
func failingRegistry(cat *relstore.Catalog, calls *int32, failAt int32) *source.Registry {
	reg := source.NewRegistry()
	for _, name := range cat.DatabaseNames() {
		db, err := cat.Database(name)
		if err != nil {
			continue
		}
		reg.Add(&failingSource{Source: source.NewLocal(db), calls: calls, failAt: failAt})
	}
	return reg
}

// drainGoroutines waits for the goroutine count to return to the
// baseline (goleak is unavailable, so this is the leak check: worker
// goroutines must exit even when the plan fails).
func drainGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSourceErrorMidPlan fails the second source query under every
// scheduler: Evaluate must surface the injected error and leave no
// worker goroutines behind.
func TestSourceErrorMidPlan(t *testing.T) {
	for _, tc := range []struct {
		name string
		algo ScheduleAlgo
	}{
		{"level", ScheduleLevel},
		{"fifo", ScheduleFIFO},
		{"dynamic", ScheduleDynamic},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cat := hospital.TinyCatalog()
			a, _ := prepared(t, cat, 3, true)
			var calls int32
			reg := failingRegistry(cat, &calls, 2)
			m := New(reg, Options{Net: DefaultNet(), Schedule: tc.algo, Merge: true, CopyElim: true})

			baseline := runtime.NumGoroutine()
			_, err := m.Evaluate(a, hospital.RootInh(a, "d1"))
			if err == nil {
				t.Fatal("mid-plan source failure was swallowed")
			}
			if !errors.Is(err, errInjected) && !strings.Contains(err.Error(), errInjected.Error()) {
				t.Fatalf("error does not surface the source failure: %v", err)
			}
			if atomic.LoadInt32(&calls) < 2 {
				t.Fatalf("failure did not land mid-plan: %d exec calls", calls)
			}
			drainGoroutines(t, baseline)
		})
	}
}

// TestDynamicWakeAfterFailure blocks dynamic workers on dependencies
// that will never finish (their producer failed) and checks the drain
// logic wakes them instead of deadlocking.
func TestDynamicWakeAfterFailure(t *testing.T) {
	cat := hospital.TinyCatalog()
	a, _ := prepared(t, cat, 3, true)
	// Fail the very first query: every cross-source dependent is still
	// waiting in cond.Wait at that point.
	var calls int32
	reg := failingRegistry(cat, &calls, 1)
	m := New(reg, Options{Net: DefaultNet(), Schedule: ScheduleDynamic})

	baseline := runtime.NumGoroutine()
	done := make(chan error, 1)
	go func() {
		_, err := m.Evaluate(a, hospital.RootInh(a, "d1"))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("failure was swallowed")
		}
		if !strings.Contains(err.Error(), errInjected.Error()) {
			t.Fatalf("unexpected error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("dynamic scheduler deadlocked after source failure")
	}
	drainGoroutines(t, baseline)
}

// TestEvaluateRecursiveMaxDepth makes the procedure hierarchy cyclic so
// re-unrolling never converges, and checks the maxDepth error is clean
// and leak-free.
func TestEvaluateRecursiveMaxDepth(t *testing.T) {
	cat := hospital.TinyCatalog()
	proc, err := cat.Table("DB4", "procedure")
	if err != nil {
		t.Fatal(err)
	}
	proc.MustInsert(relstore.Tuple{relstore.String("t5"), relstore.String("t2")})
	// Compile and decompose but do not unfold: EvaluateRecursive takes the
	// recursive grammar.
	a, err := specialize.CompileConstraints(hospital.Sigma0(true))
	if err != nil {
		t.Fatal(err)
	}
	a, err = specialize.DecomposeQueries(a, sqlmini.CatalogSchemas{Catalog: cat}, sqlmini.CatalogStats{Catalog: cat}, sqlmini.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	reg := source.RegistryFromCatalog(cat)
	m := New(reg, DefaultOptions())

	baseline := runtime.NumGoroutine()
	_, depth, err := m.EvaluateRecursive(a, hospital.RootInh(a, "d1"), 1, 6)
	if err == nil {
		t.Fatal("cyclic data converged")
	}
	if depth != 6 {
		t.Errorf("gave up at depth %d, want maxDepth 6", depth)
	}
	if !strings.Contains(err.Error(), "still expandable") {
		t.Errorf("unexpected maxDepth error: %v", err)
	}
	drainGoroutines(t, baseline)
}
