package mediator

import (
	"fmt"
	"sort"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/dtd"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/sqlmini"
)

// sourceRowCostSec converts a source engine's abstract cost units
// (tuples processed) to seconds, calibrating eval_cost estimates against
// the in-process engine.
const sourceRowCostSec = 2e-6

// buildEdge compiles the materialization of child context ch from parent
// context c under inherited rule ir. branch > 0 restricts the parent
// instances to a choice alternative; condSplit is that production's split
// node.
func (g *graph) buildEdge(c, ch *ctxNode, ir *aig.InhRule, branch int, star bool) error {
	return g.buildEdgeFull(c, ch, ir, branch, nil, star)
}

func (g *graph) buildBranchEdge(c, ch *ctxNode, ir *aig.InhRule, branch int, condSplit *node) error {
	return g.buildEdgeFull(c, ch, ir, branch, condSplit, false)
}

func (g *graph) buildEdgeFull(c, ch *ctxNode, ir *aig.InhRule, branch int, condSplit *node, star bool) error {
	parentRows := g.estRows[c.path]
	if parentRows == 0 {
		parentRows = 1
	}

	mat := g.newNode(nodeLocal, MediatorSource, "mat:"+ch.path)
	g.addEdge(mat, g.inhDone[ch.path], 0)
	if condSplit != nil {
		g.addEdge(condSplit, mat, 8*parentRows)
	}

	// Pure copy edges (and ruleless edges) are mediator-local.
	if ir == nil || !ir.IsQuery() {
		g.estRows[ch.path] = parentRows
		if star {
			if ir == nil || len(ir.Copies) != 1 {
				return fmt.Errorf("mediator: star edge %s needs a query or one collection copy", ch.path)
			}
			// Iterating a collection member multiplies instances.
			g.estRows[ch.path] = parentRows * 4
		}
		g.addEdge(g.inhDone[c.path], mat, 0)
		if ir != nil {
			for _, cp := range ir.Copies {
				dep, err := g.depNodeFor(c, cp.Src)
				if err != nil {
					return err
				}
				g.addEdge(dep, mat, 0)
			}
		}
		elided := g.opts.CopyElim && isPureProjection(ir)
		mat.estCost = localCost(g.opts.Net, g.estRows[ch.path], elided)
		g.setCopyMat(mat, c, ch, ir, branch, star, elided)
		return nil
	}

	// Query edges: one graph node per (decomposed) chain step.
	steps := ir.Chain
	if ir.Query != nil {
		steps = []*sqlmini.Query{ir.Query}
	}
	var prevPart *part
	var prevNode *node
	var prevSchema relstore.Schema
	for k, q := range steps {
		var prevForRewrite relstore.Schema
		if k > 0 {
			prevForRewrite = prevSchema
		}
		rw, err := rewriteSetOriented(q, ir.QueryParams, g.attrSchema, prevForRewrite)
		if err != nil {
			return fmt.Errorf("mediator: edge %s step %d: %v", ch.path, k+1, err)
		}
		srcName := MediatorSource
		if srcs := rw.query.Sources(); len(srcs) == 1 {
			srcName = srcs[0]
		} else if len(srcs) > 1 {
			return fmt.Errorf("mediator: edge %s step %d still references %v; decompose first", ch.path, k+1, srcs)
		}
		resolved, err := sqlmini.Resolve(rw.query, g.reg, rw.paramSchemas())
		if err != nil {
			return fmt.Errorf("mediator: edge %s step %d: %v", ch.path, k+1, err)
		}

		name := fmt.Sprintf("Q:%s", ch.path)
		if len(steps) > 1 {
			name = fmt.Sprintf("Q:%s/%d", ch.path, k+1)
		}
		qn := g.newNode(nodeQuery, srcName, name)
		pt := &part{name: name, rw: rw, origin: qn, parentCtx: c, branch: branch, prev: prevPart}
		qn.parts = []*part{pt}

		// Estimates via the source costing API.
		est := g.estimatePart(srcName, rw, c, prevPart)
		pt.estRows, pt.estBytes, pt.estCost = est.Rows, est.Bytes, est.Cost*sourceRowCostSec
		qn.estCost = pt.estCost
		qn.estOutBytes = est.Bytes

		// Dependencies from parameter tables.
		for _, spec := range rw.specs {
			switch spec.kind {
			case paramPrev:
				g.addEdge(prevNode, qn, prevPart.estBytes)
			case paramParentIDs:
				g.addEdge(g.inhDone[c.path], qn, 8*parentRows)
			default:
				dep, err := g.depNodeFor(c, spec.src)
				if err != nil {
					return err
				}
				rows := parentRows
				if spec.kind == paramCollection {
					rows = parentRows * 4
				}
				g.addEdge(dep, qn, rows*estSchemaBytes(spec.schema))
			}
		}
		if condSplit != nil {
			g.addEdge(condSplit, qn, 8*parentRows)
		}

		prevPart, prevNode, prevSchema = pt, qn, resolved.Output
	}

	// Materialize the final step's output into child instances.
	g.addEdge(prevNode, mat, prevPart.estBytes)
	g.addEdge(g.inhDone[c.path], mat, 0) // parent inh values for copy fills
	childRows := parentRows
	if star {
		childRows = prevPart.estRows
	}
	g.estRows[ch.path] = childRows
	mat.estCost = localCost(g.opts.Net, childRows, false)
	g.setQueryMat(mat, c, ch, ir, branch, star, prevPart)
	return nil
}

func estSchemaBytes(s relstore.Schema) float64 {
	b := 0.0
	for _, c := range s {
		if c.Kind == relstore.KindInt {
			b += 8
		} else {
			b += 16
		}
	}
	return b
}

func localCost(net NetModel, rows float64, elided bool) float64 {
	if elided {
		return 0
	}
	return rows * net.MediatorRowCostSec
}

// isPureProjection reports whether a copy rule only projects scalar
// members of the parent's inherited attribute — the copy chains that copy
// elimination (§4) elides.
func isPureProjection(ir *aig.InhRule) bool {
	if ir == nil {
		return true
	}
	if ir.IsQuery() {
		return false
	}
	for _, cp := range ir.Copies {
		if cp.Src.Side != aig.InhSide {
			return false
		}
	}
	return true
}

// estimatePart asks the owning source for eval_cost and size estimates of
// a rewritten query (§5.2's costing API).
func (g *graph) estimatePart(srcName string, rw *rewritten, parentCtx *ctxNode, prev *part) sourceEstimate {
	parentRows := g.estRows[parentCtx.path]
	if parentRows == 0 {
		parentRows = 1
	}
	opts := g.opts.PlanOpts
	opts.ParamCards = make(map[string]int, len(rw.specs))
	for _, spec := range rw.specs {
		switch spec.kind {
		case paramPrev:
			if prev != nil {
				opts.ParamCards[spec.name] = int(prev.estRows) + 1
			}
		case paramCollection:
			opts.ParamCards[spec.name] = int(parentRows*4) + 1
		default:
			opts.ParamCards[spec.name] = int(parentRows) + 1
		}
	}
	if srcName == MediatorSource {
		// Parameter-only query; estimate with a blank source.
		return sourceEstimate{Rows: parentRows, Bytes: parentRows * 16, Cost: parentRows}
	}
	src, err := g.reg.Get(srcName)
	if err != nil {
		return sourceEstimate{Rows: parentRows, Bytes: parentRows * 16, Cost: parentRows}
	}
	est, err := src.Estimate(g.ctx, rw.query, rw.paramSchemas(), opts)
	if err != nil {
		return sourceEstimate{Rows: parentRows, Bytes: parentRows * 16, Cost: parentRows}
	}
	return sourceEstimate{Rows: est.Rows, Bytes: est.Bytes, Cost: est.Cost}
}

type sourceEstimate struct {
	Rows, Bytes, Cost float64
}

// buildCond compiles a choice production's condition query and branch
// split.
func (g *graph) buildCond(c *ctxNode, r *aig.Rule) (*node, error) {
	rw, err := rewriteSetOriented(r.Cond, r.CondParams, g.attrSchema, nil)
	if err != nil {
		return nil, fmt.Errorf("mediator: condition of %s: %v", c.elem, err)
	}
	srcName := MediatorSource
	if srcs := rw.query.Sources(); len(srcs) == 1 {
		srcName = srcs[0]
	} else if len(srcs) > 1 {
		return nil, fmt.Errorf("mediator: condition of %s references %v; decompose first", c.elem, srcs)
	}
	if _, err := sqlmini.Resolve(rw.query, g.reg, rw.paramSchemas()); err != nil {
		return nil, fmt.Errorf("mediator: condition of %s: %v", c.elem, err)
	}
	qn := g.newNode(nodeQuery, srcName, "Qc:"+c.path)
	pt := &part{name: qn.name, rw: rw, parentCtx: c}
	pt.origin = qn
	qn.parts = []*part{pt}
	est := g.estimatePart(srcName, rw, c, nil)
	pt.estRows, pt.estBytes, pt.estCost = est.Rows, est.Bytes, est.Cost*sourceRowCostSec
	qn.estCost, qn.estOutBytes = pt.estCost, est.Bytes
	for _, spec := range rw.specs {
		switch spec.kind {
		case paramParentIDs:
			g.addEdge(g.inhDone[c.path], qn, 8*g.estRows[c.path])
		case paramPrev:
		default:
			dep, err := g.depNodeFor(c, spec.src)
			if err != nil {
				return nil, err
			}
			g.addEdge(dep, qn, g.estRows[c.path]*estSchemaBytes(spec.schema))
		}
	}

	split := g.newNode(nodeLocal, MediatorSource, "branch:"+c.path)
	split.estCost = localCost(g.opts.Net, g.estRows[c.path], false)
	g.addEdge(qn, split, pt.estBytes)
	nBranches := len(c.children)
	split.runLocal = func(x *exec) (int, error) {
		out := pt.out
		if out == nil {
			return 0, fmt.Errorf("mediator: condition result of %s missing", c.path)
		}
		if out.Schema().ColumnIndex(ParentCol) != 0 || len(out.Schema()) < 2 {
			return 0, fmt.Errorf("mediator: condition result of %s lacks a leading %s column", c.path, ParentCol)
		}
		byID := make(map[int]*instance)
		for _, inst := range g.st.all(c.path) {
			byID[inst.id] = inst
		}
		for _, row := range out.Rows() {
			id := int(row[0].AsInt())
			v := row[1]
			if v.Kind() != relstore.KindInt {
				return 0, fmt.Errorf("mediator: condition of %s returned non-integer %s", c.path, v)
			}
			b := int(v.AsInt())
			if b < 1 || b > nBranches {
				return 0, fmt.Errorf("mediator: condition of %s returned %d, want 1..%d", c.path, b, nBranches)
			}
			inst, ok := byID[id]
			if !ok {
				return 0, fmt.Errorf("mediator: condition of %s references unknown parent %d", c.path, id)
			}
			if inst.branch == 0 {
				inst.branch = b
			}
		}
		for _, inst := range g.st.all(c.path) {
			if inst.branch == 0 {
				return 0, fmt.Errorf("mediator: condition of %s returned no row for an instance", c.path)
			}
		}
		return out.Len(), nil
	}
	return split, nil
}

// parentInstances lists the parent instances an edge applies to.
func (g *graph) parentInstances(c *ctxNode, branch int) []*instance {
	all := g.st.all(c.path)
	if branch == 0 {
		return all
	}
	out := make([]*instance, 0, len(all))
	for _, inst := range all {
		if inst.branch == branch {
			out = append(out, inst)
		}
	}
	return out
}

// setCopyMat installs the materialization body for a copy edge.
func (g *graph) setCopyMat(mat *node, c, ch *ctxNode, ir *aig.InhRule, branch int, star, elided bool) {
	decl := g.a.Inh[ch.elem]
	mat.runLocal = func(x *exec) (int, error) {
		rows := 0
		for _, parent := range g.parentInstances(c, branch) {
			scope, err := g.instanceScope(c, parent)
			if err != nil {
				return rows, err
			}
			if star {
				b, err := scope.ResolveBinding(ir.Copies[0].Src)
				if err != nil {
					return rows, err
				}
				sorted := make([]relstore.Tuple, len(b.Rows))
				copy(sorted, b.Rows)
				sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Compare(sorted[j]) < 0 })
				names := decl.ScalarSchema().Names()
				for _, row := range sorted {
					inh := aig.NewAttrValue(decl)
					if err := inh.BindScalarsFromRow(names, b.Schema, row); err != nil {
						return rows, err
					}
					g.st.add(ch.path, parent.id, inh)
					rows++
				}
				continue
			}
			inh := aig.NewAttrValue(decl)
			if ir != nil {
				if err := g.a.EvalCopiesFor(ir, inh, scope); err != nil {
					return rows, err
				}
			}
			g.st.add(ch.path, parent.id, inh)
			rows++
		}
		if elided {
			return 0, nil // copy elimination: no mediator copying charged
		}
		return rows, nil
	}
}

// setQueryMat installs the materialization body for a query edge: the
// final chain step's output rows become child instances (star), the
// child's collection member (TargetCollection), or the child's scalar
// members (single-row rules).
func (g *graph) setQueryMat(mat *node, c, ch *ctxNode, ir *aig.InhRule, branch int, star bool, last *part) {
	decl := g.a.Inh[ch.elem]
	mat.runLocal = func(x *exec) (int, error) {
		out := last.out
		if out == nil {
			return 0, fmt.Errorf("mediator: query result for %s missing", ch.path)
		}
		parentIdx := out.Schema().ColumnIndex(ParentCol)
		if parentIdx != 0 {
			return 0, fmt.Errorf("mediator: result for %s lacks leading %s column", ch.path, ParentCol)
		}
		dataSchema := out.Schema()[1:]
		byParent := make(map[int][]relstore.Tuple)
		for _, row := range out.Rows() {
			id := int(row[0].AsInt())
			byParent[id] = append(byParent[id], row[1:])
		}
		names := decl.ScalarSchema().Names()
		rows := 0
		for _, parent := range g.parentInstances(c, branch) {
			data := byParent[parent.id]
			sorted := make([]relstore.Tuple, len(data))
			copy(sorted, data)
			sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Compare(sorted[j]) < 0 })

			scope, err := g.instanceScope(c, parent)
			if err != nil {
				return rows, err
			}
			applyCopies := func(inh *aig.AttrValue) error {
				for _, cp := range ir.Copies {
					v, err := scope.ResolveBinding(cp.Src)
					if err != nil {
						return err
					}
					if len(v.Rows) > 0 && len(v.Rows[0]) == 1 {
						if err := inh.SetScalar(cp.TargetMember, v.Rows[0][0]); err != nil {
							return err
						}
					}
				}
				return nil
			}

			if star {
				for _, row := range sorted {
					inh := aig.NewAttrValue(decl)
					if err := inh.BindScalarsFromRow(names, dataSchema, row); err != nil {
						return rows, err
					}
					if err := applyCopies(inh); err != nil {
						return rows, err
					}
					g.st.add(ch.path, parent.id, inh)
					rows++
				}
				continue
			}

			inh := aig.NewAttrValue(decl)
			if ir.TargetCollection != "" {
				if err := inh.SetCollection(ir.TargetCollection, sorted); err != nil {
					return rows, err
				}
			} else if len(sorted) > 0 {
				if err := inh.BindScalarsFromRow(names, dataSchema, sorted[0]); err != nil {
					return rows, err
				}
			}
			if err := applyCopies(inh); err != nil {
				return rows, err
			}
			g.st.add(ch.path, parent.id, inh)
			rows++
		}
		return rows, nil
	}
}

// instanceScope builds the rule-evaluation scope of one parent instance:
// its inherited attribute plus the synthesized attributes of its children
// (which double as the siblings of any child being computed).
func (g *graph) instanceScope(c *ctxNode, inst *instance) (aig.InstanceScope, error) {
	scope := aig.InstanceScope{
		Elem: c.elem,
		Inh:  inst.inh,
		Syn:  make(map[string]*aig.AttrValue),
		All:  make(map[string][]*aig.AttrValue),
	}
	for _, ch := range c.children {
		for _, ci := range g.st.children(inst.id, ch.path) {
			if ci.syn == nil {
				continue // not yet computed; deps guarantee availability when needed
			}
			if _, ok := scope.Syn[ch.elem]; !ok {
				scope.Syn[ch.elem] = ci.syn
			}
			scope.All[ch.elem] = append(scope.All[ch.elem], ci.syn)
		}
	}
	return scope, nil
}

// buildSyn installs the synthesized-attribute computation (and guard
// checks) for one context.
func (g *graph) buildSyn(c *ctxNode) {
	sn := g.synOf[c.path]
	g.addEdge(g.inhDone[c.path], sn, 0)
	for _, ch := range c.children {
		g.addEdge(g.synOf[ch.path], sn, 0)
	}
	rows := g.estRows[c.path]
	sn.estCost = localCost(g.opts.Net, rows, false)

	p, _ := g.a.DTD.Production(c.elem)
	r := g.a.Rules[c.elem]
	sn.runLocal = func(x *exec) (int, error) {
		n := 0
		for _, inst := range g.st.all(c.path) {
			scope, err := g.instanceScope(c, inst)
			if err != nil {
				return n, err
			}
			var sr *aig.SynRule
			var guards []aig.Guard
			if r != nil {
				sr = r.Syn
				guards = r.Guards
				if p.Kind == dtd.ProdChoice && inst.branch >= 1 && inst.branch <= len(r.Branches) {
					sr = r.Branches[inst.branch-1].Syn
				}
			}
			syn, err := g.a.EvalSynFor(c.elem, sr, scope)
			if err != nil {
				return n, fmt.Errorf("mediator: syn of %s: %v", c.path, err)
			}
			inst.syn = syn
			for _, guard := range guards {
				ok, err := aig.CheckGuard(guard, syn)
				if err != nil {
					return n, err
				}
				if !ok {
					return n, &aig.AbortError{Elem: c.elem, Path: c.path, Guard: guard}
				}
			}
			n++
		}
		return n, nil
	}
}
