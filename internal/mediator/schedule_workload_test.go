package mediator

import (
	"fmt"
	"testing"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/dtd"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/source"
	"github.com/aigrepro/aig/internal/sqlmini"
)

// contentionWorkload builds a grammar designed to expose scheduling
// quality: several independent "cheap" star subtrees all querying DB1,
// plus one critical chain of nested stars alternating DB1/DB2 whose
// downstream path dominates the response time. FIFO (construction order)
// queues the cheap DB1 queries ahead of the chain's DB1 steps; Algorithm
// Schedule (§5.3) prioritizes the chain by its path cost.
func contentionWorkload(t testing.TB) (*aig.AIG, *source.Registry) {
	t.Helper()
	const cheapCount = 6
	const chainDepth = 4

	dtdText := "<!ELEMENT root ("
	for i := 0; i < cheapCount; i++ {
		dtdText += fmt.Sprintf("cheap%d, ", i)
	}
	dtdText += "chain1)>\n"
	for i := 0; i < cheapCount; i++ {
		dtdText += fmt.Sprintf("<!ELEMENT cheap%d (leaf*)>\n", i)
	}
	for i := 1; i <= chainDepth; i++ {
		next := fmt.Sprintf("(chain%d*)", i+1)
		if i == chainDepth {
			next = "(leaf*)"
		}
		dtdText += fmt.Sprintf("<!ELEMENT chain%d %s>\n", i, next)
	}
	dtdText += "<!ELEMENT leaf (#PCDATA)>\n"
	d, err := dtd.Parse(dtdText)
	if err != nil {
		t.Fatal(err)
	}

	cat := relstore.NewCatalog()
	db1 := relstore.NewDatabase("DB1")
	db2 := relstore.NewDatabase("DB2")
	// Cheap tables: moderate scans on DB1.
	cheapTbl := db1.CreateTable("cheap", relstore.MustSchema("v:string"))
	for i := 0; i < 400; i++ {
		cheapTbl.MustInsert(relstore.Tuple{relstore.String(fmt.Sprintf("c%04d", i))})
	}
	// Chain tables: parent-linked rows, alternating sources.
	for i := 1; i <= chainDepth; i++ {
		db := db1
		if i%2 == 0 {
			db = db2
		}
		tbl := db.CreateTable(fmt.Sprintf("link%d", i), relstore.MustSchema("id:string", "parent:string"))
		for j := 0; j < 60; j++ {
			parent := "root"
			if i > 1 {
				parent = fmt.Sprintf("n%d_%04d", i-1, j)
			}
			tbl.MustInsert(relstore.Tuple{relstore.String(fmt.Sprintf("n%d_%04d", i, j)), relstore.String(parent)})
		}
	}
	cat.Add(db1)
	cat.Add(db2)

	a := aig.New(d)
	a.Inh["leaf"] = aig.Attr(aig.StringMember("v"))
	a.Rules["leaf"] = &aig.Rule{Elem: "leaf", TextSrc: aig.InhOf("leaf", "v")}
	rootRule := &aig.Rule{Elem: "root", Inh: map[string]*aig.InhRule{}}
	a.Rules["root"] = rootRule
	for i := 0; i < cheapCount; i++ {
		name := fmt.Sprintf("cheap%d", i)
		a.Inh[name] = aig.Attr()
		a.Rules[name] = &aig.Rule{
			Elem: name,
			Inh: map[string]*aig.InhRule{
				"leaf": {Child: "leaf", Query: sqlmini.MustParse(`select v from DB1:cheap`)},
			},
		}
	}
	for i := 1; i <= chainDepth; i++ {
		name := fmt.Sprintf("chain%d", i)
		a.Inh[name] = aig.Attr(aig.StringMember("id"))
	}
	for i := 1; i <= chainDepth; i++ {
		name := fmt.Sprintf("chain%d", i)
		child := fmt.Sprintf("chain%d", i+1)
		srcDB := "DB1"
		if i%2 == 0 {
			srcDB = "DB2"
		}
		q := sqlmini.MustParse(fmt.Sprintf(
			`select id from %s:link%d where parent = $v.id`, srcDB, i))
		if i == chainDepth {
			child = "leaf"
			q = sqlmini.MustParse(fmt.Sprintf(
				`select id as v from %s:link%d where parent = $v.id`, srcDB, i))
		}
		a.Rules[name] = &aig.Rule{
			Elem: name,
			Inh: map[string]*aig.InhRule{
				child: {Child: child, Query: q,
					QueryParams: aig.ParamMap("v", aig.InhOf(name, ""))},
			},
		}
	}
	// chain1 spawns from root with id "root"... root has no scalar; give
	// chain1 a fixed entry: query selecting roots from link0? Simpler:
	// root copies a constant via the first link table: chain1's inh is
	// seeded by a query for parent = 'root' over link1 on DB1.
	rootRule.Inh["chain1"] = &aig.InhRule{
		Child: "chain1",
		Query: sqlmini.MustParse(`select parent as id from DB1:link1 where parent = 'root'`),
	}
	// chain_{depth+1} unused as element (leaf took its place); drop decl.

	reg := source.RegistryFromCatalog(cat)
	if err := a.Validate(reg); err != nil {
		t.Fatalf("workload invalid: %v", err)
	}
	return a, reg
}

// TestLevelSchedulingBeatsFIFO checks that Algorithm Schedule's
// path-cost priorities shorten the response time on a workload with
// per-source contention between critical and non-critical queries.
func TestLevelSchedulingBeatsFIFO(t *testing.T) {
	a, reg := contentionWorkload(t)
	resp := make(map[ScheduleAlgo]float64)
	var docs [2]int
	for i, algo := range []ScheduleAlgo{ScheduleLevel, ScheduleFIFO} {
		opts := DefaultOptions()
		opts.Merge = false // isolate scheduling
		opts.Schedule = algo
		m := New(reg, opts)
		res, err := m.Evaluate(a, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp[algo] = res.Report.ResponseTimeSec
		docs[i] = res.Doc.CountNodes()
	}
	if docs[0] != docs[1] {
		t.Fatalf("schedules produced different documents: %d vs %d nodes", docs[0], docs[1])
	}
	if resp[ScheduleLevel] >= resp[ScheduleFIFO] {
		t.Errorf("level scheduling (%.3fs) not better than FIFO (%.3fs) on the contention workload",
			resp[ScheduleLevel], resp[ScheduleFIFO])
	}
}
