package mediator

import (
	"testing"

	"github.com/aigrepro/aig/internal/datagen"
	"github.com/aigrepro/aig/internal/hospital"
	"github.com/aigrepro/aig/internal/source"
	"github.com/aigrepro/aig/internal/specialize"
	"github.com/aigrepro/aig/internal/sqlmini"
)

// TestSmallDatasetIntegration runs the full pipeline — constraint
// compilation, decomposition, unfolding, merge + schedule, set-oriented
// execution, tagging — over the Table 1 "small" dataset, and checks the
// Figure 10 trend: query merging reduces the simulated response time, and
// merging's benefit grows with the unfolding level.
func TestSmallDatasetIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test over the small Table 1 dataset")
	}
	cat := datagen.Generate(datagen.Small, 42)
	a := hospital.Sigma0(true)
	sa, err := specialize.CompileConstraints(a)
	if err != nil {
		t.Fatal(err)
	}
	sa, err = specialize.DecomposeQueries(sa, sqlmini.CatalogSchemas{Catalog: cat}, sqlmini.CatalogStats{Catalog: cat}, sqlmini.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	reg := source.RegistryFromCatalog(cat)

	ratios := make([]float64, 0, 2)
	for _, depth := range []int{2, 4} {
		unf, err := specialize.Unfold(sa, depth)
		if err != nil {
			t.Fatal(err)
		}
		var times [2]float64
		var docNodes [2]int
		for i, merge := range []bool{false, true} {
			opts := DefaultOptions()
			opts.Merge = merge
			m := New(reg, opts)
			res, err := m.Evaluate(unf, hospital.RootInh(unf, datagen.Date(0)))
			if err != nil {
				t.Fatalf("depth %d merge %v: %v", depth, merge, err)
			}
			times[i] = res.Report.ResponseTimeSec
			docNodes[i] = res.Doc.CountNodes()
			if merge && res.Report.MergedGroups == 0 {
				t.Errorf("depth %d: no merges found", depth)
			}
		}
		if docNodes[0] != docNodes[1] {
			t.Errorf("depth %d: merging changed the document size: %d vs %d", depth, docNodes[0], docNodes[1])
		}
		ratios = append(ratios, times[0]/times[1])
	}
	for i, r := range ratios {
		if r < 0.95 {
			t.Errorf("merging made evaluation slower at depth index %d: ratio %.3f", i, r)
		}
	}
	if ratios[1] < ratios[0]-0.05 {
		t.Errorf("merging benefit should grow with unfolding level: %.3f then %.3f", ratios[0], ratios[1])
	}
}
