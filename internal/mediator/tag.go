package mediator

import (
	"fmt"
	"sort"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/dtd"
	"github.com/aigrepro/aig/internal/xmltree"
)

// tag is the tagging phase (§5.1): it assembles the output document from
// the cached instance tables, top-down. Star children are emitted in the
// canonical order (sorted by their inherited scalar tuple, stable), the
// same order the conceptual evaluator uses, so both evaluators produce
// identical documents. Internal bookkeeping (ids) never reaches the
// output; unfolded types are emitted under their original labels.
func (g *graph) tag() (*xmltree.Node, error) {
	roots := g.st.all(g.root.path)
	if len(roots) != 1 {
		return nil, fmt.Errorf("mediator: expected one root instance, have %d", len(roots))
	}
	return g.tagInstance(g.root, roots[0])
}

func (g *graph) tagInstance(c *ctxNode, inst *instance) (*xmltree.Node, error) {
	node := xmltree.NewElement(g.a.Label(c.elem))
	p, ok := g.a.DTD.Production(c.elem)
	if !ok {
		return nil, fmt.Errorf("mediator: no production for %q", c.elem)
	}
	switch p.Kind {
	case dtd.ProdText:
		node.AppendText(g.textOf(c.elem, inst))
	case dtd.ProdEmpty:
	case dtd.ProdSeq:
		for _, ch := range c.children {
			kids := g.st.children(inst.id, ch.path)
			if len(kids) != 1 {
				return nil, fmt.Errorf("mediator: sequence child %s has %d instances under id %d, want 1", ch.path, len(kids), inst.id)
			}
			sub, err := g.tagInstance(ch, kids[0])
			if err != nil {
				return nil, err
			}
			node.AppendChild(sub)
		}
	case dtd.ProdStar:
		ch := c.children[0]
		kids := append([]*instance(nil), g.st.children(inst.id, ch.path)...)
		sort.SliceStable(kids, func(i, j int) bool {
			return kids[i].inh.ScalarTuple().Compare(kids[j].inh.ScalarTuple()) < 0
		})
		for _, k := range kids {
			sub, err := g.tagInstance(ch, k)
			if err != nil {
				return nil, err
			}
			node.AppendChild(sub)
		}
	case dtd.ProdChoice:
		if inst.branch < 1 || inst.branch > len(c.children) {
			return nil, fmt.Errorf("mediator: choice instance of %s has no branch", c.path)
		}
		ch := c.children[inst.branch-1]
		kids := g.st.children(inst.id, ch.path)
		if len(kids) != 1 {
			return nil, fmt.Errorf("mediator: choice child %s has %d instances, want 1", ch.path, len(kids))
		}
		sub, err := g.tagInstance(ch, kids[0])
		if err != nil {
			return nil, err
		}
		node.AppendChild(sub)
	}
	return node, nil
}

// textOf extracts the PCDATA of a text-element instance, mirroring the
// conceptual evaluator: the rule's TextSrc member, defaulting to the
// single inherited scalar.
func (g *graph) textOf(elem string, inst *instance) string {
	r := g.a.Rules[elem]
	if r != nil && r.TextSrc != (aig.SourceRef{}) && r.TextSrc.Member != "" {
		if v, err := inst.inh.Scalar(r.TextSrc.Member); err == nil {
			return v.Text()
		}
	}
	if tup := inst.inh.ScalarTuple(); len(tup) == 1 {
		return tup[0].Text()
	}
	return ""
}
