package mediator

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/obs"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/source"
	"github.com/aigrepro/aig/internal/sqlmini"
)

// Mediator evaluates specialized AIGs against a registry of data sources.
type Mediator struct {
	reg  *source.Registry
	opts Options
}

// New creates a mediator over the given sources.
func New(reg *source.Registry, opts Options) *Mediator {
	return &Mediator{reg: reg, opts: opts}
}

// exec is the runtime state of one evaluation.
type exec struct {
	g        *graph
	ctx      context.Context // carries the execute-phase span for node parenting
	rootInh  *aig.AttrValue
	mu       sync.Mutex
	firstErr error
	// wake, set under mu by the dynamic scheduler, is called after every
	// node completion to re-examine readiness.
	wake func()
	// tr/execSpan, when tracing, parent one span per node execution under
	// the "execute" phase span.
	tr       *obs.Tracer
	execSpan *obs.Span
}

func (x *exec) fail(err error) {
	x.mu.Lock()
	if x.firstErr == nil {
		x.firstErr = err
	}
	x.mu.Unlock()
}

// Evaluate runs the four phases of Fig. 5 — the AIG is assumed
// pre-processed (constraints compiled, multi-source queries decomposed,
// recursion unfolded): compile the dependency graph, optimize it (Merge +
// Schedule), execute the plan with one worker per source, and tag the
// cached tables into the document.
func (m *Mediator) Evaluate(a *aig.AIG, rootInh *aig.AttrValue) (*Result, error) {
	return m.EvaluateContext(context.Background(), a, rootInh)
}

// EvaluateContext is Evaluate with a caller-supplied context. A tracer
// carried by ctx (obs.ContextWithSpan) takes precedence over
// Options.Tracer, so one mediator instance serves many traced requests
// without per-request reconfiguration; ctx also flows into every source
// call for cancellation.
func (m *Mediator) EvaluateContext(ctx context.Context, a *aig.AIG, rootInh *aig.AttrValue) (*Result, error) {
	res, _, err := m.evaluate(ctx, a, rootInh)
	return res, err
}

func (m *Mediator) evaluate(ctx context.Context, a *aig.AIG, rootInh *aig.AttrValue) (*Result, *graph, error) {
	tr, parent := obs.SpanFromContext(ctx)
	if tr == nil {
		tr = m.opts.Tracer
	}
	start := time.Now()
	root := tr.StartSpan("evaluate", parent)
	res, g, err := m.evaluatePhases(ctx, a, rootInh, tr, root)
	if err != nil {
		root.SetAttr("error", err.Error())
	}
	if res != nil {
		res.Report.WallSec = time.Since(start).Seconds()
		root.SetAttr("response_time_sec", res.Report.ResponseTimeSec)
	}
	root.End()
	return res, g, err
}

// evaluatePhases runs the four Fig. 5 phases under the given root span,
// recording one child span and one wall-clock timing per phase.
func (m *Mediator) evaluatePhases(ctx context.Context, a *aig.AIG, rootInh *aig.AttrValue, tr *obs.Tracer, root *obs.Span) (*Result, *graph, error) {
	phaseSec := make(map[string]float64, 4)

	sp, t0 := tr.StartSpan("compile", root), time.Now()
	g, err := compile(obs.ContextWithSpan(ctx, tr, sp), a, m.reg, m.opts)
	phaseSec["compile"] = time.Since(t0).Seconds()
	if err != nil {
		sp.End()
		return nil, nil, err
	}
	if !isAcyclic(g.nodes) {
		sp.End()
		return nil, nil, fmt.Errorf("mediator: dependency graph is cyclic")
	}
	sp.SetAttr("nodes", len(g.nodes)).SetAttr("edges", len(g.edges)).End()

	sp, t0 = tr.StartSpan("optimize", root), time.Now()
	mergedGroups := 0
	if m.opts.Merge {
		mergedGroups = g.mergeQueries()
	}
	p := schedule(g.nodes, m.opts.Net, m.opts.Schedule)
	phaseSec["optimize"] = time.Since(t0).Seconds()
	sp.SetAttr("merged_groups", mergedGroups).SetAttr("nodes", len(g.nodes)).End()

	if rootInh == nil {
		rootInh = aig.NewAttrValue(a.Inh[a.DTD.Root])
	}
	sp, t0 = tr.StartSpan("execute", root), time.Now()
	x := &exec{g: g, ctx: obs.ContextWithSpan(ctx, tr, sp), rootInh: rootInh, tr: tr, execSpan: sp}
	executed, err := x.run(p)
	phaseSec["execute"] = time.Since(t0).Seconds()
	sp.End()
	if err != nil {
		return nil, nil, err
	}
	p = executed
	g.executed = executed

	sp, t0 = tr.StartSpan("tag", root), time.Now()
	doc, err := g.tag()
	phaseSec["tag"] = time.Since(t0).Seconds()
	sp.End()
	if err != nil {
		return nil, nil, err
	}

	rep := Report{
		ResponseTimeSec:  costOf(g.nodes, p, m.opts.Net, measuredInputs(m.opts.Net)),
		MergedGroups:     mergedGroups,
		NodeCount:        len(g.nodes),
		EdgeCount:        len(g.edges),
		PerSourceBusySec: make(map[string]float64),
		PhaseSec:         phaseSec,
	}
	for _, n := range g.nodes {
		rep.PerSourceBusySec[n.source] += n.evalSec
		if n.kind == nodeQuery && n.source != MediatorSource {
			rep.SourceQueryCount++
		}
	}
	for _, e := range g.edges {
		if e.from.source != e.to.source {
			rep.ShippedBytes += e.bytes
		}
	}
	return &Result{Doc: doc, Report: rep}, g, nil
}

// run executes the plan — one worker goroutine per source — and returns
// the schedule as executed (identical to p for static schedules; the
// recorded dispatch order under dynamic scheduling).
func (x *exec) run(p *plan) (*plan, error) {
	if x.g.opts.Schedule == ScheduleDynamic {
		return x.runDynamic(p)
	}
	var wg sync.WaitGroup
	for _, seq := range p.order {
		wg.Add(1)
		go func(seq []*node) {
			defer wg.Done()
			for _, n := range seq {
				x.waitDeps(n)
				x.runNode(n)
			}
		}(seq)
	}
	wg.Wait()
	return p, x.firstErr
}

// runDynamic dispatches per source: whenever any of a source's pending
// nodes has all dependencies finished, the highest-priority ready node
// runs next (§5.5's dynamic scheduling). The dispatch order is recorded
// and returned for cost reporting.
func (x *exec) runDynamic(p *plan) (*plan, error) {
	level := levels(x.g.nodes, x.g.opts.Net)
	cond := sync.NewCond(&x.mu)
	x.wake = func() {
		cond.Broadcast()
	}
	executed := &plan{order: make(map[string][]*node, len(p.order))}
	var wg sync.WaitGroup
	for src, seq := range p.order {
		wg.Add(1)
		go func(src string, pending []*node) {
			defer wg.Done()
			remaining := append([]*node(nil), pending...)
			for len(remaining) > 0 {
				x.mu.Lock()
				var pick *node
				pickAt := -1
				for {
					if x.firstErr != nil {
						break
					}
					for i, n := range remaining {
						ready := true
						for _, e := range n.in {
							if !e.from.finished {
								ready = false
								break
							}
						}
						if ready && (pick == nil || level[n] > level[pick]) {
							pick, pickAt = n, i
						}
					}
					if pick != nil {
						break
					}
					cond.Wait()
				}
				failed := x.firstErr != nil
				x.mu.Unlock()
				if failed {
					// Drain: mark everything finished so waiters unblock.
					for _, n := range remaining {
						x.mu.Lock()
						n.finished = true
						x.mu.Unlock()
						close(n.done)
						cond.Broadcast()
					}
					return
				}
				remaining = append(remaining[:pickAt], remaining[pickAt+1:]...)
				x.runNode(pick)
				x.mu.Lock()
				executed.order[src] = append(executed.order[src], pick)
				x.mu.Unlock()
				cond.Broadcast()
			}
		}(src, seq)
	}
	wg.Wait()
	return executed, x.firstErr
}

func (x *exec) waitDeps(n *node) {
	for _, e := range n.in {
		<-e.from.done
	}
}

// runNode executes one node whose dependencies are satisfied.
func (x *exec) runNode(n *node) {
	sp := x.tr.StartSpan("node:"+n.name, x.execSpan)
	start := time.Now()
	defer func() {
		if sp != nil {
			// Estimates next to actuals: the span is the unit of
			// estimate-vs-actual feedback for cost-model calibration.
			sp.SetAttr("source", n.source).
				SetAttr("est_cost_sec", n.estCost).
				SetAttr("est_out_bytes", n.estOutBytes).
				SetAttr("eval_sec", n.evalSec).
				SetAttr("wall_sec", time.Since(start).Seconds()).
				SetAttr("out_rows", n.outRows).
				SetAttr("out_bytes", n.outBytes)
			if n.err != nil {
				sp.SetAttr("error", n.err.Error())
			}
			sp.End()
		}
		x.mu.Lock()
		n.finished = true
		wake := x.wake
		x.mu.Unlock()
		close(n.done)
		if wake != nil {
			wake()
		}
	}()
	x.mu.Lock()
	failed := x.firstErr != nil
	x.mu.Unlock()
	if failed {
		sp.SetAttr("skipped", true)
		return
	}
	var err error
	switch n.kind {
	case nodeQuery:
		// Source calls made for this node parent under its span.
		err = x.runQueryNode(obs.ContextWithSpan(x.ctx, x.tr, sp), n)
	default:
		rows := 0
		if n.runLocal != nil {
			rows, err = n.runLocal(x)
		}
		// Local work is charged on the virtual clock at the mediator's
		// application-code rate, not wall time, for determinism.
		n.evalSec = float64(rows) * x.g.opts.Net.MediatorRowCostSec
		n.outRows = rows
	}
	if err != nil {
		n.err = err
		x.fail(err)
	}
}

// runQueryNode executes every part of a (possibly merged) query node at
// its source, in dependency order. Merged nodes interleave absorbed local
// tasks (the inlined key-path combination) between their query parts.
func (x *exec) runQueryNode(ctx context.Context, n *node) error {
	if n.items != nil {
		for _, item := range n.items {
			if item.local != nil {
				rows, err := item.local(x)
				if err != nil {
					return err
				}
				n.evalSec += float64(rows) * x.g.opts.Net.MediatorRowCostSec
				continue
			}
			if item.pt == nil {
				continue // absorbed barrier: nothing to execute
			}
			if err := x.runPart(ctx, n, item.pt); err != nil {
				return err
			}
		}
		// Ship to each consumer only the parts it actually consumes.
		byOrigin := make(map[*node]int)
		for _, item := range n.items {
			if item.pt != nil && item.pt.out != nil && item.pt.origin != nil {
				byOrigin[item.pt.origin] += item.pt.out.ByteSize()
			}
		}
		for _, e := range n.out {
			if e.bytes != 0 {
				continue
			}
			if len(e.producers) == 0 {
				e.bytes = n.outBytes
				continue
			}
			for _, p := range e.producers {
				e.bytes += byOrigin[p]
			}
		}
		return nil
	}
	for _, pt := range n.parts {
		if err := x.runPart(ctx, n, pt); err != nil {
			return err
		}
	}
	for _, e := range n.out {
		if e.bytes == 0 {
			e.bytes = n.outBytes
		}
	}
	return nil
}

// runPart executes one query part at the node's source.
func (x *exec) runPart(ctx context.Context, n *node, pt *part) error {
	params, paramBytes, err := x.bindParams(pt)
	if err != nil {
		return fmt.Errorf("mediator: %s: %v", pt.name, err)
	}
	x.recordInputBytes(n, paramBytes)

	opts := x.g.opts.PlanOpts
	opts.ParamCards = make(map[string]int, len(params))
	for name, b := range params {
		opts.ParamCards[name] = len(b.Rows) + 1
	}

	var out *relstore.Table
	var dur time.Duration
	if n.source == MediatorSource {
		start := time.Now()
		out, err = sqlmini.Run(pt.name, pt.rw.query, x.g.reg, x.g.reg, x.g.reg, params, opts)
		dur = time.Since(start)
	} else {
		src, gerr := x.g.reg.Get(n.source)
		if gerr != nil {
			return gerr
		}
		out, dur, err = src.Exec(ctx, pt.name, pt.rw.query, params, opts)
	}
	if err != nil {
		return fmt.Errorf("mediator: %s: %v", pt.name, err)
	}
	pt.out = out
	n.evalSec += dur.Seconds()
	n.outRows += out.Len()
	n.outBytes += out.ByteSize()
	return nil
}

// recordInputBytes attributes the parameter-table volume (shipped
// Mediator -> source as temporary tables) to the incoming edges from
// mediator-local producers, split evenly among them.
func (x *exec) recordInputBytes(n *node, paramBytes int) {
	if paramBytes == 0 {
		return
	}
	var locals []*edge
	for _, e := range n.in {
		if e.from.source == MediatorSource {
			locals = append(locals, e)
		}
	}
	if len(locals) == 0 {
		return
	}
	share := paramBytes / len(locals)
	for _, e := range locals {
		e.bytes += share
	}
}

// bindParams builds the runtime bindings of one part's parameter tables
// from the store (and chain predecessors), returning the total volume of
// the store-derived tables for communication accounting.
func (x *exec) bindParams(pt *part) (sqlmini.Params, int, error) {
	g := x.g
	params := make(sqlmini.Params, len(pt.rw.specs))
	for _, spec := range pt.rw.specs {
		switch spec.kind {
		case paramPrev:
			if pt.prev == nil || pt.prev.out == nil {
				return nil, 0, fmt.Errorf("chain step has no predecessor output")
			}
			params[spec.name] = sqlmini.TableBinding(pt.prev.out)
		case paramParentIDs:
			var rows []relstore.Tuple
			for _, inst := range g.parentInstances(pt.parentCtx, pt.branch) {
				rows = append(rows, relstore.Tuple{relstore.Int(int64(inst.id))})
			}
			params[spec.name] = sqlmini.Binding{Schema: spec.schema, Rows: rows}
		case paramScalars, paramCollection:
			var rows []relstore.Tuple
			for _, inst := range g.parentInstances(pt.parentCtx, pt.branch) {
				scope, err := g.instanceScope(pt.parentCtx, inst)
				if err != nil {
					return nil, 0, err
				}
				b, err := scope.ResolveBinding(spec.src)
				if err != nil {
					return nil, 0, err
				}
				idVal := relstore.Int(int64(inst.id))
				for _, r := range b.Rows {
					rows = append(rows, append(relstore.Tuple{idVal}, r...))
				}
			}
			params[spec.name] = sqlmini.Binding{Schema: spec.schema, Rows: rows}
		}
	}
	total := 0
	for name, b := range params {
		if name == aig.PrevParam {
			continue
		}
		for _, r := range b.Rows {
			total += r.ByteSize()
		}
	}
	return params, total, nil
}
