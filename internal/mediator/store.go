package mediator

import (
	"sync"

	"github.com/aigrepro/aig/internal/aig"
)

// instance is one element node of the document under construction,
// identified by a synthetic id; the (parent id, own id) pair is the
// mediator's path encoding.
type instance struct {
	id     int
	parent int // -1 for the root
	elem   string
	inh    *aig.AttrValue
	syn    *aig.AttrValue
	branch int // chosen alternative for choice productions (1-based; 0 = none)
}

// store caches the instance tables of every element type — the mediator's
// temporary tables (§5.1).
type store struct {
	mu     sync.Mutex
	nextID int
	lists  map[string]*instList
}

type instList struct {
	rows     []*instance
	byParent map[int][]*instance
}

func newStore() *store {
	return &store{lists: make(map[string]*instList)}
}

// add creates a new instance of elem under the given parent id.
func (s *store) add(elem string, parent int, inh *aig.AttrValue) *instance {
	s.mu.Lock()
	defer s.mu.Unlock()
	inst := &instance{id: s.nextID, parent: parent, elem: elem, inh: inh}
	s.nextID++
	l := s.lists[elem]
	if l == nil {
		l = &instList{byParent: make(map[int][]*instance)}
		s.lists[elem] = l
	}
	l.rows = append(l.rows, inst)
	l.byParent[parent] = append(l.byParent[parent], inst)
	return inst
}

// all returns every instance of the element type.
func (s *store) all(elem string) []*instance {
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.lists[elem]
	if l == nil {
		return nil
	}
	return l.rows
}

// children returns the instances of elem whose parent is the given id.
func (s *store) children(parent int, elem string) []*instance {
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.lists[elem]
	if l == nil {
		return nil
	}
	return l.byParent[parent]
}

// count returns the number of instances of elem.
func (s *store) count(elem string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.lists[elem]
	if l == nil {
		return 0
	}
	return len(l.rows)
}
