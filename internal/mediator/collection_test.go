package mediator

import (
	"testing"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/dtd"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/source"
	"github.com/aigrepro/aig/internal/sqlmini"
)

// TestCollectionTargetRule exercises the non-star query form whose output
// set becomes a collection member of a single child (the shape the
// paper's internal states use), in both evaluators.
func TestCollectionTargetRule(t *testing.T) {
	d := dtd.MustParse(`
		<!ELEMENT doc (digest)>
		<!ELEMENT digest (entry*)>
		<!ELEMENT entry (#PCDATA)>
	`)
	cat := relstore.NewCatalog()
	db := relstore.NewDatabase("DB")
	words := db.CreateTable("words", relstore.MustSchema("w:string", "lang:string"))
	for _, r := range [][2]string{{"zeta", "el"}, {"alpha", "el"}, {"beta", "el"}, {"non", "fr"}} {
		words.MustInsert(relstore.Tuple{relstore.String(r[0]), relstore.String(r[1])})
	}
	cat.Add(db)

	a := aig.New(d)
	a.Inh["doc"] = aig.Attr(aig.StringMember("lang"))
	a.Inh["digest"] = aig.Attr(aig.SetMember("ws", "w:string"))
	a.Inh["entry"] = aig.Attr(aig.StringMember("w"))
	a.Rules["doc"] = &aig.Rule{
		Elem: "doc",
		Inh: map[string]*aig.InhRule{
			"digest": {
				Child:            "digest",
				Query:            sqlmini.MustParse(`select w from DB:words where lang = $v.lang`),
				QueryParams:      aig.ParamMap("v", aig.InhOf("doc", "")),
				TargetCollection: "ws",
			},
		},
	}
	a.Rules["digest"] = &aig.Rule{
		Elem: "digest",
		Inh: map[string]*aig.InhRule{
			"entry": {Child: "entry", Copies: []aig.CopyAssign{aig.Copy("", aig.InhOf("digest", "ws"))}},
		},
	}
	a.Rules["entry"] = &aig.Rule{Elem: "entry", TextSrc: aig.InhOf("entry", "w")}

	if err := a.Validate(sqlmini.CatalogSchemas{Catalog: cat}); err != nil {
		t.Fatal(err)
	}

	env := &aig.Env{
		Schemas: sqlmini.CatalogSchemas{Catalog: cat},
		Data:    sqlmini.CatalogData{Catalog: cat},
		Stats:   sqlmini.CatalogStats{Catalog: cat},
	}
	inh := aig.NewAttrValue(a.Inh["doc"])
	if err := inh.SetScalar("lang", relstore.String("el")); err != nil {
		t.Fatal(err)
	}
	want, err := a.Eval(env, inh)
	if err != nil {
		t.Fatal(err)
	}
	entries := want.Descendants("entry")
	if len(entries) != 3 || entries[0].StringValue() != "alpha" {
		t.Fatalf("conceptual collection evaluation wrong:\n%s", want)
	}

	m := New(source.RegistryFromCatalog(cat), DefaultOptions())
	res, err := m.Evaluate(a, inh)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(res.Doc) {
		t.Errorf("mediator collection document differs:\n%s\n%s", want, res.Doc)
	}
}
