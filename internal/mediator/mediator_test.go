package mediator

import (
	"context"
	"strings"
	"testing"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/dtd"
	"github.com/aigrepro/aig/internal/hospital"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/source"
	"github.com/aigrepro/aig/internal/specialize"
	"github.com/aigrepro/aig/internal/sqlmini"
	"github.com/aigrepro/aig/internal/xconstraint"
	"github.com/aigrepro/aig/internal/xmltree"
)

// prepared builds the specialized hospital AIG (constraints compiled,
// queries decomposed, recursion unfolded) plus the conceptual-evaluation
// reference document for a date.
func prepared(t *testing.T, cat *relstore.Catalog, depth int, withConstraints bool) (*aig.AIG, *source.Registry) {
	t.Helper()
	a := hospital.Sigma0(withConstraints)
	var err error
	if withConstraints {
		a, err = specialize.CompileConstraints(a)
		if err != nil {
			t.Fatal(err)
		}
	}
	schemas := sqlmini.CatalogSchemas{Catalog: cat}
	stats := sqlmini.CatalogStats{Catalog: cat}
	a, err = specialize.DecomposeQueries(a, schemas, stats, sqlmini.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, err = specialize.Unfold(a, depth)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(schemas); err != nil {
		t.Fatalf("prepared AIG invalid: %v", err)
	}
	return a, source.RegistryFromCatalog(cat)
}

func conceptualDoc(t *testing.T, a *aig.AIG, cat *relstore.Catalog, date string) *xmltree.Node {
	t.Helper()
	env := hospital.EnvFor(cat)
	doc, err := a.Eval(env, hospital.RootInh(a, date))
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestMediatorMatchesConceptual is the central equivalence property: the
// set-oriented mediator produces exactly the document the conceptual
// evaluator produces, under every combination of optimizations.
func TestMediatorMatchesConceptual(t *testing.T) {
	cat := hospital.TinyCatalog()
	a, reg := prepared(t, cat, 4, true)
	want := conceptualDoc(t, a, cat, "d1")

	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"all-off", Options{Net: DefaultNet(), Schedule: ScheduleFIFO}},
		{"merge", Options{Net: DefaultNet(), Merge: true, Schedule: ScheduleFIFO}},
		{"level-schedule", Options{Net: DefaultNet(), Schedule: ScheduleLevel}},
		{"copyelim", Options{Net: DefaultNet(), CopyElim: true, Schedule: ScheduleFIFO}},
		{"all-on", DefaultOptions()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := New(reg, tc.opts)
			res, err := m.Evaluate(a, hospital.RootInh(a, "d1"))
			if err != nil {
				t.Fatalf("mediator: %v", err)
			}
			if !want.Equal(res.Doc) {
				t.Errorf("mediator document differs from conceptual:\nwant:\n%s\ngot:\n%s", want, res.Doc)
			}
			if res.Report.ResponseTimeSec <= 0 {
				t.Errorf("response time = %v", res.Report.ResponseTimeSec)
			}
			if res.Report.SourceQueryCount == 0 {
				t.Error("no source queries recorded")
			}
		})
	}
}

func TestMediatorOutputValid(t *testing.T) {
	cat := hospital.TinyCatalog()
	a, reg := prepared(t, cat, 4, true)
	m := New(reg, DefaultOptions())
	res, err := m.Evaluate(a, hospital.RootInh(a, "d1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := dtd.Conforms(hospital.Schema(), res.Doc); err != nil {
		t.Errorf("mediator output violates original DTD: %v", err)
	}
	if v := xconstraint.CheckAll(hospital.Constraints(), res.Doc); len(v) != 0 {
		t.Errorf("mediator output violates constraints: %v", v)
	}
}

func TestMediatorEmptyDate(t *testing.T) {
	cat := hospital.TinyCatalog()
	a, reg := prepared(t, cat, 2, false)
	m := New(reg, DefaultOptions())
	res, err := m.Evaluate(a, hospital.RootInh(a, "d999"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Doc.Descendants("patient")) != 0 {
		t.Errorf("empty date produced patients:\n%s", res.Doc)
	}
}

func TestMediatorGuardAborts(t *testing.T) {
	cat := hospital.TinyCatalog()
	// Duplicate billing row violates the key constraint.
	billing, err := cat.Table("DB3", "billing")
	if err != nil {
		t.Fatal(err)
	}
	billing.MustInsert(relstore.Tuple{relstore.String("t1"), relstore.Int(12)})

	a, reg := prepared(t, cat, 4, true)
	m := New(reg, DefaultOptions())
	_, err = m.Evaluate(a, hospital.RootInh(a, "d1"))
	if err == nil {
		t.Fatal("constraint violation not detected")
	}
	if !strings.Contains(err.Error(), "unique") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestMediatorRejectsRecursive(t *testing.T) {
	cat := hospital.TinyCatalog()
	a := hospital.Sigma0(false)
	m := New(source.RegistryFromCatalog(cat), DefaultOptions())
	if _, err := m.Evaluate(a, hospital.RootInh(a, "d1")); err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Errorf("recursive AIG accepted by Evaluate: %v", err)
	}
}

func TestEvaluateRecursive(t *testing.T) {
	cat := hospital.TinyCatalog()
	a := hospital.Sigma0(true)
	sa, err := specialize.CompileConstraints(a)
	if err != nil {
		t.Fatal(err)
	}
	sa, err = specialize.DecomposeQueries(sa, sqlmini.CatalogSchemas{Catalog: cat}, sqlmini.CatalogStats{Catalog: cat}, sqlmini.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	reg := source.RegistryFromCatalog(cat)
	m := New(reg, DefaultOptions())

	// Starting at depth 1 must re-unroll until the 3-level hierarchy fits.
	res, depth, err := m.EvaluateRecursive(sa, hospital.RootInh(sa, "d1"), 1, 32)
	if err != nil {
		t.Fatal(err)
	}
	if depth < 3 {
		t.Errorf("converged at depth %d, want >= 3", depth)
	}
	want := conceptualDoc(t, a, cat, "d1")
	if !want.Equal(res.Doc) {
		t.Errorf("recursive evaluation differs:\n%s\n%s", want, res.Doc)
	}

	// A generous first estimate converges immediately.
	_, depth2, err := m.EvaluateRecursive(sa, hospital.RootInh(sa, "d1"), 8, 32)
	if err != nil {
		t.Fatal(err)
	}
	if depth2 != 8 {
		t.Errorf("depth = %d, want 8", depth2)
	}

	// Cyclic data never converges and errors out at maxDepth.
	proc, err := cat.Table("DB4", "procedure")
	if err != nil {
		t.Fatal(err)
	}
	proc.MustInsert(relstore.Tuple{relstore.String("t5"), relstore.String("t2")})
	if _, _, err := m.EvaluateRecursive(sa, hospital.RootInh(sa, "d1"), 1, 8); err == nil {
		t.Error("cyclic data did not error")
	}
}

func TestMergeReducesEstimatedCost(t *testing.T) {
	cat := hospital.TinyCatalog()
	a, reg := prepared(t, cat, 3, true)

	off := New(reg, Options{Net: DefaultNet(), Schedule: ScheduleLevel})
	on := New(reg, Options{Net: DefaultNet(), Schedule: ScheduleLevel, Merge: true})

	resOff, err := off.Evaluate(a, hospital.RootInh(a, "d1"))
	if err != nil {
		t.Fatal(err)
	}
	resOn, err := on.Evaluate(a, hospital.RootInh(a, "d1"))
	if err != nil {
		t.Fatal(err)
	}
	if resOn.Report.MergedGroups == 0 {
		t.Error("merging found no beneficial pairs on the unfolded hospital AIG")
	}
	if resOn.Report.SourceQueryCount >= resOff.Report.SourceQueryCount {
		t.Errorf("merging did not reduce query count: %d -> %d",
			resOff.Report.SourceQueryCount, resOn.Report.SourceQueryCount)
	}
	if resOn.Report.ResponseTimeSec > resOff.Report.ResponseTimeSec*1.10 {
		t.Errorf("merged plan slower: %.4fs vs %.4fs",
			resOn.Report.ResponseTimeSec, resOff.Report.ResponseTimeSec)
	}
}

func TestChoiceInMediator(t *testing.T) {
	// The same choice grammar as the conceptual evaluator test, with a
	// star above it so the mediator exercises per-instance branching.
	d := dtd.MustParse(`
		<!ELEMENT results (result*)>
		<!ELEMENT result (cheap | pricey)>
		<!ELEMENT cheap (#PCDATA)>
		<!ELEMENT pricey (#PCDATA)>
	`)
	cat := relstore.NewCatalog()
	db := relstore.NewDatabase("DB")
	bands := db.CreateTable("bands", relstore.MustSchema("trId:string", "band:int"))
	bands.MustInsert(relstore.Tuple{relstore.String("t1"), relstore.Int(1)})
	bands.MustInsert(relstore.Tuple{relstore.String("t2"), relstore.Int(2)})
	bands.MustInsert(relstore.Tuple{relstore.String("t3"), relstore.Int(1)})
	cat.Add(db)

	a := aig.New(d)
	a.Inh["results"] = aig.Attr()
	a.Inh["result"] = aig.Attr(aig.StringMember("trId"))
	a.Inh["cheap"] = aig.Attr(aig.StringMember("val"))
	a.Inh["pricey"] = aig.Attr(aig.StringMember("val"))
	a.Rules["results"] = &aig.Rule{
		Elem: "results",
		Inh: map[string]*aig.InhRule{
			"result": {Child: "result", Query: sqlmini.MustParse(`select trId from DB:bands`)},
		},
	}
	a.Rules["result"] = &aig.Rule{
		Elem:       "result",
		Cond:       sqlmini.MustParse(`select band from DB:bands where trId = $v.trId`),
		CondParams: aig.ParamMap("v", aig.InhOf("result", "")),
		Branches: []aig.Branch{
			{Inh: &aig.InhRule{Child: "cheap", Copies: []aig.CopyAssign{aig.Copy("val", aig.InhOf("result", "trId"))}}},
			{Inh: &aig.InhRule{Child: "pricey", Copies: []aig.CopyAssign{aig.Copy("val", aig.InhOf("result", "trId"))}}},
		},
	}
	a.Rules["cheap"] = &aig.Rule{Elem: "cheap", TextSrc: aig.InhOf("cheap", "val")}
	a.Rules["pricey"] = &aig.Rule{Elem: "pricey", TextSrc: aig.InhOf("pricey", "val")}

	if err := a.Validate(sqlmini.CatalogSchemas{Catalog: cat}); err != nil {
		t.Fatal(err)
	}

	env := &aig.Env{
		Schemas: sqlmini.CatalogSchemas{Catalog: cat},
		Data:    sqlmini.CatalogData{Catalog: cat},
		Stats:   sqlmini.CatalogStats{Catalog: cat},
	}
	want, err := a.Eval(env, nil)
	if err != nil {
		t.Fatal(err)
	}

	m := New(source.RegistryFromCatalog(cat), DefaultOptions())
	res, err := m.Evaluate(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(res.Doc) {
		t.Errorf("choice documents differ:\n%s\n%s", want, res.Doc)
	}
	if got := len(res.Doc.Descendants("cheap")); got != 2 {
		t.Errorf("%d cheap elements, want 2\n%s", got, res.Doc)
	}
	if got := len(res.Doc.Descendants("pricey")); got != 1 {
		t.Errorf("%d pricey elements, want 1", got)
	}
}

func TestContextTreeDisambiguatesSharedTypes(t *testing.T) {
	// trId appears under treatment and item; contexts must be distinct
	// nodes (Fig. 6), keeping the dependency graph acyclic.
	cat := hospital.TinyCatalog()
	a, reg := prepared(t, cat, 2, true)
	g, err := compile(context.Background(), a, reg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !isAcyclic(g.nodes) {
		t.Fatal("compiled graph is cyclic")
	}
	trIdCtxs := 0
	var walk func(c *ctxNode)
	walk = func(c *ctxNode) {
		if c.elem == "trId" {
			trIdCtxs++
		}
		for _, ch := range c.children {
			walk(ch)
		}
	}
	walk(g.root)
	if trIdCtxs < 3 {
		t.Errorf("trId appears in %d contexts, want >= 3 (per treatment level + item)", trIdCtxs)
	}
}

func TestScheduleConsistentWithDependencies(t *testing.T) {
	cat := hospital.TinyCatalog()
	a, reg := prepared(t, cat, 3, true)
	for _, algo := range []ScheduleAlgo{ScheduleLevel, ScheduleFIFO} {
		g, err := compile(context.Background(), a, reg, Options{Net: DefaultNet(), Schedule: algo})
		if err != nil {
			t.Fatal(err)
		}
		p := schedule(g.nodes, DefaultNet(), algo)
		pos := make(map[*node]int)
		for _, seq := range p.order {
			for i, n := range seq {
				pos[n] = i
			}
		}
		for _, e := range g.edges {
			if e.from.source == e.to.source && pos[e.from] >= pos[e.to] {
				t.Fatalf("algo %v: schedule violates dependency %s -> %s", algo, e.from.name, e.to.name)
			}
		}
	}
}

func TestNetModelTransCost(t *testing.T) {
	n := DefaultNet()
	if n.TransCost("DB1", "DB1", 1000) != 0 {
		t.Error("same-site transfer not free")
	}
	med := n.TransCost("DB1", MediatorSource, 125000)
	if med <= 1.0 || med >= 1.1 {
		t.Errorf("1 Mbps shipment of 125000 bytes = %.3fs, want ~1s", med)
	}
	cross := n.TransCost("DB1", "DB2", 125000)
	if cross <= med {
		t.Error("source-to-source transfer should pay the double hop via the mediator")
	}
}

func TestExplain(t *testing.T) {
	cat := hospital.TinyCatalog()
	a, reg := prepared(t, cat, 3, true)
	m := New(reg, DefaultOptions())
	out, err := m.Explain(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"dependency graph:", "estimated response time:", "DB1:", "DB3:", "Mediator:",
		"merged groups", "shipped",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain output missing %q:\n%s", want, out)
		}
	}
	// Explain must not execute anything: evaluating afterwards still works
	// and Explain is repeatable.
	if _, err := m.Explain(a); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Evaluate(a, hospital.RootInh(a, "d1")); err != nil {
		t.Fatal(err)
	}
}
