package mediator

import (
	"sort"
)

// plan is an execution plan P: one ordered query sequence per source
// (including the mediator's local-task sequence).
type plan struct {
	order map[string][]*node
}

// schedule computes an execution plan for the given nodes. ScheduleLevel
// is Algorithm Schedule of §5.3: each node's priority ℓevel(Q) is its
// estimated evaluation cost plus the maximum downstream path cost
// (including communication), and every source executes its nodes in
// decreasing priority. ScheduleFIFO orders by construction index, the
// ablation baseline.
func schedule(nodes []*node, net NetModel, algo ScheduleAlgo) *plan {
	p := &plan{order: make(map[string][]*node)}
	for _, n := range nodes {
		p.order[n.source] = append(p.order[n.source], n)
	}
	switch algo {
	case ScheduleFIFO:
		// No prioritization: graph-discovery order, but kept consistent
		// with the dependency partial order (a schedule that contradicts
		// it would deadlock the source workers).
		pos := make(map[*node]int, len(nodes))
		for i, n := range topoOrder(nodes) {
			pos[n] = i
		}
		for _, ns := range p.order {
			sort.SliceStable(ns, func(i, j int) bool { return pos[ns[i]] < pos[ns[j]] })
		}
	default:
		level := levels(nodes, net)
		for _, ns := range p.order {
			sort.SliceStable(ns, func(i, j int) bool {
				li, lj := level[ns[i]], level[ns[j]]
				if li != lj {
					return li > lj
				}
				return ns[i].idx < ns[j].idx
			})
		}
	}
	return p
}

// levels computes ℓevel(Q) for every node in reverse topological order
// (steps 1-6 of Fig. 8).
func levels(nodes []*node, net NetModel) map[*node]float64 {
	order := topoOrder(nodes)
	level := make(map[*node]float64, len(nodes))
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		l := 0.0
		for _, e := range n.out {
			t := net.TransCost(n.source, e.to.source, int(e.estBytes)) + level[e.to]
			if t > l {
				l = t
			}
		}
		// Force a strictly positive cost so priorities strictly decrease
		// along edges, keeping per-source schedules consistent with the
		// dependency partial order.
		c := n.estCost
		if c <= 0 {
			c = 1e-9
		}
		level[n] = l + c
	}
	return level
}

// topoOrder returns the nodes in a topological order of the dependency
// edges (Kahn's algorithm, stable by construction index).
func topoOrder(nodes []*node) []*node {
	indeg := make(map[*node]int, len(nodes))
	inSet := make(map[*node]bool, len(nodes))
	for _, n := range nodes {
		inSet[n] = true
	}
	for _, n := range nodes {
		for _, e := range n.in {
			if inSet[e.from] {
				indeg[n]++
			}
		}
	}
	ready := make([]*node, 0, len(nodes))
	for _, n := range nodes {
		if indeg[n] == 0 {
			ready = append(ready, n)
		}
	}
	var out []*node
	for len(ready) > 0 {
		sort.SliceStable(ready, func(i, j int) bool { return ready[i].idx < ready[j].idx })
		n := ready[0]
		ready = ready[1:]
		out = append(out, n)
		for _, e := range n.out {
			if !inSet[e.to] {
				continue
			}
			indeg[e.to]--
			if indeg[e.to] == 0 {
				ready = append(ready, e.to)
			}
		}
	}
	return out
}

// isAcyclic reports whether the node set's dependency edges form a DAG.
func isAcyclic(nodes []*node) bool {
	return len(topoOrder(nodes)) == len(nodes)
}
