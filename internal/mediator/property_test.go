package mediator

import (
	"testing"

	"github.com/aigrepro/aig/internal/datagen"
	"github.com/aigrepro/aig/internal/dtd"
	"github.com/aigrepro/aig/internal/hospital"
	"github.com/aigrepro/aig/internal/source"
	"github.com/aigrepro/aig/internal/specialize"
	"github.com/aigrepro/aig/internal/sqlmini"
	"github.com/aigrepro/aig/internal/xconstraint"
)

// TestRandomizedEvaluatorEquivalence is the repository's strongest
// property test: across randomized datasets, the set-oriented mediator
// (with every optimization enabled) and the tuple-at-a-time conceptual
// evaluator produce byte-identical documents, which in turn conform to
// the DTD and satisfy the constraints whenever evaluation succeeds.
func TestRandomizedEvaluatorEquivalence(t *testing.T) {
	size := datagen.Size{
		Name: "prop", Patient: 30, VisitInfo: 120, Cover: 40,
		Billing: 14, Treatment: 14, Procedure: 18,
		Policies: 5, Dates: 5, Levels: 5,
	}
	base := hospital.Sigma0(true)
	checker := dtd.NewChecker(base.DTD)

	for seed := int64(1); seed <= 12; seed++ {
		cat := datagen.Generate(size, seed)
		schemas := sqlmini.CatalogSchemas{Catalog: cat}
		stats := sqlmini.CatalogStats{Catalog: cat}

		sa, err := specialize.CompileConstraints(base)
		if err != nil {
			t.Fatal(err)
		}
		sa, err = specialize.DecomposeQueries(sa, schemas, stats, sqlmini.PlanOptions{})
		if err != nil {
			t.Fatal(err)
		}
		unf, err := specialize.Unfold(sa, 6)
		if err != nil {
			t.Fatal(err)
		}

		reg := source.RegistryFromCatalog(cat)
		m := New(reg, DefaultOptions())
		env := hospital.EnvFor(cat)

		for _, date := range []string{datagen.Date(0), datagen.Date(2)} {
			want, errA := unf.Eval(env, hospital.RootInh(unf, date))
			res, errB := m.Evaluate(unf, hospital.RootInh(unf, date))
			if (errA == nil) != (errB == nil) {
				t.Fatalf("seed %d date %s: evaluators disagree on success: %v vs %v", seed, date, errA, errB)
			}
			if errA != nil {
				continue // both aborted (e.g. a constraint violation)
			}
			if !want.Equal(res.Doc) {
				t.Fatalf("seed %d date %s: documents differ:\n%s\n%s", seed, date, want, res.Doc)
			}
			if err := checker.Check(res.Doc); err != nil {
				t.Fatalf("seed %d date %s: output violates DTD: %v", seed, date, err)
			}
			if v := xconstraint.CheckAll(base.Constraints, res.Doc); len(v) != 0 {
				t.Fatalf("seed %d date %s: output violates constraints: %v", seed, date, v)
			}
		}
	}
}
