package mediator

import (
	"strings"
	"sync"
	"testing"

	"github.com/aigrepro/aig/internal/hospital"
	"github.com/aigrepro/aig/internal/source"
	"github.com/aigrepro/aig/internal/specialize"
	"github.com/aigrepro/aig/internal/sqlmini"
)

// The serving daemon shares one Mediator (and one Registry) across all
// request goroutines, relying on evaluation state living entirely in
// per-call structures. These tests pin that contract under -race.

func TestMediatorConcurrentEvaluate(t *testing.T) {
	cat := hospital.TinyCatalog()
	a, reg := prepared(t, cat, 4, true)
	m := New(reg, DefaultOptions())

	dates := []string{"d1", "d2", "d3"}
	// Serial baseline, one per date, from the same shared mediator.
	want := make(map[string]string, len(dates))
	for _, d := range dates {
		res, err := m.Evaluate(a, hospital.RootInh(a, d))
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := res.Doc.WriteIndented(&b); err != nil {
			t.Fatal(err)
		}
		want[d] = b.String()
	}

	const goroutines = 8
	const perGoroutine = 10
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perGoroutine; i++ {
				d := dates[(g+i)%len(dates)]
				res, err := m.Evaluate(a, hospital.RootInh(a, d))
				if err != nil {
					errs <- err
					return
				}
				var b strings.Builder
				if err := res.Doc.WriteIndented(&b); err != nil {
					errs <- err
					return
				}
				if b.String() != want[d] {
					t.Errorf("goroutine %d: concurrent evaluation for %s differs from the serial document", g, d)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestMediatorConcurrentEvaluateRecursive(t *testing.T) {
	cat := hospital.TinyCatalog()
	a := hospital.Sigma0(true)
	sa, err := specialize.CompileConstraints(a)
	if err != nil {
		t.Fatal(err)
	}
	schemas := sqlmini.CatalogSchemas{Catalog: cat}
	stats := sqlmini.CatalogStats{Catalog: cat}
	sa, err = specialize.DecomposeQueries(sa, schemas, stats, DefaultOptions().PlanOpts)
	if err != nil {
		t.Fatal(err)
	}
	m := New(source.RegistryFromCatalog(cat), DefaultOptions())

	// Serial baseline with a deliberately small starting depth, so the
	// concurrent runs also exercise the depth-extension path.
	res, wantDepth, err := m.EvaluateRecursive(sa, hospital.RootInh(sa, "d1"), 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.Doc.WriteIndented(&b); err != nil {
		t.Fatal(err)
	}
	want := b.String()

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				// Mix warm starts (estDepth already sufficient) with cold
				// ones that must extend the unfolding mid-flight.
				est := 1 + (g+i)%wantDepth
				res, depth, err := m.EvaluateRecursive(sa, hospital.RootInh(sa, "d1"), est, 16)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				// The depth that sufficed depends on the starting estimate
				// (doubling from 1 lands on 4 where 3 already suffices), but
				// it can never be below what the data requires.
				if depth < min(wantDepth, est) || depth > 16 {
					t.Errorf("goroutine %d: depth %d out of range (serial baseline %d)", g, depth, wantDepth)
					return
				}
				var b strings.Builder
				if err := res.Doc.WriteIndented(&b); err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if b.String() != want {
					t.Errorf("goroutine %d: concurrent recursive evaluation differs from the serial document", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
