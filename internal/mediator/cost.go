package mediator

// This file implements the cost model of §5.2: the completion time of a
// query is its evaluation cost plus the later of (a) the completion of
// its predecessor in the source's schedule and (b) the arrival of its
// inputs, each paying the communication cost of shipping the producer's
// output between the producers' and consumer's sites. The response time
// cost(P) of a plan is the maximum completion time over all nodes.

// costInputs abstracts over estimated (compile-time, used by Merge) and
// measured (run-time, used for reporting) quantities.
type costInputs struct {
	eval     func(*node) float64 // seconds inside the node's engine
	bytes    func(*edge) float64 // shipped volume of one dependency edge
	overhead func(*node) float64 // fixed per-request cost
}

func estimatedInputs(net NetModel) costInputs {
	return costInputs{
		eval:  func(n *node) float64 { return n.estCost },
		bytes: func(e *edge) float64 { return e.estBytes },
		overhead: func(n *node) float64 {
			if n.kind == nodeQuery && n.source != MediatorSource {
				return net.QueryOverheadSec
			}
			return 0
		},
	}
}

func measuredInputs(net NetModel) costInputs {
	return costInputs{
		eval:  func(n *node) float64 { return n.evalSec },
		bytes: func(e *edge) float64 { return float64(e.bytes) },
		overhead: func(n *node) float64 {
			if n.kind == nodeQuery && n.source != MediatorSource {
				return net.QueryOverheadSec
			}
			return 0
		},
	}
}

// costOf computes cost(P) for the plan under the given inputs. Completion
// times are computed in one pass over a topological order of the
// dependency edges augmented with schedule-predecessor edges; schedules
// produced by this package are always consistent with the dependency
// partial order, so the combined relation is acyclic.
func costOf(nodes []*node, p *plan, net NetModel, in costInputs) float64 {
	comp := make(map[*node]float64, len(nodes))
	prev := make(map[*node]*node)
	for _, seq := range p.order {
		for i := 1; i < len(seq); i++ {
			prev[seq[i]] = seq[i-1]
		}
	}
	// Combined topological order: process dependency topo order repeatedly
	// until schedule constraints settle. Because schedule order is
	// consistent with dependencies, a single pass over a combined order
	// suffices; build it by inserting schedule edges into the in-degree
	// counts.
	combinedIn := func(n *node) []*node {
		var deps []*node
		for _, e := range n.in {
			deps = append(deps, e.from)
		}
		if pn := prev[n]; pn != nil {
			deps = append(deps, pn)
		}
		return deps
	}
	indeg := make(map[*node]int, len(nodes))
	dependents := make(map[*node][]*node, len(nodes))
	inSet := make(map[*node]bool, len(nodes))
	for _, n := range nodes {
		inSet[n] = true
	}
	for _, n := range nodes {
		for _, d := range combinedIn(n) {
			if inSet[d] {
				indeg[n]++
				dependents[d] = append(dependents[d], n)
			}
		}
	}
	var ready []*node
	for _, n := range nodes {
		if indeg[n] == 0 {
			ready = append(ready, n)
		}
	}
	maxComp := 0.0
	processed := 0
	for len(ready) > 0 {
		n := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		processed++

		start := 0.0
		if pn := prev[n]; pn != nil {
			start = comp[pn]
		}
		for _, e := range n.in {
			if !inSet[e.from] {
				continue
			}
			arrive := comp[e.from] + net.TransCost(e.from.source, n.source, int(in.bytes(e)))
			if arrive > start {
				start = arrive
			}
		}
		comp[n] = start + in.overhead(n) + in.eval(n)
		if comp[n] > maxComp {
			maxComp = comp[n]
		}
		for _, d := range dependents[n] {
			indeg[d]--
			if indeg[d] == 0 {
				ready = append(ready, d)
			}
		}
	}
	if processed != len(nodes) {
		// Inconsistent schedule (should not happen); signal with +inf so
		// Merge rejects the configuration.
		return 1e18
	}
	return maxComp
}
