package mediator

import (
	"sort"
)

// mergeQueries applies Algorithm Merge (§5.4): iteratively pick the pair
// of same-source query nodes whose fusion most reduces the estimated plan
// cost (estimated via Schedule + the §5.2 cost model), subject to the
// merged dependency graph staying acyclic, until no beneficial pair
// remains.
//
// Merging independent queries corresponds to the outer union of §5.4;
// merging dependent queries corresponds to inlining: the mediator-local
// nodes on the paths between the two queries (the key-path combination)
// are absorbed into the merged node and executed inline between its
// parts, so a single request to the source covers the whole pipeline and
// the intermediate shipments disappear. A pair whose connecting paths
// pass through a third query node cannot be merged (it would make the
// graph cyclic), matching the acyclicity test of Fig. 9.
func (g *graph) mergeQueries() int {
	n := len(g.nodes)
	reach := reachability(g.nodes)

	groupOf := make([]int, n)
	for i := range groupOf {
		groupOf[i] = i
	}

	cost := func() float64 {
		view := g.buildView(groupOf)
		if len(topoOrder(view)) != len(view) {
			return 1e18
		}
		p := schedule(view, g.opts.Net, g.opts.Schedule)
		return costOf(view, p, g.opts.Net, estimatedInputs(g.opts.Net))
	}

	// interiors returns the nodes strictly between the two groups'
	// members (either direction) and whether they are all local (merge
	// legality).
	interiors := func(ga, gb int) ([]int, bool) {
		var inA, inB []int
		for i := range groupOf {
			switch groupOf[i] {
			case ga:
				inA = append(inA, i)
			case gb:
				inB = append(inB, i)
			}
		}
		between := make(map[int]bool)
		for _, a := range inA {
			for _, b := range inB {
				for k := 0; k < n; k++ {
					if groupOf[k] == ga || groupOf[k] == gb {
						continue
					}
					if (reach[a][k] && reach[k][b]) || (reach[b][k] && reach[k][a]) {
						between[k] = true
					}
				}
			}
		}
		out := make([]int, 0, len(between))
		for k := range between {
			if g.nodes[k].kind != nodeLocal {
				return nil, false
			}
			out = append(out, k)
		}
		sort.Ints(out)
		return out, true
	}

	best := cost()
	for {
		type cand struct {
			ga, gb int
			extra  []int
			cost   float64
		}
		var bestCand *cand

		bySource := make(map[string][]int) // source -> group ids with query nodes
		seenGroup := make(map[int]bool)
		for i, node := range g.nodes {
			if node.kind == nodeQuery && node.source != MediatorSource {
				gid := groupOf[i]
				if !seenGroup[gid] {
					seenGroup[gid] = true
					bySource[node.source] = append(bySource[node.source], gid)
				}
			}
		}
		var sources []string
		for s := range bySource {
			sources = append(sources, s)
		}
		sort.Strings(sources)
		for _, s := range sources {
			gids := bySource[s]
			sort.Ints(gids)
			for i := 0; i < len(gids); i++ {
				for j := i + 1; j < len(gids); j++ {
					ga, gb := gids[i], gids[j]
					extra, ok := interiors(ga, gb)
					if !ok {
						continue
					}
					// Trial: fold gb and the interiors into ga.
					saved := make(map[int]int)
					fold := func(idx int) {
						saved[idx] = groupOf[idx]
						groupOf[idx] = ga
					}
					for k := range groupOf {
						if groupOf[k] == gb {
							fold(k)
						}
					}
					for _, k := range extra {
						if groupOf[k] != ga {
							fold(k)
						}
					}
					c := cost()
					for k, old := range saved {
						groupOf[k] = old
					}
					if c < best-1e-12 && (bestCand == nil || c < bestCand.cost) {
						bestCand = &cand{ga: ga, gb: gb, extra: extra, cost: c}
					}
				}
			}
		}
		if bestCand == nil {
			break
		}
		for k := range groupOf {
			if groupOf[k] == bestCand.gb {
				groupOf[k] = bestCand.ga
			}
		}
		for _, k := range bestCand.extra {
			groupOf[k] = bestCand.ga
		}
		best = bestCand.cost
	}

	return g.applyPartition(groupOf)
}

// reachability computes the transitive closure of the dependency edges.
func reachability(nodes []*node) [][]bool {
	n := len(nodes)
	reach := make([][]bool, n)
	for i := range reach {
		reach[i] = make([]bool, n)
	}
	// DFS from each node; graphs here are small (hundreds of nodes).
	var dfs func(start, cur int)
	var visitMark []bool
	dfs = func(start, cur int) {
		for _, e := range nodes[cur].out {
			t := e.to.idx
			if !visitMark[t] {
				visitMark[t] = true
				reach[start][t] = true
				dfs(start, t)
			}
		}
	}
	for i := range nodes {
		visitMark = make([]bool, n)
		dfs(i, i)
	}
	return reach
}

// buildView constructs a throwaway contracted graph for cost evaluation:
// each group becomes one node whose estimates aggregate its members.
func (g *graph) buildView(groupOf []int) []*node {
	rep := make(map[int]*node)
	var view []*node
	for i, n := range g.nodes {
		gid := groupOf[i]
		v, ok := rep[gid]
		if !ok {
			v = &node{idx: len(view), kind: n.kind, source: n.source}
			rep[gid] = v
			view = append(view, v)
		}
		// A group containing any query node behaves as a query at that
		// source.
		if n.kind == nodeQuery {
			v.kind = nodeQuery
			v.source = n.source
		}
		v.estCost += n.estCost
		v.estOutBytes += n.estOutBytes
	}
	type pair struct{ f, t *node }
	seen := make(map[pair]*edge)
	for _, e := range g.edges {
		vf, vt := rep[groupOf[e.from.idx]], rep[groupOf[e.to.idx]]
		if vf == vt {
			continue
		}
		if ve, ok := seen[pair{vf, vt}]; ok {
			ve.estBytes += e.estBytes
			continue
		}
		ve := &edge{from: vf, to: vt, estBytes: e.estBytes}
		seen[pair{vf, vt}] = ve
		vf.out = append(vf.out, ve)
		vt.in = append(vt.in, ve)
	}
	return view
}

// applyPartition rebuilds the real graph according to the final merge
// partition, returning the number of merged (multi-member) groups. Merged
// nodes execute their members — query parts and absorbed local tasks — in
// topological order.
func (g *graph) applyPartition(groupOf []int) int {
	members := make(map[int][]*node)
	groupByNode := make(map[*node]int, len(g.nodes))
	for i, n := range g.nodes {
		members[groupOf[i]] = append(members[groupOf[i]], n)
		groupByNode[n] = groupOf[i]
	}
	merged := 0

	pos := make(map[*node]int, len(g.nodes))
	for i, n := range topoOrder(g.nodes) {
		pos[n] = i
	}

	final := make(map[int]*node, len(members))
	var newNodes []*node
	gids := make([]int, 0, len(members))
	for gid := range members {
		gids = append(gids, gid)
	}
	sort.Ints(gids)
	for _, gid := range gids {
		ms := members[gid]
		if len(ms) == 1 {
			n := ms[0]
			n.in, n.out = nil, nil
			n.idx = len(newNodes)
			final[gid] = n
			newNodes = append(newNodes, n)
			continue
		}
		merged++
		sort.SliceStable(ms, func(i, j int) bool { return pos[ms[i]] < pos[ms[j]] })
		m := &node{
			idx:  len(newNodes),
			kind: nodeQuery,
			name: "merged",
			done: make(chan struct{}),
		}
		for _, n := range ms {
			if n.kind == nodeQuery && n.source != MediatorSource {
				m.source = n.source
			}
			m.items = append(m.items, mergedItem{pt: partOf(n), local: n.runLocal, name: n.name})
			m.estCost += n.estCost
			m.estOutBytes += n.estOutBytes
			m.name += "+" + n.name
		}
		if m.source == "" {
			m.source = ms[0].source
		}
		final[gid] = m
		newNodes = append(newNodes, m)
	}

	type pair struct{ f, t *node }
	seen := make(map[pair]*edge)
	var newEdges []*edge
	for _, e := range g.edges {
		nf, nt := final[groupByNode[e.from]], final[groupByNode[e.to]]
		if nf == nt {
			continue
		}
		if fe, ok := seen[pair{nf, nt}]; ok {
			fe.estBytes += e.estBytes
			continue
		}
		fe := &edge{from: nf, to: nt, estBytes: e.estBytes}
		seen[pair{nf, nt}] = fe
		nf.out = append(nf.out, fe)
		nt.in = append(nt.in, fe)
		newEdges = append(newEdges, fe)
	}
	// Record, per rewired edge, which original producers it stands for,
	// so the runtime ships only the relevant parts.
	for _, e := range g.edges {
		nf, nt := final[groupByNode[e.from]], final[groupByNode[e.to]]
		if nf == nt {
			continue
		}
		fe := seen[pair{nf, nt}]
		fe.producers = append(fe.producers, e.from)
	}
	g.nodes = newNodes
	g.edges = newEdges
	return merged
}

// mergedItem is one execution step of a merged node: a query part or an
// absorbed local task.
type mergedItem struct {
	pt    *part
	local func(x *exec) (int, error)
	name  string
}

func partOf(n *node) *part {
	if len(n.parts) == 1 {
		return n.parts[0]
	}
	return nil
}
