package mediator

import (
	"context"
	"regexp"
	"strings"
	"testing"

	"github.com/aigrepro/aig/internal/hospital"
	"github.com/aigrepro/aig/internal/obs"
)

// TestEvaluateTraceSpans checks the span structure of a traced
// evaluation: one root "evaluate" span whose direct children are exactly
// the four Fig. 5 phases in order, with every dependency-graph node
// execution traced under "execute" carrying estimates next to actuals.
func TestEvaluateTraceSpans(t *testing.T) {
	cat := hospital.TinyCatalog()
	a, reg := prepared(t, cat, 3, true)
	tr := obs.NewTracer()
	opts := DefaultOptions()
	opts.Tracer = tr
	m := New(reg, opts)
	res, err := m.Evaluate(a, hospital.RootInh(a, "d1"))
	if err != nil {
		t.Fatal(err)
	}

	root := tr.Root()
	if root == nil || root.Name() != "evaluate" {
		t.Fatalf("root span = %q, want evaluate", root.Name())
	}
	phases := tr.Children(root)
	want := []string{"compile", "optimize", "execute", "tag"}
	if len(phases) != len(want) {
		t.Fatalf("root has %d phase spans, want %d: %v", len(phases), len(want), names(phases))
	}
	for i, name := range want {
		if phases[i].Name() != name {
			t.Errorf("phase %d = %q, want %q", i, phases[i].Name(), name)
		}
	}
	for _, s := range tr.Spans() {
		if !s.Ended() {
			t.Errorf("span %q not ended", s.Name())
		}
	}

	nodes := tr.Children(phases[2])
	if len(nodes) != res.Report.NodeCount {
		t.Fatalf("execute has %d node spans, want one per graph node (%d)", len(nodes), res.Report.NodeCount)
	}
	rows := 0
	for _, s := range nodes {
		if !strings.HasPrefix(s.Name(), "node:") {
			t.Errorf("unexpected span %q under execute", s.Name())
		}
		for _, key := range []string{"source", "est_cost_sec", "est_out_bytes", "eval_sec", "wall_sec", "out_rows", "out_bytes"} {
			if _, ok := s.Attr(key); !ok {
				t.Errorf("node span %q missing attr %q", s.Name(), key)
			}
		}
		if v, ok := s.Attr("out_rows"); ok {
			rows += v.(int)
		}
	}
	if rows == 0 {
		t.Error("no node span recorded any output rows")
	}

	// The report carries the same phase structure as wall timings.
	for _, phase := range want {
		if _, ok := res.Report.PhaseSec[phase]; !ok {
			t.Errorf("Report.PhaseSec missing phase %q", phase)
		}
	}
	if res.Report.WallSec <= 0 {
		t.Error("Report.WallSec not measured")
	}

	// The JSON export must carry the phase tree.
	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	for _, name := range append([]string{"evaluate"}, want...) {
		if !strings.Contains(b.String(), `"name": "`+name+`"`) {
			t.Errorf("trace JSON missing span %q", name)
		}
	}
}

// TestTracingDisabledByDefault ensures an untraced evaluation records
// nothing and still fills the report's wall timings.
func TestTracingDisabledByDefault(t *testing.T) {
	cat := hospital.TinyCatalog()
	a, reg := prepared(t, cat, 2, true)
	m := New(reg, DefaultOptions())
	res, err := m.Evaluate(a, hospital.RootInh(a, "d1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.PhaseSec) != 4 {
		t.Errorf("PhaseSec = %v, want the four phases", res.Report.PhaseSec)
	}
}

// TestExplainAnalyze runs the runtime EXPLAIN on the hospital example and
// checks that measured actuals and estimation errors render next to the
// estimates.
func TestExplainAnalyze(t *testing.T) {
	cat := hospital.TinyCatalog()
	a, reg := prepared(t, cat, 3, true)
	m := New(reg, DefaultOptions())
	out, res, err := m.ExplainAnalyze(a, hospital.RootInh(a, "d1"))
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Doc == nil {
		t.Fatal("ExplainAnalyze did not return the evaluated document")
	}
	for _, want := range []string{
		"dependency graph:", "estimated response time:", "measured response time:",
		"wall time:", "compile", "optimize", "execute", "tag",
		"actual", "rows", "bytes err", "shipped",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ExplainAnalyze output missing %q:\n%s", want, out)
		}
	}
	// Every query-node header line shows estimate and actual side by side.
	headers := 0
	for _, line := range strings.Split(out, "\n") {
		if !nodeHeaderRe.MatchString(line) {
			continue
		}
		headers++
		if !strings.Contains(line, "(est ") || !strings.Contains(line, "actual") {
			t.Errorf("plan line lacks estimate or actuals: %q", line)
		}
	}
	if headers == 0 {
		t.Fatalf("no query-node lines rendered:\n%s", out)
	}
	// The document is the same one Evaluate produces.
	ref, err := m.Evaluate(a, hospital.RootInh(a, "d1"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Doc.CountNodes() != ref.Doc.CountNodes() {
		t.Errorf("ExplainAnalyze document differs: %d vs %d nodes", res.Doc.CountNodes(), ref.Doc.CountNodes())
	}
}

// TestExplainSharedRenderer checks the unified part rendering: merged
// nodes (items) and plain nodes (parts) print each query exactly once.
func TestExplainSharedRenderer(t *testing.T) {
	cat := hospital.TinyCatalog()
	a, reg := prepared(t, cat, 3, true)
	m := New(reg, DefaultOptions())
	out, err := m.Explain(a)
	if err != nil {
		t.Fatal(err)
	}
	// Each query part renders exactly once, whether its node was merged
	// (items) or not (parts) — the old renderer had two overlapping
	// branches. Rebuild the same (deterministic) optimized graph and
	// count.
	g, err := compile(context.Background(), a, reg, m.opts)
	if err != nil {
		t.Fatal(err)
	}
	g.mergeQueries()
	wantParts := 0
	for _, n := range g.nodes {
		wantParts += len(queryParts(n))
	}
	queries := 0
	for _, l := range strings.Split(out, "\n") {
		trimmed := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(l), "part: "))
		if strings.HasPrefix(trimmed, "select ") {
			queries++
		}
	}
	if queries != wantParts {
		t.Errorf("rendered %d query lines, graph has %d parts:\n%s", queries, wantParts, out)
	}
}

// nodeHeaderRe matches the per-node plan lines ("  1. name (est ...").
var nodeHeaderRe = regexp.MustCompile(`^\s+\d+\. `)

func names(spans []*obs.Span) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name()
	}
	return out
}
