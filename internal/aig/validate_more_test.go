package aig_test

import (
	"strings"
	"testing"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/dtd"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/sqlmini"
)

// choiceGrammar builds a minimal valid choice grammar for mutation tests.
func choiceGrammar() (*aig.AIG, *relstore.Catalog) {
	d := dtd.MustParse(`
		<!ELEMENT r (a | b)>
		<!ELEMENT a (#PCDATA)>
		<!ELEMENT b (#PCDATA)>
	`)
	cat := relstore.NewCatalog()
	db := relstore.NewDatabase("DB")
	tbl := db.CreateTable("t", relstore.MustSchema("n:int"))
	tbl.MustInsert(relstore.Tuple{relstore.Int(1)})
	cat.Add(db)

	g := aig.New(d)
	g.Inh["a"] = aig.Attr(aig.StringMember("val"))
	g.Inh["b"] = aig.Attr(aig.StringMember("val"))
	g.Inh["r"] = aig.Attr(aig.StringMember("seed"))
	g.Rules["a"] = &aig.Rule{Elem: "a", TextSrc: aig.InhOf("a", "val")}
	g.Rules["b"] = &aig.Rule{Elem: "b", TextSrc: aig.InhOf("b", "val")}
	g.Rules["r"] = &aig.Rule{
		Elem:       "r",
		Cond:       sqlmini.MustParse(`select n from DB:t`),
		CondParams: nil,
		Branches: []aig.Branch{
			{Inh: &aig.InhRule{Child: "a", Copies: []aig.CopyAssign{aig.Copy("val", aig.InhOf("r", "seed"))}}},
			{Inh: &aig.InhRule{Child: "b", Copies: []aig.CopyAssign{aig.Copy("val", aig.InhOf("r", "seed"))}}},
		},
	}
	return g, cat
}

func TestChoiceValidationErrors(t *testing.T) {
	check := func(name string, mutate func(*aig.AIG), wantErr string) {
		t.Helper()
		g, cat := choiceGrammar()
		mutate(g)
		err := g.Validate(sqlmini.CatalogSchemas{Catalog: cat})
		if err == nil {
			t.Errorf("%s: validation passed", name)
			return
		}
		if wantErr != "" && !strings.Contains(err.Error(), wantErr) {
			t.Errorf("%s: error %q does not mention %q", name, err, wantErr)
		}
	}
	check("missing cond", func(g *aig.AIG) { g.Rules["r"].Cond = nil }, "condition")
	check("missing rule", func(g *aig.AIG) { delete(g.Rules, "r") }, "condition query")
	check("branch count", func(g *aig.AIG) { g.Rules["r"].Branches = g.Rules["r"].Branches[:1] }, "branches")
	check("branch child mismatch", func(g *aig.AIG) { g.Rules["r"].Branches[0].Inh.Child = "b" }, "targets")
	check("branch missing inh", func(g *aig.AIG) { g.Rules["r"].Branches[0].Inh = nil }, "no rule")
	check("branch syn ref out of scope", func(g *aig.AIG) {
		g.Syn["r"] = aig.Attr(aig.StringMember("x"))
		g.Rules["r"].Branches[0].Syn = aig.Syn1("x", aig.ScalarOf{Src: aig.SynOf("b", "nope")})
		g.Rules["r"].Branches[1].Syn = aig.Syn1("x", aig.ScalarOf{Src: aig.SynOf("b", "nope")})
	}, "")
	check("cond on sequence", func(g *aig.AIG) {
		g.Rules["a"].Cond = g.Rules["r"].Cond
	}, "")
	check("bad cond query", func(g *aig.AIG) {
		g.Rules["r"].Cond = sqlmini.MustParse(`select n from DB:nope`)
	}, "")
}

func TestChoiceValidGrammarPasses(t *testing.T) {
	g, cat := choiceGrammar()
	if err := g.Validate(sqlmini.CatalogSchemas{Catalog: cat}); err != nil {
		t.Fatalf("valid choice grammar rejected: %v", err)
	}
}

func TestTextRuleValidationErrors(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT a (#PCDATA)>`)
	g := aig.New(d)
	g.Inh["a"] = aig.Attr(aig.SetMember("s", "v:string"))
	g.Rules["a"] = &aig.Rule{Elem: "a", TextSrc: aig.InhOf("a", "s")}
	if err := g.Validate(sqlmini.CatalogSchemas{Catalog: relstore.NewCatalog()}); err == nil ||
		!strings.Contains(err.Error(), "scalar") {
		t.Errorf("collection PCDATA source accepted: %v", err)
	}

	// Text production with child rules is malformed.
	g2 := aig.New(d)
	g2.Inh["a"] = aig.Attr(aig.StringMember("v"))
	g2.Rules["a"] = &aig.Rule{Elem: "a", TextSrc: aig.InhOf("a", "v"),
		Inh: map[string]*aig.InhRule{"x": {Child: "x"}}}
	if err := g2.Validate(sqlmini.CatalogSchemas{Catalog: relstore.NewCatalog()}); err == nil {
		t.Error("text production with child rules accepted")
	}

	// Attributed text element without a rule.
	g3 := aig.New(d)
	g3.Inh["a"] = aig.Attr(aig.StringMember("v"))
	if err := g3.Validate(sqlmini.CatalogSchemas{Catalog: relstore.NewCatalog()}); err == nil {
		t.Error("attributed text element without rule accepted")
	}
}

func TestStarValidationErrors(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT l (e*)> <!ELEMENT e (#PCDATA)>`)
	cat := relstore.NewCatalog()

	// Star driven by a scalar copy is rejected.
	g := aig.New(d)
	g.Inh["l"] = aig.Attr(aig.StringMember("x"))
	g.Inh["e"] = aig.Attr(aig.StringMember("v"))
	g.Rules["e"] = &aig.Rule{Elem: "e", TextSrc: aig.InhOf("e", "v")}
	g.Rules["l"] = &aig.Rule{Elem: "l", Inh: map[string]*aig.InhRule{
		"e": {Child: "e", Copies: []aig.CopyAssign{aig.Copy("", aig.InhOf("l", "x"))}},
	}}
	if err := g.Validate(sqlmini.CatalogSchemas{Catalog: cat}); err == nil ||
		!strings.Contains(err.Error(), "scalar") {
		t.Errorf("scalar-driven star accepted: %v", err)
	}

	// Star with two copies is rejected.
	g.Inh["l"] = aig.Attr(aig.SetMember("s", "v:string"))
	g.Rules["l"].Inh["e"].Copies = []aig.CopyAssign{
		aig.Copy("", aig.InhOf("l", "s")), aig.Copy("", aig.InhOf("l", "s")),
	}
	if err := g.Validate(sqlmini.CatalogSchemas{Catalog: cat}); err == nil {
		t.Error("two-copy star accepted")
	}

	// Star rule missing the child's rule entirely.
	g2 := aig.New(d)
	g2.Inh["e"] = aig.Attr(aig.StringMember("v"))
	g2.Rules["e"] = &aig.Rule{Elem: "e", TextSrc: aig.InhOf("e", "v")}
	g2.Rules["l"] = &aig.Rule{Elem: "l"}
	if err := g2.Validate(sqlmini.CatalogSchemas{Catalog: cat}); err == nil {
		t.Error("star without child rule accepted")
	}
}

func TestChainValidation(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT l (e*)> <!ELEMENT e (#PCDATA)>`)
	cat := relstore.NewCatalog()
	db := relstore.NewDatabase("DB")
	db.CreateTable("t", relstore.MustSchema("v:string"))
	cat.Add(db)

	g := aig.New(d)
	g.Inh["e"] = aig.Attr(aig.StringMember("v"))
	g.Rules["e"] = &aig.Rule{Elem: "e", TextSrc: aig.InhOf("e", "v")}
	g.Rules["l"] = &aig.Rule{Elem: "l", Inh: map[string]*aig.InhRule{
		"e": {Child: "e", Chain: []*sqlmini.Query{
			sqlmini.MustParse(`select v as k from DB:t`),
			sqlmini.MustParse(`select t.v from DB:t, $prev P where t.v = P.k`),
		}},
	}}
	if err := g.Validate(sqlmini.CatalogSchemas{Catalog: cat}); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
	// Break step 2: references a column the previous step does not emit.
	g.Rules["l"].Inh["e"].Chain[1] = sqlmini.MustParse(`select t.v from DB:t, $prev P where t.v = P.ghost`)
	if err := g.Validate(sqlmini.CatalogSchemas{Catalog: cat}); err == nil {
		t.Error("chain with broken prev reference accepted")
	}
}

func TestSeqRuleMissingLegalAndIllegal(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT p (x, y)> <!ELEMENT x (#PCDATA)> <!ELEMENT y (#PCDATA)>`)
	cat := relstore.NewCatalog()
	// No attributes anywhere: a ruleless sequence is fine.
	g := aig.New(d)
	if err := g.Validate(sqlmini.CatalogSchemas{Catalog: cat}); err != nil {
		t.Errorf("attribute-free grammar rejected: %v", err)
	}
	// A child with declared Inh but no rule is not.
	g.Inh["x"] = aig.Attr(aig.StringMember("v"))
	g.Rules["x"] = &aig.Rule{Elem: "x", TextSrc: aig.InhOf("x", "v")}
	if err := g.Validate(sqlmini.CatalogSchemas{Catalog: cat}); err == nil {
		t.Error("unfed child Inh accepted")
	}
	// Inh rule naming a non-child is rejected.
	g2 := aig.New(d)
	g2.Rules["p"] = &aig.Rule{Elem: "p", Inh: map[string]*aig.InhRule{
		"z": {Child: "z"},
	}}
	if err := g2.Validate(sqlmini.CatalogSchemas{Catalog: cat}); err == nil {
		t.Error("rule for non-child accepted")
	}
}
