package aig

import (
	"errors"
	"fmt"

	"github.com/aigrepro/aig/internal/dtd"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/sqlmini"
	"github.com/aigrepro/aig/internal/srcpos"
)

// Validate performs the static analyses of §3.1 in one pass: structural
// sanity of the DTD and rules, type compatibility of every semantic rule
// (checkable in linear time), resolvability of every SQL query against
// the source schemas, acyclicity of each production's dependency
// relation, and well-formedness of the XML constraints. It returns all
// problems found, joined.
func (a *AIG) Validate(schemas sqlmini.SchemaProvider) error {
	return errors.Join(a.ValidateAll(schemas)...)
}

// ValidateAll is Validate returning the individual problems instead of
// joining them. For grammars parsed from spec text, each error is (or
// wraps) a *srcpos.Error locating the offending declaration, so tooling
// can attribute problems to source lines. A nil schemas provider skips
// query resolution (the schema-dependent subset of the checks): rule
// queries are then checked only for parameter binding, which is what
// static linting of a spec without declared sources needs.
func (a *AIG) ValidateAll(schemas sqlmini.SchemaProvider) []error {
	v := &validator{aig: a, schemas: schemas}
	if err := a.DTD.Validate(); err != nil {
		return []error{err}
	}
	for _, elem := range a.DTD.Types() {
		v.checkElem(elem)
	}
	for _, c := range a.Constraints {
		if err := c.ValidateAgainst(a.DTD); err != nil {
			if c.Pos.IsValid() {
				err = srcpos.Errorf(c.Pos, "%v", err)
			}
			v.errs = append(v.errs, err)
		}
	}
	v.checkSourceConstraints()
	return v.errs
}

// checkSourceConstraints validates the declared relational constraints
// (key/fkey lines of the sources section) against the declared schema
// signature: columns exist, arities match, and every foreign key targets
// a declared key of the referenced table.
func (v *validator) checkSourceConstraints() {
	a := v.aig
	if len(a.SourceKeys) == 0 && len(a.SourceFKs) == 0 {
		return
	}
	if a.Sources == nil {
		v.cur = srcpos.Pos{}
		v.errorf("source constraints declared without source table declarations")
		return
	}
	checkCols := func(where, source, table string, cols []string) bool {
		schema, err := a.Sources.TableSchema(source, table)
		if err != nil {
			v.errorf("%s: %v", where, err)
			return false
		}
		ok := true
		seen := make(map[string]bool, len(cols))
		for _, c := range cols {
			if schema.ColumnIndex(c) < 0 {
				v.errorf("%s: table %s:%s has no column %q", where, source, table, c)
				ok = false
			}
			if seen[c] {
				v.errorf("%s: column %q listed twice", where, c)
				ok = false
			}
			seen[c] = true
		}
		return ok
	}
	keySet := make(map[string]bool, len(a.SourceKeys))
	for _, k := range a.SourceKeys {
		prev := v.at(k.Pos)
		where := fmt.Sprintf("key %s", k)
		if len(k.Cols) == 0 {
			v.errorf("%s: key needs at least one column", where)
		} else {
			checkCols(where, k.Source, k.Table, k.Cols)
		}
		keySet[k.Source+":"+k.Table+"("+fmt.Sprint(k.Cols)+")"] = true
		v.cur = prev
	}
	for _, fk := range a.SourceFKs {
		prev := v.at(fk.Pos)
		where := fmt.Sprintf("fkey %s", fk)
		okL := len(fk.Cols) > 0 && checkCols(where, fk.Source, fk.Table, fk.Cols)
		okR := checkCols(where, fk.RefSource, fk.RefTable, fk.RefCols)
		if len(fk.Cols) != len(fk.RefCols) {
			v.errorf("%s: arity mismatch: %d referencing columns for %d referenced", where, len(fk.Cols), len(fk.RefCols))
			okL = false
		}
		if okL && okR {
			lSchema, _ := a.Sources.TableSchema(fk.Source, fk.Table)
			rSchema, _ := a.Sources.TableSchema(fk.RefSource, fk.RefTable)
			for i := range fk.Cols {
				lk := lSchema[lSchema.ColumnIndex(fk.Cols[i])].Kind
				rk := rSchema[rSchema.ColumnIndex(fk.RefCols[i])].Kind
				if lk != rk {
					v.errorf("%s: kind mismatch: %s.%s is %s but %s.%s is %s",
						where, fk.Table, fk.Cols[i], lk, fk.RefTable, fk.RefCols[i], rk)
				}
			}
			if !keySet[fk.RefSource+":"+fk.RefTable+"("+fmt.Sprint(fk.RefCols)+")"] {
				v.errorf("%s: referenced columns are not declared as a key of %s:%s",
					where, fk.RefSource, fk.RefTable)
			}
		}
		v.cur = prev
	}
}

type validator struct {
	aig     *AIG
	schemas sqlmini.SchemaProvider
	errs    []error
	// cur is the source position errors are attributed to; checks update
	// it as they descend into positioned nodes.
	cur srcpos.Pos
}

// at moves the error position to p when p is known, returning the
// previous position for restoring.
func (v *validator) at(p srcpos.Pos) srcpos.Pos {
	prev := v.cur
	if p.IsValid() {
		v.cur = p
	}
	return prev
}

func (v *validator) errorf(format string, args ...any) {
	if v.cur.IsValid() {
		v.errs = append(v.errs, srcpos.Errorf(v.cur, "aig: "+format, args...))
		return
	}
	v.errs = append(v.errs, fmt.Errorf("aig: "+format, args...))
}

// addErr records an error produced elsewhere, attributing it to the
// current position unless it is already positioned.
func (v *validator) addErr(err error) {
	if v.cur.IsValid() && !srcpos.PosOf(err).IsValid() {
		err = srcpos.Errorf(v.cur, "%v", err)
	}
	v.errs = append(v.errs, err)
}

func (v *validator) checkElem(elem string) {
	p, _ := v.aig.DTD.Production(elem)
	r := v.aig.Rules[elem]
	v.cur = v.aig.DTD.Pos[elem]
	if r != nil && r.Pos.IsValid() {
		v.cur = r.Pos
	}
	defer func() { v.cur = srcpos.Pos{} }()
	switch p.Kind {
	case dtd.ProdText:
		v.checkTextRule(elem, r)
	case dtd.ProdEmpty:
		v.checkEmptyRule(elem, r)
	case dtd.ProdSeq:
		v.checkSeqRule(elem, p, r)
	case dtd.ProdStar:
		v.checkStarRule(elem, p, r)
	case dtd.ProdChoice:
		v.checkChoiceRule(elem, p, r)
	}
	if r != nil {
		for _, g := range r.Guards {
			v.checkGuard(elem, g)
		}
	}
}

// sourceEnv describes which attributes a rule may reference: the parent's
// inherited attribute, and the synthesized attributes of a set of child
// element types.
type sourceEnv struct {
	inhElem  string
	synElems map[string]bool
}

// memberOf resolves a source reference within the environment, returning
// the member declaration (or the scalar-tuple pseudo member when
// ref.Member is empty).
func (v *validator) memberOf(where string, env sourceEnv, ref SourceRef) (MemberDecl, bool) {
	var decl AttrDecl
	switch ref.Side {
	case InhSide:
		if ref.Elem != env.inhElem {
			v.errorf("%s: %s references Inh(%s); only Inh(%s) is in scope", where, ref, ref.Elem, env.inhElem)
			return MemberDecl{}, false
		}
		decl = v.aig.Inh[ref.Elem]
	case SynSide:
		if !env.synElems[ref.Elem] {
			v.errorf("%s: %s references Syn(%s), which is not in scope", where, ref, ref.Elem)
			return MemberDecl{}, false
		}
		decl = v.aig.Syn[ref.Elem]
	}
	if ref.Member == "" {
		// The whole scalar tuple.
		return MemberDecl{Name: "", Kind: Scalar}, true
	}
	m, ok := decl.Member(ref.Member)
	if !ok {
		v.errorf("%s: %s: attribute %s(%s) has no member %q (declared: %s)",
			where, ref, ref.Side, ref.Elem, ref.Member, decl)
		return MemberDecl{}, false
	}
	return m, true
}

func (v *validator) checkGuard(elem string, g Guard) {
	where := fmt.Sprintf("guard %s on %s", g, elem)
	decl := v.aig.Syn[elem]
	switch g.Kind {
	case GuardUnique:
		m, ok := decl.Member(g.Member)
		if !ok {
			v.errorf("%s: Syn(%s) has no member %q", where, elem, g.Member)
			return
		}
		if m.Kind == Scalar {
			v.errorf("%s: member %q is scalar; unique() needs a bag or set", where, g.Member)
		}
	case GuardSubset:
		sub, okSub := decl.Member(g.Sub)
		super, okSuper := decl.Member(g.Super)
		if !okSub || !okSuper {
			v.errorf("%s: Syn(%s) lacks member %q or %q", where, elem, g.Sub, g.Super)
			return
		}
		if sub.Kind == Scalar || super.Kind == Scalar {
			v.errorf("%s: subset() needs collection members", where)
			return
		}
		if len(sub.Fields) != len(super.Fields) {
			v.errorf("%s: arity mismatch: %s vs %s", where, sub.Fields, super.Fields)
		}
	}
}

func (v *validator) checkTextRule(elem string, r *Rule) {
	where := fmt.Sprintf("rule for %s -> S", elem)
	if r == nil {
		// Default: no PCDATA source; legal only when Inh(elem) has exactly
		// one scalar member to use implicitly — require explicit rules
		// instead.
		if !v.aig.Inh[elem].IsEmpty() || !v.aig.Syn[elem].IsEmpty() {
			v.errorf("%s: missing rule for attributed text element", where)
		}
		return
	}
	env := sourceEnv{inhElem: elem}
	if r.TextSrc != (SourceRef{}) {
		if m, ok := v.memberOf(where, env, r.TextSrc); ok && m.Kind != Scalar {
			v.errorf("%s: PCDATA source %s must be scalar", where, r.TextSrc)
		}
	}
	v.checkSynRule(where, elem, r.Syn, env)
	if len(r.Inh) != 0 || r.Cond != nil || len(r.Branches) != 0 {
		v.errorf("%s: text productions take no child or branch rules", where)
	}
}

func (v *validator) checkEmptyRule(elem string, r *Rule) {
	if r == nil {
		if !v.aig.Syn[elem].IsEmpty() {
			v.errorf("rule for %s -> ε: Syn(%s) is declared but never computed", elem, elem)
		}
		return
	}
	where := fmt.Sprintf("rule for %s -> ε", elem)
	v.checkSynRule(where, elem, r.Syn, sourceEnv{inhElem: elem})
}

func (v *validator) checkSeqRule(elem string, p dtd.Production, r *Rule) {
	where := fmt.Sprintf("rule for %s -> %s", elem, p)
	childSet := make(map[string]bool, len(p.Children))
	for _, c := range p.Children {
		childSet[c] = true
	}
	if r == nil {
		// Legal only when no child needs an inherited attribute and
		// Syn(elem) is empty.
		for _, c := range p.Children {
			if !v.aig.Inh[c].IsEmpty() {
				v.errorf("%s: missing rule; child %s has a declared Inh", where, c)
			}
		}
		if !v.aig.Syn[elem].IsEmpty() {
			v.errorf("%s: missing rule; Syn(%s) is declared", where, elem)
		}
		return
	}
	for child := range r.Inh {
		if !childSet[child] {
			v.errorf("%s: Inh rule for %q, which is not a child", where, child)
		}
	}
	for _, child := range p.Children {
		ir := r.Inh[child]
		if ir == nil {
			if !v.aig.Inh[child].IsEmpty() {
				v.errorf("%s: child %s has declared Inh but no rule", where, child)
			}
			continue
		}
		// Sources: Inh(elem) and Syn of the *other* children (§3.1 case 2).
		env := sourceEnv{inhElem: elem, synElems: make(map[string]bool)}
		for _, sib := range p.Children {
			if sib != child {
				env.synElems[sib] = true
			}
		}
		v.checkInhRule(where, child, ir, env, false)
	}
	// Syn(elem) = g(Syn(children)); Inh(elem) is not in scope (only cases
	// 1 and 5 allow it).
	env := sourceEnv{synElems: childSet}
	v.checkSynRule(where, elem, r.Syn, env)
	if r.Cond != nil || len(r.Branches) != 0 {
		v.errorf("%s: sequence productions take no condition query or branches", where)
	}
	if _, err := v.aig.SiblingOrder(elem); err != nil {
		v.addErr(err)
	}
}

func (v *validator) checkStarRule(elem string, p dtd.Production, r *Rule) {
	where := fmt.Sprintf("rule for %s -> %s", elem, p)
	child := p.Children[0]
	if r == nil {
		v.errorf("%s: star productions need a rule to generate children", where)
		return
	}
	ir := r.Inh[child]
	if ir == nil {
		v.errorf("%s: missing Inh rule for %s", where, child)
	} else {
		env := sourceEnv{inhElem: elem, synElems: map[string]bool{}}
		v.checkInhRule(where, child, ir, env, true)
	}
	env := sourceEnv{synElems: map[string]bool{child: true}}
	v.checkSynRule(where, elem, r.Syn, env)
	if r.Cond != nil || len(r.Branches) != 0 {
		v.errorf("%s: star productions take no condition query or branches", where)
	}
}

func (v *validator) checkChoiceRule(elem string, p dtd.Production, r *Rule) {
	where := fmt.Sprintf("rule for %s -> %s", elem, p)
	if r == nil {
		v.errorf("%s: choice productions need a condition query", where)
		return
	}
	if r.Cond == nil {
		v.errorf("%s: missing condition query", where)
	} else {
		prev := v.at(r.CondPos)
		v.checkQueryResolves(where+" (condition)", r.Cond, r.CondParams, sourceEnv{inhElem: elem}, nil)
		v.cur = prev
	}
	if len(r.Branches) != len(p.Children) {
		v.errorf("%s: %d branches for %d alternatives", where, len(r.Branches), len(p.Children))
		return
	}
	for i, b := range r.Branches {
		child := p.Children[i]
		bwhere := fmt.Sprintf("%s branch %d (%s)", where, i+1, child)
		if b.Inh != nil {
			if b.Inh.Child != child {
				v.errorf("%s: branch Inh rule targets %q", bwhere, b.Inh.Child)
			}
			// Branch fi depends on Inh(elem) only (§3.1 case 3).
			v.checkInhRule(bwhere, child, b.Inh, sourceEnv{inhElem: elem, synElems: map[string]bool{}}, false)
		} else if !v.aig.Inh[child].IsEmpty() {
			v.errorf("%s: child %s has declared Inh but no rule", bwhere, child)
		}
		v.checkSynRule(bwhere, elem, b.Syn, sourceEnv{synElems: map[string]bool{child: true}})
	}
}

// checkInhRule verifies one inherited-attribute rule. star indicates the
// owning production is B*: the rule must then be a query (or collection
// copy) whose rows spawn children.
func (v *validator) checkInhRule(where, child string, r *InhRule, env sourceEnv, star bool) {
	target := v.aig.Inh[child]
	prev := v.at(r.Pos)
	defer func() { v.cur = prev }()
	if r.IsQuery() {
		var outSchema relstore.Schema
		v.at(r.QueryPos)
		if r.Query != nil {
			outSchema = v.checkQueryResolves(where, r.Query, r.QueryParams, env, nil)
		} else {
			// Decomposed chain: each step may reference $prev, bound to
			// the previous step's output schema.
			var prev relstore.Schema
			for i, q := range r.Chain {
				extra := sqlmini.ParamSchemas{}
				if prev != nil {
					extra[PrevParam] = prev
				}
				prev = v.checkQueryResolves(fmt.Sprintf("%s (chain step %d)", where, i+1), q, r.QueryParams, env, extra)
				if prev == nil {
					return
				}
			}
			outSchema = prev
		}
		if outSchema == nil {
			return
		}
		copyTargets := make([]string, len(r.Copies))
		for i, c := range r.Copies {
			copyTargets[i] = c.TargetMember
		}
		if r.TargetCollection != "" {
			m, ok := target.Member(r.TargetCollection)
			if !ok || m.Kind == Scalar {
				v.errorf("%s: Inh(%s) has no collection member %q", where, child, r.TargetCollection)
				return
			}
			if len(m.Fields) != len(outSchema) {
				v.errorf("%s: query returns %d columns for member %q%s", where, len(outSchema), r.TargetCollection, m.Fields)
			}
		} else {
			v.checkRowBinding(where, child, target, outSchema, copyTargets)
		}
		v.checkCopies(where, child, target, r.Copies, env)
		return
	}
	if star {
		// A copy rule driving a star must copy exactly one collection
		// member whose rows spawn the children.
		if len(r.Copies) != 1 {
			v.errorf("%s: star child %s needs a query or a single collection copy", where, child)
			return
		}
		src, ok := v.memberOf(where, env, r.Copies[0].Src)
		if !ok {
			return
		}
		if src.Kind == Scalar {
			v.errorf("%s: star child %s iterates %s, which is scalar", where, child, r.Copies[0].Src)
			return
		}
		v.checkRowBinding(where, child, v.aig.Inh[child], src.Fields, nil)
		return
	}
	v.checkCopies(where, child, target, r.Copies, env)
}

// checkCopies verifies a rule's copy assignments against the child's
// declared inherited attribute.
func (v *validator) checkCopies(where, child string, target AttrDecl, copies []CopyAssign, env sourceEnv) {
	for _, c := range copies {
		tm, ok := target.Member(c.TargetMember)
		if !ok {
			v.errorf("%s: Inh(%s) has no member %q", where, child, c.TargetMember)
			continue
		}
		sm, ok := v.memberOf(where, env, c.Src)
		if !ok {
			continue
		}
		if (tm.Kind == Scalar) != (sm.Kind == Scalar) {
			v.errorf("%s: copying %s member %s into %s member %s.%s", where, sm.Kind, c.Src, tm.Kind, child, c.TargetMember)
			continue
		}
		if tm.Kind == Scalar {
			if sm.Name != "" && sm.ValueKind != tm.ValueKind {
				v.errorf("%s: kind mismatch copying %s (%s) into %s.%s (%s)",
					where, c.Src, sm.ValueKind, child, c.TargetMember, tm.ValueKind)
			}
		} else if len(sm.Fields) != len(tm.Fields) {
			v.errorf("%s: arity mismatch copying %s%s into %s.%s%s",
				where, c.Src, sm.Fields, child, c.TargetMember, tm.Fields)
		}
	}
}

// checkRowBinding verifies that query output columns can bind the scalar
// members of the target attribute: by name when every column names a
// scalar member (members not covered must then be supplied by copy
// assignments), or positionally when the arities match.
func (v *validator) checkRowBinding(where, child string, target AttrDecl, out relstore.Schema, copyTargets []string) {
	scalars := target.ScalarSchema()
	byName := true
	for _, col := range out {
		if scalars.ColumnIndex(col.Name) < 0 {
			byName = false
			break
		}
	}
	if byName {
		covered := make(map[string]bool, len(out)+len(copyTargets))
		for _, col := range out {
			want := scalars[scalars.ColumnIndex(col.Name)].Kind
			if col.Kind != want {
				v.errorf("%s: column %q is %s but Inh(%s).%s is %s", where, col.Name, col.Kind, child, col.Name, want)
			}
			covered[col.Name] = true
		}
		for _, t := range copyTargets {
			covered[t] = true
		}
		for _, col := range scalars {
			if !covered[col.Name] {
				v.errorf("%s: scalar member Inh(%s).%s is bound by neither the query nor a copy", where, child, col.Name)
			}
		}
		return
	}
	if len(out) != len(scalars) {
		v.errorf("%s: query returns %d columns %v for %d scalar members of Inh(%s) %v",
			where, len(out), out.Names(), len(scalars), child, scalars.Names())
		return
	}
	for i, col := range scalars {
		if out[i].Kind != col.Kind {
			v.errorf("%s: positional column %d is %s but Inh(%s).%s is %s", where, i, out[i].Kind, child, col.Name, col.Kind)
		}
	}
}

// checkQueryResolves resolves the query with parameter schemas derived
// from its parameter sources (and the extra pre-known schemas), returning
// the output schema (nil on error).
func (v *validator) checkQueryResolves(where string, q *sqlmini.Query, params map[string]SourceRef, env sourceEnv, extra sqlmini.ParamSchemas) relstore.Schema {
	paramSchemas := make(sqlmini.ParamSchemas)
	for _, name := range q.Params() {
		if s, ok := extra[name]; ok {
			paramSchemas[name] = s
			continue
		}
		src, ok := params[name]
		if !ok {
			v.errorf("%s: query parameter $%s has no source", where, name)
			return nil
		}
		schema, ok := v.paramSchema(where, env, src)
		if !ok {
			return nil
		}
		paramSchemas[name] = schema
	}
	if v.schemas == nil {
		// No schema provider: parameter bindings above are still checked,
		// but resolution (and the schema-dependent checks downstream of the
		// output schema) is skipped.
		return nil
	}
	r, err := sqlmini.Resolve(q, v.schemas, paramSchemas)
	if err != nil {
		v.errorf("%s: %v", where, err)
		return nil
	}
	return r.Output
}

// paramSchema computes the binding schema a source reference provides.
func (v *validator) paramSchema(where string, env sourceEnv, src SourceRef) (relstore.Schema, bool) {
	m, ok := v.memberOf(where, env, src)
	if !ok {
		return nil, false
	}
	if src.Member == "" {
		var decl AttrDecl
		if src.Side == InhSide {
			decl = v.aig.Inh[src.Elem]
		} else {
			decl = v.aig.Syn[src.Elem]
		}
		return decl.ScalarSchema(), true
	}
	if m.Kind == Scalar {
		return relstore.Schema{{Name: m.Name, Kind: m.ValueKind}}, true
	}
	return m.Fields, true
}

// checkSynRule verifies one synthesized-attribute rule.
func (v *validator) checkSynRule(where, elem string, r *SynRule, env sourceEnv) {
	decl := v.aig.Syn[elem]
	if r == nil {
		if !decl.IsEmpty() {
			v.errorf("%s: Syn(%s) is declared but has no rule", where, elem)
		}
		return
	}
	for name := range r.Exprs {
		if _, ok := decl.Member(name); !ok {
			prev := v.at(r.Pos[name])
			v.errorf("%s: Syn(%s) has no member %q", where, elem, name)
			v.cur = prev
		}
	}
	for _, m := range decl.Members {
		expr, ok := r.Exprs[m.Name]
		if !ok {
			continue // defaults to Null / empty
		}
		prev := v.at(r.Pos[m.Name])
		v.checkSynExpr(where, elem, m, expr, env)
		v.cur = prev
	}
}

func (v *validator) checkSynExpr(where, elem string, target MemberDecl, expr SynExpr, env sourceEnv) {
	switch e := expr.(type) {
	case ScalarOf:
		if target.Kind != Scalar {
			v.errorf("%s: scalar expression %s for %s member Syn(%s).%s", where, e, target.Kind, elem, target.Name)
			return
		}
		if m, ok := v.memberOf(where, env, e.Src); ok && m.Kind != Scalar {
			v.errorf("%s: %s is not scalar", where, e.Src)
		}
	case SingletonOf:
		if target.Kind == Scalar {
			v.errorf("%s: singleton expression for scalar member Syn(%s).%s", where, elem, target.Name)
			return
		}
		if len(e.Srcs) != len(target.Fields) {
			v.errorf("%s: singleton arity %d for member %s%s", where, len(e.Srcs), target.Name, target.Fields)
		}
		for _, s := range e.Srcs {
			if m, ok := v.memberOf(where, env, s); ok && m.Kind != Scalar {
				v.errorf("%s: singleton component %s is not scalar", where, s)
			}
		}
	case CollectionOf:
		if target.Kind == Scalar {
			v.errorf("%s: collection expression for scalar member Syn(%s).%s", where, elem, target.Name)
			return
		}
		if m, ok := v.memberOf(where, env, e.Src); ok {
			if m.Kind == Scalar {
				v.errorf("%s: %s is scalar; wrap it in a singleton", where, e.Src)
			} else if len(m.Fields) != len(target.Fields) {
				v.errorf("%s: arity mismatch: %s%s into %s%s", where, e.Src, m.Fields, target.Name, target.Fields)
			}
		}
	case UnionOf:
		if target.Kind == Scalar {
			v.errorf("%s: union expression for scalar member Syn(%s).%s", where, elem, target.Name)
			return
		}
		for _, t := range e.Terms {
			v.checkSynExpr(where, elem, target, t, env)
		}
	case CollectChildren:
		if target.Kind == Scalar {
			v.errorf("%s: collect expression for scalar member Syn(%s).%s", where, elem, target.Name)
			return
		}
		if !env.synElems[e.Child] {
			v.errorf("%s: collect over %s, which is not a child in scope", where, e.Child)
			return
		}
		m, ok := v.aig.Syn[e.Child].Member(e.Member)
		if !ok {
			v.errorf("%s: Syn(%s) has no member %q", where, e.Child, e.Member)
			return
		}
		if m.Kind == Scalar {
			if len(target.Fields) != 1 {
				v.errorf("%s: collecting scalar %s.%s into %d-ary member %s", where, e.Child, e.Member, len(target.Fields), target.Name)
			}
		} else if len(m.Fields) != len(target.Fields) {
			v.errorf("%s: arity mismatch collecting %s.%s%s into %s%s", where, e.Child, e.Member, m.Fields, target.Name, target.Fields)
		}
	case EmptyOf:
		if target.Kind == Scalar {
			v.errorf("%s: empty-set expression for scalar member Syn(%s).%s", where, elem, target.Name)
		}
	default:
		v.errorf("%s: unknown expression %T", where, expr)
	}
}

// SiblingOrder returns the child element types of a sequence production in
// a dependency-respecting evaluation order (§3.2 case 2): each child
// appears after every sibling whose synthesized attribute its inherited
// attribute depends on. It returns an error when the dependency relation
// is cyclic (forbidden by Definition 3.1).
func (a *AIG) SiblingOrder(elem string) ([]string, error) {
	p, ok := a.DTD.Production(elem)
	if !ok || p.Kind != dtd.ProdSeq {
		return nil, fmt.Errorf("aig: %s is not a sequence production", elem)
	}
	// Distinct child types, preserving first-occurrence order.
	var types []string
	seen := make(map[string]bool)
	for _, c := range p.Children {
		if !seen[c] {
			seen[c] = true
			types = append(types, c)
		}
	}
	r := a.Rules[elem]
	deps := make(map[string][]string) // child -> siblings it depends on
	if r != nil {
		for child, ir := range r.Inh {
			if ir == nil {
				continue
			}
			add := func(src SourceRef) {
				if src.Side == SynSide && seen[src.Elem] && src.Elem != child {
					deps[child] = append(deps[child], src.Elem)
				}
			}
			for _, c := range ir.Copies {
				add(c.Src)
			}
			for _, s := range ir.QueryParams {
				add(s)
			}
		}
	}
	// Kahn's algorithm, stable with respect to document order.
	indeg := make(map[string]int)
	for _, c := range types {
		indeg[c] = 0
	}
	for child, ds := range deps {
		for range ds {
			indeg[child]++
		}
	}
	var order []string
	done := make(map[string]bool)
	for len(order) < len(types) {
		progressed := false
		for _, c := range types {
			if done[c] || indeg[c] != 0 {
				continue
			}
			order = append(order, c)
			done[c] = true
			progressed = true
			for child, ds := range deps {
				for _, d := range ds {
					if d == c {
						indeg[child]--
					}
				}
			}
		}
		if !progressed {
			var cyclic []string
			for _, c := range types {
				if !done[c] {
					cyclic = append(cyclic, c)
				}
			}
			return nil, fmt.Errorf("aig: cyclic dependency relation in production of %s among %v", elem, cyclic)
		}
	}
	return order, nil
}
