// Package aig implements Attribute Integration Grammars (§3 of the
// paper): a DTD whose element types carry inherited and synthesized
// semantic attributes, computed by semantic rules that combine attribute
// members and evaluate parameterized multi-source SQL queries; plus XML
// keys and inclusion constraints enforced through guards.
//
// The package provides the AIG model, static validation (type
// compatibility and dependency-relation acyclicity, §3.1), and the
// conceptual evaluator (§3.2) — the reference tuple-at-a-time semantics
// against which the set-oriented mediator evaluator is verified.
package aig

import (
	"fmt"
	"strings"

	"github.com/aigrepro/aig/internal/dtd"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/sqlmini"
	"github.com/aigrepro/aig/internal/srcpos"
	"github.com/aigrepro/aig/internal/xconstraint"
)

// MemberKind discriminates the type of one attribute member: a scalar
// (one component of the attribute's tuple type), or a set/bag of tuples.
// Bags arise only from constraint compilation (§3.3).
type MemberKind uint8

// The member kinds.
const (
	Scalar MemberKind = iota
	Set
	Bag
)

func (k MemberKind) String() string {
	switch k {
	case Scalar:
		return "scalar"
	case Set:
		return "set"
	case Bag:
		return "bag"
	default:
		return fmt.Sprintf("memberkind(%d)", uint8(k))
	}
}

// MemberDecl declares one member of an attribute.
type MemberDecl struct {
	Name string
	Kind MemberKind
	// ValueKind is the scalar's kind (Scalar members only).
	ValueKind relstore.Kind
	// Fields is the tuple schema of Set/Bag members.
	Fields relstore.Schema
	// Pos is where the member was declared in the spec source (zero for
	// programmatically built grammars).
	Pos srcpos.Pos
}

// String renders the member declaration.
func (m MemberDecl) String() string {
	switch m.Kind {
	case Scalar:
		return m.Name + ":" + m.ValueKind.String()
	case Set:
		return fmt.Sprintf("set %s%s", m.Name, m.Fields)
	default:
		return fmt.Sprintf("bag %s%s", m.Name, m.Fields)
	}
}

// AttrDecl declares an attribute — Inh(A) or Syn(A) — as an ordered list
// of members. The zero value is the empty attribute ().
type AttrDecl struct {
	Members []MemberDecl
}

// Member returns the declaration of the named member, if present.
func (d AttrDecl) Member(name string) (MemberDecl, bool) {
	for _, m := range d.Members {
		if m.Name == name {
			return m, true
		}
	}
	return MemberDecl{}, false
}

// ScalarSchema returns the schema of the attribute's scalar members in
// declaration order — the tuple shape used when the whole attribute is
// bound to a query parameter ($v).
func (d AttrDecl) ScalarSchema() relstore.Schema {
	var out relstore.Schema
	for _, m := range d.Members {
		if m.Kind == Scalar {
			out = append(out, relstore.Column{Name: m.Name, Kind: m.ValueKind})
		}
	}
	return out
}

// IsEmpty reports whether the attribute has no members.
func (d AttrDecl) IsEmpty() bool { return len(d.Members) == 0 }

// Clone returns a deep copy of the declaration.
func (d AttrDecl) Clone() AttrDecl { return cloneAttrDecl(d) }

// String renders the declaration as "(date:string, set trIdS(trId:string))".
func (d AttrDecl) String() string {
	parts := make([]string, len(d.Members))
	for i, m := range d.Members {
		parts[i] = m.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Side distinguishes inherited from synthesized attributes in references.
type Side uint8

// The attribute sides.
const (
	InhSide Side = iota
	SynSide
)

func (s Side) String() string {
	if s == InhSide {
		return "Inh"
	}
	return "Syn"
}

// SourceRef names a value source inside a semantic rule: a member of an
// attribute of some element type (the parent's Inh, or a sibling/child
// Syn). An empty Member refers to the whole scalar tuple of the
// attribute.
type SourceRef struct {
	Side   Side
	Elem   string
	Member string
}

// String renders the reference in the paper's notation.
func (r SourceRef) String() string {
	s := fmt.Sprintf("%s(%s)", r.Side, r.Elem)
	if r.Member != "" {
		s += "." + r.Member
	}
	return s
}

// CopyAssign copies a source member into a target member of the rule's
// target attribute.
type CopyAssign struct {
	TargetMember string
	Src          SourceRef
}

// InhRule computes the inherited attribute of one child element type in a
// production. Exactly one of two shapes is used:
//
//   - a copy rule: Copies assigns members from Inh(A) and sibling Syn;
//   - a query rule: Query runs with QueryParams bound from attributes. In
//     star productions each output row spawns one child, its scalar
//     members bound from the row by column name. In other productions the
//     output set becomes the child's TargetCollection member (a set), or —
//     when the child's attribute is all scalars — the single output row is
//     bound by column name.
type InhRule struct {
	Child string

	Copies []CopyAssign

	Query            *sqlmini.Query
	QueryParams      map[string]SourceRef
	TargetCollection string

	// Chain, when non-empty, replaces Query with the decomposed
	// single-source steps produced by multi-source query decomposition
	// (§3.4). Each step may reference the previous step's output as the
	// set parameter $prev (the paper's internal states St1, St2, ...; here
	// the state values flow directly instead of materializing as tree
	// nodes, and the mediator gives each step its own node in the query
	// dependency graph). QueryParams binds the remaining parameters for
	// every step.
	Chain []*sqlmini.Query

	// Pos is where the rule's first clause for this child appears in the
	// spec source; QueryPos points at the query clause specifically (both
	// zero for programmatically built grammars).
	Pos      srcpos.Pos
	QueryPos srcpos.Pos
}

// PrevParam is the reserved parameter name binding a chain step to the
// output of the preceding step.
const PrevParam = "prev"

// IsQuery reports whether the rule is a query rule (QSR); otherwise it is
// a copy rule (CSR) in the terminology of §4.
func (r *InhRule) IsQuery() bool { return r != nil && (r.Query != nil || len(r.Chain) > 0) }

// SynExpr is the right-hand side of one synthesized-attribute member
// definition: the g functions of §3.1.
type SynExpr interface {
	synExpr()
	String() string
}

// ScalarOf evaluates to the scalar value of a source member.
type ScalarOf struct{ Src SourceRef }

// SingletonOf evaluates to the one-tuple set {(x1, ..., xk)} of scalar
// sources.
type SingletonOf struct{ Srcs []SourceRef }

// CollectionOf evaluates to a source set/bag member.
type CollectionOf struct{ Src SourceRef }

// UnionOf evaluates to the union (bag union for bag targets) of its terms.
type UnionOf struct{ Terms []SynExpr }

// CollectChildren evaluates, in star productions, to the union over all B
// children of the given Syn(B) member (the "collect" function of §3.1,
// case 4). Scalar child members are collected into a set of 1-tuples.
type CollectChildren struct {
	Child  string
	Member string
}

// EmptyOf evaluates to the empty set.
type EmptyOf struct{}

func (ScalarOf) synExpr()        {}
func (SingletonOf) synExpr()     {}
func (CollectionOf) synExpr()    {}
func (UnionOf) synExpr()         {}
func (CollectChildren) synExpr() {}
func (EmptyOf) synExpr()         {}

func (e ScalarOf) String() string     { return e.Src.String() }
func (e CollectionOf) String() string { return e.Src.String() }
func (e EmptyOf) String() string      { return "{}" }

func (e SingletonOf) String() string {
	parts := make([]string, len(e.Srcs))
	for i, s := range e.Srcs {
		parts[i] = s.String()
	}
	return "{(" + strings.Join(parts, ", ") + ")}"
}

func (e UnionOf) String() string {
	parts := make([]string, len(e.Terms))
	for i, t := range e.Terms {
		parts[i] = t.String()
	}
	return strings.Join(parts, " U ")
}

func (e CollectChildren) String() string {
	return fmt.Sprintf("collect(Syn(%s).%s)", e.Child, e.Member)
}

// SynRule computes Syn(A): one expression per member, keyed by member
// name. Members without an entry default to empty (set/bag) or Null
// (scalar).
type SynRule struct {
	Exprs map[string]SynExpr
	// Pos locates each member's defining clause in the spec source (absent
	// or zero for programmatically built grammars).
	Pos map[string]srcpos.Pos
}

// GuardKind discriminates the two guard forms of §3.3.
type GuardKind uint8

// The guard forms.
const (
	GuardUnique GuardKind = iota // unique(Syn(C).B): the bag has no duplicates
	GuardSubset                  // subset(Syn(C).S1, Syn(C).S2)
)

// Guard is a boolean condition on the element's own synthesized
// attribute, checked after the subtree is generated; a false guard aborts
// the evaluation (§3.3).
type Guard struct {
	Kind GuardKind
	// Member is the bag member checked for duplicates (GuardUnique).
	Member string
	// Sub and Super are the set members of a GuardSubset check.
	Sub, Super string
	// Origin is the constraint this guard enforces, for error messages.
	Origin xconstraint.Constraint
}

// String renders the guard.
func (g Guard) String() string {
	if g.Kind == GuardUnique {
		return fmt.Sprintf("unique(%s)", g.Member)
	}
	return fmt.Sprintf("subset(%s, %s)", g.Sub, g.Super)
}

// Branch is one alternative of a choice production's rule: how to compute
// the selected child's Inh and, from it, Syn(A) (§3.1, case 3).
type Branch struct {
	Inh *InhRule
	Syn *SynRule
}

// Rule is rule(p) for one production p = A -> α.
type Rule struct {
	Elem string

	// TextSrc, for A -> S productions, is the scalar source whose value
	// becomes the PCDATA of the text child (the f of case 1).
	TextSrc SourceRef

	// Inh maps child element types to their inherited-attribute rules
	// (sequence and star productions).
	Inh map[string]*InhRule

	// Syn computes Syn(A) (all production forms except choice).
	Syn *SynRule

	// Cond is the condition query of a choice production; it must return
	// a single integer in [1, n] selecting the branch. Branches holds the
	// per-alternative rules in production order.
	Cond       *sqlmini.Query
	CondParams map[string]SourceRef
	Branches   []Branch

	// Guards are checked after Syn(A) is computed.
	Guards []Guard

	// Pos is where the rule section starts in the spec source; CondPos
	// points at the condition query clause (both zero for programmatically
	// built grammars).
	Pos     srcpos.Pos
	CondPos srcpos.Pos
}

// DeclaredSources is the relational schema signature an AIG is written
// against: source name -> table name -> schema, as declared in a spec's
// "sources" section. It implements sqlmini.SchemaProvider so rule queries
// can be resolved against the declaration alone, without live sources.
type DeclaredSources map[string]map[string]relstore.Schema

// TableSchema implements sqlmini.SchemaProvider.
func (s DeclaredSources) TableSchema(source, table string) (relstore.Schema, error) {
	tables, ok := s[source]
	if !ok {
		return nil, fmt.Errorf("source %q is not declared", source)
	}
	schema, ok := tables[table]
	if !ok {
		return nil, fmt.Errorf("source %q declares no table %q", source, table)
	}
	return schema, nil
}

// Clone returns a deep copy.
func (s DeclaredSources) Clone() DeclaredSources {
	if s == nil {
		return nil
	}
	out := make(DeclaredSources, len(s))
	for src, tables := range s {
		ct := make(map[string]relstore.Schema, len(tables))
		for t, schema := range tables {
			ct[t] = append(relstore.Schema(nil), schema...)
		}
		out[src] = ct
	}
	return out
}

// SourceKey declares a relational key (unique constraint) on a declared
// source table: no two rows of Source:Table agree on all of Cols. The
// propagation engine (internal/propagate) chases these through rule
// queries to certify XML keys statically (§5).
type SourceKey struct {
	Source string
	Table  string
	Cols   []string
	// Pos is where the key was declared in the spec source (zero for
	// programmatically built grammars).
	Pos srcpos.Pos
}

// String renders the key as "DB1:patient(SSN)".
func (k SourceKey) String() string {
	return fmt.Sprintf("%s:%s(%s)", k.Source, k.Table, strings.Join(k.Cols, ", "))
}

// Clone returns a deep copy.
func (k SourceKey) Clone() SourceKey {
	k.Cols = append([]string(nil), k.Cols...)
	return k
}

// SourceFK declares a relational foreign key on a declared source table:
// every Cols tuple of Source:Table appears as a RefCols tuple of
// RefSource:RefTable. The referenced column list must itself be declared
// as a SourceKey.
type SourceFK struct {
	Source    string
	Table     string
	Cols      []string
	RefSource string
	RefTable  string
	RefCols   []string
	// Pos is where the foreign key was declared in the spec source (zero
	// for programmatically built grammars).
	Pos srcpos.Pos
}

// String renders the foreign key as "DB1:visitInfo(trId) -> DB3:billing(trId)".
func (k SourceFK) String() string {
	return fmt.Sprintf("%s:%s(%s) -> %s:%s(%s)",
		k.Source, k.Table, strings.Join(k.Cols, ", "),
		k.RefSource, k.RefTable, strings.Join(k.RefCols, ", "))
}

// Clone returns a deep copy.
func (k SourceFK) Clone() SourceFK {
	k.Cols = append([]string(nil), k.Cols...)
	k.RefCols = append([]string(nil), k.RefCols...)
	return k
}

// AIG is an attribute integration grammar σ: R -> D (§3.1, Definition
// 3.1): a DTD, attribute declarations, semantic rules per production, and
// XML constraints.
type AIG struct {
	DTD *dtd.DTD

	Inh map[string]AttrDecl
	Syn map[string]AttrDecl

	Rules map[string]*Rule

	Constraints []xconstraint.Constraint

	// Sources, when non-nil, is the declared schema signature of the
	// relational sources the grammar integrates (a spec's "sources"
	// section). Static tooling resolves rule queries against it; at run
	// time the live registry remains authoritative.
	Sources DeclaredSources

	// SourceKeys and SourceFKs are the relational constraints declared on
	// the source signature ("key"/"fkey" lines of the sources section).
	// They are premises, not checks: the certifier assumes they hold on
	// every instance and proves XML constraints from them.
	SourceKeys []SourceKey
	SourceFKs  []SourceFK

	// Labels maps internal element type names to the labels emitted in the
	// output document. Recursion unfolding (§5.5) introduces per-level
	// copies like "treatment@2" that must still be tagged "treatment"; an
	// absent entry means the type name is the label.
	Labels map[string]string
}

// Label returns the output label of an element type.
func (a *AIG) Label(elem string) string {
	if l, ok := a.Labels[elem]; ok {
		return l
	}
	return elem
}

// New creates an empty AIG over the given DTD.
func New(d *dtd.DTD) *AIG {
	return &AIG{
		DTD:   d,
		Inh:   make(map[string]AttrDecl),
		Syn:   make(map[string]AttrDecl),
		Rules: make(map[string]*Rule),
	}
}

// InhDecl returns the declared inherited attribute of the element type
// (empty if undeclared).
func (a *AIG) InhDecl(elem string) AttrDecl { return a.Inh[elem] }

// SynDecl returns the declared synthesized attribute of the element type
// (empty if undeclared).
func (a *AIG) SynDecl(elem string) AttrDecl { return a.Syn[elem] }

// Rule returns the semantic rule of the element type's production.
func (a *AIG) Rule(elem string) *Rule { return a.Rules[elem] }

// Clone returns a deep copy of the AIG. Queries inside rules are cloned;
// the DTD is cloned too, so specialization can extend it with internal
// states without affecting the original.
func (a *AIG) Clone() *AIG {
	out := New(a.DTD.Clone())
	for k, v := range a.Inh {
		out.Inh[k] = cloneAttrDecl(v)
	}
	for k, v := range a.Syn {
		out.Syn[k] = cloneAttrDecl(v)
	}
	for k, r := range a.Rules {
		out.Rules[k] = cloneRule(r)
	}
	out.Constraints = append([]xconstraint.Constraint(nil), a.Constraints...)
	out.Sources = a.Sources.Clone()
	for _, k := range a.SourceKeys {
		out.SourceKeys = append(out.SourceKeys, k.Clone())
	}
	for _, k := range a.SourceFKs {
		out.SourceFKs = append(out.SourceFKs, k.Clone())
	}
	if a.Labels != nil {
		out.Labels = make(map[string]string, len(a.Labels))
		for k, v := range a.Labels {
			out.Labels[k] = v
		}
	}
	return out
}

func cloneAttrDecl(d AttrDecl) AttrDecl {
	members := make([]MemberDecl, len(d.Members))
	for i, m := range d.Members {
		m.Fields = append(relstore.Schema(nil), m.Fields...)
		members[i] = m
	}
	return AttrDecl{Members: members}
}

func cloneInhRule(r *InhRule) *InhRule {
	if r == nil {
		return nil
	}
	out := &InhRule{
		Child:            r.Child,
		Copies:           append([]CopyAssign(nil), r.Copies...),
		TargetCollection: r.TargetCollection,
		Pos:              r.Pos,
		QueryPos:         r.QueryPos,
	}
	if r.Query != nil {
		out.Query = r.Query.Clone()
	}
	for _, q := range r.Chain {
		out.Chain = append(out.Chain, q.Clone())
	}
	if r.QueryParams != nil {
		out.QueryParams = make(map[string]SourceRef, len(r.QueryParams))
		for k, v := range r.QueryParams {
			out.QueryParams[k] = v
		}
	}
	return out
}

func cloneSynRule(r *SynRule) *SynRule {
	if r == nil {
		return nil
	}
	out := &SynRule{Exprs: make(map[string]SynExpr, len(r.Exprs))}
	for k, v := range r.Exprs {
		out.Exprs[k] = v // expressions are immutable values
	}
	if r.Pos != nil {
		out.Pos = make(map[string]srcpos.Pos, len(r.Pos))
		for k, v := range r.Pos {
			out.Pos[k] = v
		}
	}
	return out
}

func cloneRule(r *Rule) *Rule {
	out := &Rule{
		Elem:    r.Elem,
		TextSrc: r.TextSrc,
		Syn:     cloneSynRule(r.Syn),
		Guards:  append([]Guard(nil), r.Guards...),
		Pos:     r.Pos,
		CondPos: r.CondPos,
	}
	if r.Inh != nil {
		out.Inh = make(map[string]*InhRule, len(r.Inh))
		for k, v := range r.Inh {
			out.Inh[k] = cloneInhRule(v)
		}
	}
	if r.Cond != nil {
		out.Cond = r.Cond.Clone()
	}
	if r.CondParams != nil {
		out.CondParams = make(map[string]SourceRef, len(r.CondParams))
		for k, v := range r.CondParams {
			out.CondParams[k] = v
		}
	}
	for _, b := range r.Branches {
		out.Branches = append(out.Branches, Branch{Inh: cloneInhRule(b.Inh), Syn: cloneSynRule(b.Syn)})
	}
	return out
}

// Queries returns every SQL query mentioned in the AIG's rules, paired
// with the element type owning the rule. The specializer uses this to
// find multi-source queries.
func (a *AIG) Queries() []ElemQuery {
	var out []ElemQuery
	for _, elem := range a.DTD.Types() {
		r := a.Rules[elem]
		if r == nil {
			continue
		}
		if r.Cond != nil {
			out = append(out, ElemQuery{Elem: elem, Query: r.Cond})
		}
		for _, child := range sortedKeys(r.Inh) {
			ir := r.Inh[child]
			if !ir.IsQuery() {
				continue
			}
			if ir.Query != nil {
				out = append(out, ElemQuery{Elem: elem, Child: child, Query: ir.Query})
			}
			for i, q := range ir.Chain {
				out = append(out, ElemQuery{Elem: elem, Child: child, Query: q, ChainStep: i + 1})
			}
		}
		for _, b := range r.Branches {
			if b.Inh.IsQuery() && b.Inh.Query != nil {
				out = append(out, ElemQuery{Elem: elem, Child: b.Inh.Child, Query: b.Inh.Query})
			}
		}
	}
	return out
}

// ElemQuery locates a query within the grammar.
type ElemQuery struct {
	Elem      string // element type whose production owns the rule
	Child     string // child whose Inh the query computes ("" for condition queries)
	Query     *sqlmini.Query
	ChainStep int // 1-based position within a decomposed chain; 0 otherwise
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	// insertion sort; rule maps are tiny
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
