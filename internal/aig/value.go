package aig

import (
	"fmt"
	"sort"
	"strings"

	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/sqlmini"
)

// AttrValue is the runtime value of an attribute instance: scalar members
// hold single values, set/bag members hold tuple collections.
type AttrValue struct {
	Decl        AttrDecl
	Scalars     map[string]relstore.Value
	Collections map[string]*relstore.Table
}

// NewAttrValue creates a value for the declaration with Null scalars and
// empty collections.
func NewAttrValue(decl AttrDecl) *AttrValue {
	v := &AttrValue{
		Decl:        decl,
		Scalars:     make(map[string]relstore.Value),
		Collections: make(map[string]*relstore.Table),
	}
	for _, m := range decl.Members {
		switch m.Kind {
		case Scalar:
			v.Scalars[m.Name] = relstore.Null
		default:
			v.Collections[m.Name] = relstore.NewTable(m.Name, m.Fields)
		}
	}
	return v
}

// SetScalar assigns a scalar member.
func (v *AttrValue) SetScalar(name string, val relstore.Value) error {
	m, ok := v.Decl.Member(name)
	if !ok || m.Kind != Scalar {
		return fmt.Errorf("aig: no scalar member %q in %s", name, v.Decl)
	}
	v.Scalars[name] = val
	return nil
}

// Scalar returns the value of a scalar member.
func (v *AttrValue) Scalar(name string) (relstore.Value, error) {
	val, ok := v.Scalars[name]
	if !ok {
		return relstore.Null, fmt.Errorf("aig: no scalar member %q in %s", name, v.Decl)
	}
	return val, nil
}

// Collection returns the table backing a set/bag member.
func (v *AttrValue) Collection(name string) (*relstore.Table, error) {
	t, ok := v.Collections[name]
	if !ok {
		return nil, fmt.Errorf("aig: no collection member %q in %s", name, v.Decl)
	}
	return t, nil
}

// SetCollection replaces a set/bag member's rows. Set members are
// deduplicated; bags keep duplicates.
func (v *AttrValue) SetCollection(name string, rows []relstore.Tuple) error {
	m, ok := v.Decl.Member(name)
	if !ok || m.Kind == Scalar {
		return fmt.Errorf("aig: no collection member %q in %s", name, v.Decl)
	}
	t := relstore.NewTable(name, m.Fields)
	for _, row := range rows {
		if err := t.Insert(row); err != nil {
			return fmt.Errorf("aig: member %q: %v", name, err)
		}
	}
	if m.Kind == Set {
		t.Distinct()
	}
	v.Collections[name] = t
	return nil
}

// ScalarTuple returns the attribute's scalar members as a tuple in
// declaration order.
func (v *AttrValue) ScalarTuple() relstore.Tuple {
	var out relstore.Tuple
	for _, m := range v.Decl.Members {
		if m.Kind == Scalar {
			out = append(out, v.Scalars[m.Name])
		}
	}
	return out
}

// ScalarBinding returns the attribute's scalar tuple as a one-row query
// binding — the form Q(Inh(A)) receives.
func (v *AttrValue) ScalarBinding() sqlmini.Binding {
	return sqlmini.Binding{Schema: v.Decl.ScalarSchema(), Rows: []relstore.Tuple{v.ScalarTuple()}}
}

// MemberBinding returns the binding for a source member reference: the
// whole scalar tuple when member is empty, otherwise the named member
// (collections bind their rows; scalars bind as a one-row, one-column
// relation).
func (v *AttrValue) MemberBinding(member string) (sqlmini.Binding, error) {
	if member == "" {
		return v.ScalarBinding(), nil
	}
	m, ok := v.Decl.Member(member)
	if !ok {
		return sqlmini.Binding{}, fmt.Errorf("aig: no member %q in %s", member, v.Decl)
	}
	if m.Kind == Scalar {
		schema := relstore.Schema{{Name: m.Name, Kind: m.ValueKind}}
		return sqlmini.Binding{Schema: schema, Rows: []relstore.Tuple{{v.Scalars[member]}}}, nil
	}
	return sqlmini.TableBinding(v.Collections[member]), nil
}

// BindScalarsFromRow assigns scalar members from a query output row.
// When every output column names a scalar member, binding is by name and
// members without a matching column are left untouched (they may be
// filled by copy assignments, as in Inh(patient).date = Inh(report).date
// alongside Q1). Otherwise, when the column count equals the number of
// scalar members in targets, binding is positional. Anything else is an
// error.
func (v *AttrValue) BindScalarsFromRow(targets []string, schema relstore.Schema, row relstore.Tuple) error {
	isTarget := make(map[string]bool, len(targets))
	for _, t := range targets {
		isTarget[t] = true
	}
	byName := true
	for _, col := range schema {
		if !isTarget[col.Name] {
			byName = false
			break
		}
	}
	if byName {
		for i, col := range schema {
			if err := v.SetScalar(col.Name, row[i]); err != nil {
				return err
			}
		}
		return nil
	}
	if len(targets) != len(row) {
		return fmt.Errorf("aig: cannot bind %d members %v from %d columns %s", len(targets), targets, len(row), schema)
	}
	for i, t := range targets {
		if err := v.SetScalar(t, row[i]); err != nil {
			return err
		}
	}
	return nil
}

// Clone returns a deep copy of the value.
func (v *AttrValue) Clone() *AttrValue {
	out := NewAttrValue(v.Decl)
	for k, s := range v.Scalars {
		out.Scalars[k] = s
	}
	for k, t := range v.Collections {
		out.Collections[k] = t.Clone()
	}
	return out
}

// Equal reports whether two values agree on every member (collections
// compare as multisets).
func (v *AttrValue) Equal(w *AttrValue) bool {
	if len(v.Scalars) != len(w.Scalars) || len(v.Collections) != len(w.Collections) {
		return false
	}
	for k, s := range v.Scalars {
		ws, ok := w.Scalars[k]
		if !ok || !s.Equal(ws) {
			return false
		}
	}
	for k, t := range v.Collections {
		wt, ok := w.Collections[k]
		if !ok || !t.Equal(wt) {
			return false
		}
	}
	return true
}

// String renders the value compactly for debugging and error messages.
func (v *AttrValue) String() string {
	var parts []string
	names := make([]string, 0, len(v.Scalars))
	for k := range v.Scalars {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		parts = append(parts, fmt.Sprintf("%s=%s", k, v.Scalars[k]))
	}
	names = names[:0]
	for k := range v.Collections {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		parts = append(parts, fmt.Sprintf("%s=[%d rows]", k, v.Collections[k].Len()))
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
