package aig_test

import (
	"strings"
	"testing"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/dtd"
	"github.com/aigrepro/aig/internal/hospital"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/sqlmini"
)

func TestSynExprStrings(t *testing.T) {
	cases := []struct {
		expr aig.SynExpr
		want string
	}{
		{aig.ScalarOf{Src: aig.InhOf("a", "x")}, "Inh(a).x"},
		{aig.CollectionOf{Src: aig.SynOf("b", "s")}, "Syn(b).s"},
		{aig.EmptyOf{}, "{}"},
		{aig.SingletonOf{Srcs: []aig.SourceRef{aig.SynOf("t", "v")}}, "{(Syn(t).v)}"},
		{aig.UnionOf{Terms: []aig.SynExpr{aig.EmptyOf{}, aig.CollectionOf{Src: aig.SynOf("b", "s")}}}, "{} U Syn(b).s"},
		{aig.CollectChildren{Child: "c", Member: "m"}, "collect(Syn(c).m)"},
	}
	for _, tc := range cases {
		if got := tc.expr.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
	if aig.InhOf("a", "").String() != "Inh(a)" {
		t.Errorf("whole-attribute ref String = %q", aig.InhOf("a", "").String())
	}
	if aig.GuardUnique != (aig.Guard{Kind: aig.GuardUnique}).Kind {
		t.Error("guard kind mismatch")
	}
	g := aig.Guard{Kind: aig.GuardSubset, Sub: "a", Super: "b"}
	if g.String() != "subset(a, b)" {
		t.Errorf("guard String = %q", g.String())
	}
	if (aig.Guard{Kind: aig.GuardUnique, Member: "m"}).String() != "unique(m)" {
		t.Error("unique guard String wrong")
	}
}

func TestDeclStrings(t *testing.T) {
	d := aig.Attr(aig.StringMember("x"), aig.SetMember("s", "a:int"), aig.BagMember("b", "v"))
	s := d.String()
	for _, want := range []string{"x:string", "set s", "bag b"} {
		if !strings.Contains(s, want) {
			t.Errorf("decl String %q missing %q", s, want)
		}
	}
	if aig.Scalar.String() != "scalar" || aig.Set.String() != "set" || aig.Bag.String() != "bag" {
		t.Error("MemberKind strings wrong")
	}
	if aig.InhSide.String() != "Inh" || aig.SynSide.String() != "Syn" {
		t.Error("Side strings wrong")
	}
}

func TestAccessors(t *testing.T) {
	a := hospital.Sigma0(false)
	if a.InhDecl("patient").IsEmpty() || !a.SynDecl("patient").IsEmpty() {
		t.Error("decl accessors wrong")
	}
	if a.Rule("report") == nil || a.Rule("ghost") != nil {
		t.Error("Rule accessor wrong")
	}
	if a.Label("patient") != "patient" {
		t.Error("default label wrong")
	}
}

func TestSynExprsHelper(t *testing.T) {
	r := aig.SynExprs("a", aig.EmptyOf{}, "b", aig.CollectChildren{Child: "c", Member: "m"})
	if len(r.Exprs) != 2 {
		t.Errorf("SynExprs built %d entries", len(r.Exprs))
	}
}

// TestEmptyProduction exercises A -> ε with a synthesized attribute
// computed from Inh(A) (§3.1 case 5).
func TestEmptyProduction(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT a (b)> <!ELEMENT b EMPTY>`)
	g := aig.New(d)
	g.Inh["b"] = aig.Attr(aig.StringMember("v"))
	g.Syn["b"] = aig.Attr(aig.SetMember("s", "v:string"))
	g.Rules["a"] = &aig.Rule{
		Elem: "a",
		Inh: map[string]*aig.InhRule{
			"b": {Child: "b", Copies: []aig.CopyAssign{aig.Copy("v", aig.InhOf("a", "seed"))}},
		},
	}
	g.Inh["a"] = aig.Attr(aig.StringMember("seed"))
	g.Rules["b"] = &aig.Rule{
		Elem: "b",
		Syn:  aig.Syn1("s", aig.SingletonOf{Srcs: []aig.SourceRef{aig.InhOf("b", "v")}}),
	}
	cat := relstore.NewCatalog()
	if err := g.Validate(sqlmini.CatalogSchemas{Catalog: cat}); err != nil {
		t.Fatalf("empty-production AIG invalid: %v", err)
	}
	env := &aig.Env{
		Schemas: sqlmini.CatalogSchemas{Catalog: cat},
		Data:    sqlmini.CatalogData{Catalog: cat},
		Stats:   sqlmini.CatalogStats{Catalog: cat},
	}
	inh := aig.NewAttrValue(g.Inh["a"])
	if err := inh.SetScalar("seed", relstore.String("x")); err != nil {
		t.Fatal(err)
	}
	doc, err := g.Eval(env, inh)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Child("b") == nil || len(doc.Child("b").Children) != 0 {
		t.Errorf("empty production output wrong:\n%s", doc)
	}
	if err := dtd.Conforms(d, doc); err != nil {
		t.Error(err)
	}
}

// TestSubsetGuard exercises the subset guard both passing and failing.
func TestSubsetGuard(t *testing.T) {
	decl := aig.Attr(aig.SetMember("small", "v:string"), aig.SetMember("big", "v:string"))
	v := aig.NewAttrValue(decl)
	if err := v.SetCollection("small", []relstore.Tuple{{relstore.String("a")}}); err != nil {
		t.Fatal(err)
	}
	if err := v.SetCollection("big", []relstore.Tuple{{relstore.String("a")}, {relstore.String("b")}}); err != nil {
		t.Fatal(err)
	}
	g := aig.Guard{Kind: aig.GuardSubset, Sub: "small", Super: "big"}
	ok, err := aig.CheckGuard(g, v)
	if err != nil || !ok {
		t.Errorf("subset guard: %v, %v", ok, err)
	}
	if err := v.SetCollection("small", []relstore.Tuple{{relstore.String("z")}}); err != nil {
		t.Fatal(err)
	}
	ok, err = aig.CheckGuard(g, v)
	if err != nil || ok {
		t.Errorf("violated subset guard passed: %v, %v", ok, err)
	}
	// Guards over missing members error.
	if _, err := aig.CheckGuard(aig.Guard{Kind: aig.GuardSubset, Sub: "ghost", Super: "big"}, v); err == nil {
		t.Error("guard over missing member accepted")
	}
	if _, err := aig.CheckGuard(aig.Guard{Kind: aig.GuardUnique, Member: "ghost"}, v); err == nil {
		t.Error("unique guard over missing member accepted")
	}
}

// TestChainEvaluationInConceptual exercises runInhQuery's chain path
// directly with a hand-built two-step chain.
func TestChainEvaluationInConceptual(t *testing.T) {
	cat := hospital.TinyCatalog()
	a := hospital.Sigma0(false)
	// Replace Q4 with an equivalent 2-step chain: fetch the set, then
	// look up billing rows via $prev.
	ir := a.Rules["bill"].Inh["item"]
	ir.Query = nil
	ir.Chain = []*sqlmini.Query{
		sqlmini.MustParse(`select b.trId as k from DB3:billing b where b.trId in $V`),
		sqlmini.MustParse(`select b.trId, b.price from DB3:billing b, $prev P where b.trId = P.k`),
	}
	if err := a.Validate(sqlmini.CatalogSchemas{Catalog: cat}); err != nil {
		t.Fatalf("chain AIG invalid: %v", err)
	}
	got, err := a.Eval(hospital.EnvFor(cat), hospital.RootInh(a, "d1"))
	if err != nil {
		t.Fatal(err)
	}
	ref := hospital.Sigma0(false)
	want, err := ref.Eval(hospital.EnvFor(cat), hospital.RootInh(ref, "d1"))
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Errorf("chain evaluation differs:\n%s\n%s", want, got)
	}
}

func TestBindScalarsFromRowErrors(t *testing.T) {
	decl := aig.Attr(aig.StringMember("a"), aig.StringMember("b"))
	v := aig.NewAttrValue(decl)
	// Arity mismatch with non-member column names.
	err := v.BindScalarsFromRow([]string{"a", "b"},
		relstore.MustSchema("x:string"), relstore.Tuple{relstore.String("1")})
	if err == nil {
		t.Error("arity mismatch accepted")
	}
	// Positional binding when names do not match but arity does.
	err = v.BindScalarsFromRow([]string{"a", "b"},
		relstore.MustSchema("x:string", "y:string"),
		relstore.Tuple{relstore.String("1"), relstore.String("2")})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := v.Scalar("b"); got.AsString() != "2" {
		t.Errorf("positional binding: b = %v", got)
	}
}

func TestMemberBindingForms(t *testing.T) {
	decl := aig.Attr(aig.StringMember("a"), aig.SetMember("s", "v:string"))
	val := aig.NewAttrValue(decl)
	if err := val.SetScalar("a", relstore.String("x")); err != nil {
		t.Fatal(err)
	}
	if err := val.SetCollection("s", []relstore.Tuple{{relstore.String("p")}}); err != nil {
		t.Fatal(err)
	}
	whole, err := val.MemberBinding("")
	if err != nil || len(whole.Schema) != 1 || len(whole.Rows) != 1 {
		t.Errorf("whole binding = %+v, %v", whole, err)
	}
	scalar, err := val.MemberBinding("a")
	if err != nil || len(scalar.Rows) != 1 || scalar.Rows[0][0].AsString() != "x" {
		t.Errorf("scalar binding = %+v, %v", scalar, err)
	}
	coll, err := val.MemberBinding("s")
	if err != nil || len(coll.Rows) != 1 {
		t.Errorf("collection binding = %+v, %v", coll, err)
	}
	if _, err := val.MemberBinding("ghost"); err == nil {
		t.Error("missing member binding accepted")
	}
	if _, err := val.Scalar("ghost"); err == nil {
		t.Error("missing scalar accepted")
	}
	if _, err := val.Collection("ghost"); err == nil {
		t.Error("missing collection accepted")
	}
}

func TestValidateEmptyProductionErrors(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT a (b)> <!ELEMENT b EMPTY>`)
	g := aig.New(d)
	g.Syn["b"] = aig.Attr(aig.StringMember("v"))
	// Declared Syn with no rule at an empty production.
	if err := g.Validate(sqlmini.CatalogSchemas{Catalog: relstore.NewCatalog()}); err == nil {
		t.Error("empty production with uncomputed Syn accepted")
	}
}

func TestAttrValueStringAndEqual(t *testing.T) {
	decl := aig.Attr(aig.StringMember("a"), aig.SetMember("s", "v:string"))
	v1 := aig.NewAttrValue(decl)
	v2 := aig.NewAttrValue(decl)
	if !v1.Equal(v2) {
		t.Error("fresh values not equal")
	}
	if err := v1.SetCollection("s", []relstore.Tuple{{relstore.String("p")}}); err != nil {
		t.Fatal(err)
	}
	if v1.Equal(v2) {
		t.Error("different collections equal")
	}
	if !strings.Contains(v1.String(), "s=[1 rows]") {
		t.Errorf("String = %s", v1)
	}
}
