package aig

import (
	"fmt"

	"github.com/aigrepro/aig/internal/dtd"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/xmltree"
)

// This file implements partial evaluation for fragment serving: instead
// of deriving the whole document, EvalPartial walks the grammar guided
// by a FragCursor — the compiled form of a path expression (built by
// internal/xpath, which lives above this package) — and fully evaluates
// only the subtrees the cursor collects. Subtrees the cursor proves
// unreachable from the requested path are never bound, their queries
// never run, and their nodes never materialize.
//
// The cursor protocol is defined here rather than in internal/xpath so
// the evaluator's internals (scopes, attribute binding, sibling order)
// stay private to this package: xpath implements the interface, aig
// drives it.

// FragAction is a cursor's verdict on one child instance.
type FragAction int

const (
	// FragSkip: the instance cannot contribute to the fragment; do not
	// evaluate it.
	FragSkip FragAction = iota
	// FragDescend: the instance is not itself a match, but matches may
	// exist below it; continue partial evaluation with Decision.Cursor.
	FragDescend
	// FragCollect: the instance is a match. Evaluate it fully and emit
	// the whole subtree (outermost-only: nothing below it is searched).
	FragCollect
	// FragVerify: the cursor cannot decide statically (a predicate is
	// not pushdownable). Evaluate the subtree fully and let
	// Decision.Verify find the matches post hoc.
	FragVerify
)

// FragDecision is the cursor's answer for one child instance.
type FragDecision struct {
	Action FragAction
	// Cursor continues the walk over the instance's children when
	// Action is FragDescend.
	Cursor FragCursor
	// Verify maps the fully evaluated instance subtree to the matches
	// within it. It is set for FragVerify (judge the node itself, then
	// its subtree) and for FragDescend (judge only the subtree — used
	// when the evaluator had to materialize the instance anyway for a
	// sibling's synthesized attribute). It must be called exactly once,
	// before the next sibling's Child call, so positional counters
	// shared with the cursor stay in document order.
	Verify func(*xmltree.Node) []*xmltree.Node
}

// FragCursor guides partial evaluation through one production
// instance's children. The evaluator calls Child exactly once per child
// instance it evaluates, in document order (the cursor keeps positional
// predicate counters keyed to that order), passing the child's bound
// inherited attribute. NeedChild is the pre-binding filter: when it
// reports false for a child type, no instance of that type can affect
// the fragment (no name test matches it and no remaining step can match
// inside its derivation subtree), and the evaluator skips binding and
// Child calls for it entirely.
type FragCursor interface {
	NeedChild(childType string) bool
	Child(childType string, inh *AttrValue) FragDecision
}

// EvalPartial evaluates the fragment the cursor describes: emit is
// called once per matched subtree, in document order, as soon as the
// subtree is produced — the serving layer streams each one out before
// the next is evaluated. doc is the document-level cursor; its single
// "child" is the root element.
//
// The grammar must be guard-free (fragment grammars are compiled
// without constraints): a guarded grammar could abort on subtrees a
// fragment request never evaluates, making the fragment's success
// dependent on what was skipped.
func (a *AIG) EvalPartial(env *Env, rootInh *AttrValue, doc FragCursor, emit func(*xmltree.Node) error) error {
	for elem, r := range a.Rules {
		if r != nil && len(r.Guards) > 0 {
			return fmt.Errorf("aig: partial evaluation needs a guard-free grammar, but %s has %d guard(s)", elem, len(r.Guards))
		}
	}
	if rootInh == nil {
		rootInh = NewAttrValue(a.Inh[a.DTD.Root])
	}
	root := a.DTD.Root
	if !doc.NeedChild(root) {
		return nil
	}
	return a.partialChild(env, root, rootInh, 0, doc, emit, nil, -1)
}

// partialChild consults the cursor for one child instance and acts on
// the decision. built is the instance's subtree when the evaluator
// already materialized it (for a sibling's synthesized attribute);
// otherwise the instance is evaluated only as far as the decision
// requires. occ disambiguates nothing semantically — it is only for
// error messages.
func (a *AIG) partialChild(env *Env, elem string, inh *AttrValue, depth int, cur FragCursor, emit func(*xmltree.Node) error, built *xmltree.Node, occ int) error {
	d := cur.Child(elem, inh)
	switch d.Action {
	case FragSkip:
		return nil
	case FragCollect:
		node := built
		if node == nil {
			var err error
			node, _, err = a.evalNode(env, elem, inh, depth)
			if err != nil {
				return err
			}
		}
		return emit(node)
	case FragVerify:
		node := built
		if node == nil {
			var err error
			node, _, err = a.evalNode(env, elem, inh, depth)
			if err != nil {
				return err
			}
		}
		for _, m := range d.Verify(node) {
			if err := emit(m); err != nil {
				return err
			}
		}
		return nil
	case FragDescend:
		if built != nil {
			// Already materialized: post-hoc filtering over the built
			// subtree is exact and cheaper than re-walking the grammar.
			for _, m := range d.Verify(built) {
				if err := emit(m); err != nil {
					return err
				}
			}
			return nil
		}
		return a.partialNode(env, elem, inh, depth, d.Cursor, emit)
	default:
		return fmt.Errorf("aig: fragment cursor returned unknown action %d for %s (occurrence %d)", d.Action, elem, occ)
	}
}

// partialNode continues partial evaluation below an instance the cursor
// decided to descend into.
func (a *AIG) partialNode(env *Env, elem string, inh *AttrValue, depth int, cur FragCursor, emit func(*xmltree.Node) error) error {
	if depth > env.maxDepth() {
		return fmt.Errorf("aig: recursion exceeded depth %d at element %s (cyclic source data?)", env.maxDepth(), elem)
	}
	p, ok := a.DTD.Production(elem)
	if !ok {
		return fmt.Errorf("aig: element type %q has no production", elem)
	}
	r := a.Rules[elem]
	switch p.Kind {
	case dtd.ProdText, dtd.ProdEmpty:
		// No element children: nothing below can match.
		return nil
	case dtd.ProdSeq:
		return a.partialSeq(env, elem, p, r, inh, depth, cur, emit)
	case dtd.ProdStar:
		return a.partialStar(env, elem, p, r, inh, depth, cur, emit)
	case dtd.ProdChoice:
		return a.partialChoice(env, elem, p, r, inh, depth, cur, emit)
	default:
		return fmt.Errorf("aig: bad production kind for %s", elem)
	}
}

// synRefs lists the element types whose synthesized attribute an
// inherited-attribute rule reads (through copies or query parameters).
func synRefs(ir *InhRule) []string {
	if ir == nil {
		return nil
	}
	var out []string
	for _, c := range ir.Copies {
		if c.Src.Side == SynSide {
			out = append(out, c.Src.Elem)
		}
	}
	for _, src := range ir.QueryParams {
		if src.Side == SynSide {
			out = append(out, src.Elem)
		}
	}
	return out
}

// partialSeq is evalSeq without materializing the parent: children the
// cursor needs are bound (and, when a sibling's inherited attribute
// reads their Syn, fully evaluated) in dependency order, then the
// cursor is consulted once per instance in document order so positional
// predicates count exactly as a full render would.
func (a *AIG) partialSeq(env *Env, elem string, p dtd.Production, r *Rule, inh *AttrValue, depth int, cur FragCursor, emit func(*xmltree.Node) error) error {
	order, err := a.SiblingOrder(elem)
	if err != nil {
		return err
	}
	occurrences := make(map[string]int)
	for _, c := range p.Children {
		occurrences[c]++
	}

	// need: children the cursor wants to see (they match a name test or
	// a remaining step can match inside them). full: children that must
	// be completely evaluated because a needed child's inherited
	// attribute reads their synthesized attribute — closed transitively
	// over the Inh rules' Syn references.
	need := make(map[string]bool)
	for t := range occurrences {
		if cur.NeedChild(t) {
			need[t] = true
		}
	}
	full := make(map[string]bool)
	for changed := true; changed; {
		changed = false
		for t := range occurrences {
			if !need[t] && !full[t] {
				continue
			}
			var ir *InhRule
			if r != nil {
				ir = r.Inh[t]
			}
			for _, dep := range synRefs(ir) {
				if occurrences[dep] > 0 && !full[dep] {
					full[dep] = true
					changed = true
				}
			}
		}
	}

	// Pass 1 (dependency order): bind inherited attributes; fully
	// evaluate the instances whose Syn a sibling needs.
	sc := &scope{inhElem: elem, inh: inh, syn: make(map[string]*AttrValue), all: make(map[string][]*AttrValue)}
	inhs := make(map[string][]*AttrValue)
	builtNodes := make(map[string][]*xmltree.Node)
	for _, childType := range order {
		if !need[childType] && !full[childType] {
			continue
		}
		var ir *InhRule
		if r != nil {
			ir = r.Inh[childType]
		}
		for i := 0; i < occurrences[childType]; i++ {
			childInh := NewAttrValue(a.Inh[childType])
			if ir != nil {
				if err := a.evalInhSingle(env, ir, childType, childInh, sc); err != nil {
					return err
				}
			}
			inhs[childType] = append(inhs[childType], childInh)
			if full[childType] {
				childNode, childSyn, err := a.evalNode(env, childType, childInh, depth+1)
				if err != nil {
					return err
				}
				builtNodes[childType] = append(builtNodes[childType], childNode)
				if _, first := sc.syn[childType]; !first {
					sc.syn[childType] = childSyn
				}
				sc.all[childType] = append(sc.all[childType], childSyn)
			}
		}
	}

	// Pass 2 (document order): one cursor consultation per instance.
	consumed := make(map[string]int)
	for _, childType := range p.Children {
		i := consumed[childType]
		consumed[childType]++
		if !need[childType] {
			continue
		}
		var built *xmltree.Node
		if full[childType] {
			built = builtNodes[childType][i]
		}
		if err := a.partialChild(env, childType, inhs[childType][i], depth+1, cur, emit, built, i); err != nil {
			return err
		}
	}
	return nil
}

// partialStar is evalStar without materializing the parent — and, when
// the cursor does not need the star child at all, without even running
// the iteration query. Skipped rows are never bound or evaluated: this
// is where fragment evaluation stops scaling with document size.
func (a *AIG) partialStar(env *Env, elem string, p dtd.Production, r *Rule, inh *AttrValue, depth int, cur FragCursor, emit func(*xmltree.Node) error) error {
	child := p.Children[0]
	if r == nil || r.Inh[child] == nil {
		return fmt.Errorf("aig: star production of %s has no rule for %s", elem, child)
	}
	if !cur.NeedChild(child) {
		return nil
	}
	ir := r.Inh[child]
	sc := &scope{inhElem: elem, inh: inh}
	rows, schema, err := a.starRows(env, ir, sc)
	if err != nil {
		return err
	}
	childScalars := a.Inh[child].ScalarSchema().Names()
	for i, row := range rows {
		childInh := NewAttrValue(a.Inh[child])
		if err := childInh.BindScalarsFromRow(childScalars, schema, row); err != nil {
			return fmt.Errorf("aig: %s children of %s: %v", child, elem, err)
		}
		if ir.IsQuery() {
			for _, c := range ir.Copies {
				v, err := sc.scalar(c.Src)
				if err != nil {
					return err
				}
				if err := childInh.SetScalar(c.TargetMember, v); err != nil {
					return err
				}
			}
		}
		if err := a.partialChild(env, child, childInh, depth+1, cur, emit, nil, i); err != nil {
			return err
		}
	}
	return nil
}

// partialChoice runs the condition query (the branch taken determines
// the document's shape, so it always runs), then treats the selected
// branch child like any other instance.
func (a *AIG) partialChoice(env *Env, elem string, p dtd.Production, r *Rule, inh *AttrValue, depth int, cur FragCursor, emit func(*xmltree.Node) error) error {
	if r == nil || r.Cond == nil {
		return fmt.Errorf("aig: choice production of %s has no condition query", elem)
	}
	sc := &scope{inhElem: elem, inh: inh}
	out, err := a.runQuery(env, r.Cond, r.CondParams, sc, nil)
	if err != nil {
		return err
	}
	if out.Len() == 0 || out.Row(0)[0].Kind() != relstore.KindInt {
		return fmt.Errorf("aig: condition query of %s must return one integer, got %s", elem, out)
	}
	i := int(out.Row(0)[0].AsInt())
	if i < 1 || i > len(p.Children) {
		return fmt.Errorf("aig: condition query of %s returned %d, want 1..%d", elem, i, len(p.Children))
	}
	child := p.Children[i-1]
	if !cur.NeedChild(child) {
		return nil
	}
	var branch Branch
	if i-1 < len(r.Branches) {
		branch = r.Branches[i-1]
	}
	childInh := NewAttrValue(a.Inh[child])
	if branch.Inh != nil {
		if err := a.evalInhSingle(env, branch.Inh, child, childInh, sc); err != nil {
			return err
		}
	}
	return a.partialChild(env, child, childInh, depth+1, cur, emit, nil, 0)
}
