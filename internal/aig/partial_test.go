package aig_test

import (
	"testing"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/hospital"
	"github.com/aigrepro/aig/internal/xmltree"
)

// collectCursor drives EvalPartial from the aig side without the xpath
// package: descend everywhere, collect instances of one element type.
type collectCursor struct {
	target string
}

func (c collectCursor) NeedChild(string) bool { return true }

func (c collectCursor) Child(elem string, inh *aig.AttrValue) aig.FragDecision {
	if elem == c.target {
		return aig.FragDecision{Action: aig.FragCollect}
	}
	return aig.FragDecision{
		Action: aig.FragDescend,
		Cursor: c,
		Verify: func(n *xmltree.Node) []*xmltree.Node { return n.Descendants(c.target) },
	}
}

// skipCursor refuses everything at the document level.
type skipCursor struct{}

func (skipCursor) NeedChild(string) bool { return false }
func (skipCursor) Child(string, *aig.AttrValue) aig.FragDecision {
	return aig.FragDecision{Action: aig.FragSkip}
}

func TestEvalPartialCollectRoot(t *testing.T) {
	a := hospital.Sigma0(false)
	env := hospital.EnvFor(hospital.TinyCatalog())
	want, err := a.Eval(env, hospital.RootInh(a, "d1"))
	if err != nil {
		t.Fatal(err)
	}
	var got []*xmltree.Node
	err = a.EvalPartial(hospital.EnvFor(hospital.TinyCatalog()), hospital.RootInh(a, "d1"),
		collectCursor{target: "report"},
		func(n *xmltree.Node) error { got = append(got, n); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !got[0].Equal(want) {
		t.Fatalf("collecting the root produced %d node(s), not the full document", len(got))
	}
}

func TestEvalPartialCollectPatients(t *testing.T) {
	a := hospital.Sigma0(false)
	env := hospital.EnvFor(hospital.TinyCatalog())
	doc, err := a.Eval(env, hospital.RootInh(a, "d1"))
	if err != nil {
		t.Fatal(err)
	}
	want := doc.Descendants("patient")
	var got []*xmltree.Node
	err = a.EvalPartial(hospital.EnvFor(hospital.TinyCatalog()), hospital.RootInh(a, "d1"),
		collectCursor{target: "patient"},
		func(n *xmltree.Node) error { got = append(got, n); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d patients emitted, want %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Errorf("patient %d differs:\n%s\nvs\n%s", i, got[i], want[i])
		}
	}
}

func TestEvalPartialSkipRunsNothing(t *testing.T) {
	a := hospital.Sigma0(false)
	env := hospital.EnvFor(hospital.TinyCatalog())
	env.Counters = &aig.Counters{}
	err := a.EvalPartial(env, hospital.RootInh(a, "d1"), skipCursor{},
		func(*xmltree.Node) error { t.Fatal("emit called"); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if env.Counters.QueriesRun != 0 || env.Counters.NodesCreated != 0 {
		t.Errorf("skip-all still ran %d queries / created %d nodes",
			env.Counters.QueriesRun, env.Counters.NodesCreated)
	}
}
