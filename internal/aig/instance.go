package aig

import (
	"github.com/aigrepro/aig/internal/sqlmini"
)

// This file exports per-instance rule evaluation for use by the mediator,
// which computes synthesized attributes and checks guards "within
// application code" at the mediator (§5.1) while sharing the exact rule
// semantics of the conceptual evaluator.

// InstanceScope supplies the values visible to one production instance:
// the element's own inherited attribute, the (first) synthesized
// attribute per child/sibling type, and all per-child synthesized
// attributes for collect expressions.
type InstanceScope struct {
	Elem string
	Inh  *AttrValue
	Syn  map[string]*AttrValue
	All  map[string][]*AttrValue
}

func (s InstanceScope) toScope() *scope {
	return &scope{inhElem: s.Elem, inh: s.Inh, syn: s.Syn, all: s.All}
}

// EvalSynFor evaluates a synthesized-attribute rule for one instance.
// Queries never occur in Syn rules, so no environment is needed.
func (a *AIG) EvalSynFor(elem string, r *SynRule, is InstanceScope) (*AttrValue, error) {
	return a.evalSynRule(nil, elem, r, is.toScope())
}

// EvalCopiesFor applies a copy-only inherited rule for one instance,
// writing into target. Query rules are the mediator's own set-oriented
// business and are rejected here.
func (a *AIG) EvalCopiesFor(ir *InhRule, target *AttrValue, is InstanceScope) error {
	sc := is.toScope()
	for _, c := range ir.Copies {
		m, ok := target.Decl.Member(c.TargetMember)
		if !ok {
			continue
		}
		if m.Kind == Scalar {
			v, err := sc.scalar(c.Src)
			if err != nil {
				return err
			}
			if err := target.SetScalar(c.TargetMember, v); err != nil {
				return err
			}
			continue
		}
		b, err := sc.binding(c.Src)
		if err != nil {
			return err
		}
		if err := target.SetCollection(c.TargetMember, b.Rows); err != nil {
			return err
		}
	}
	return nil
}

// CheckGuard evaluates one guard against a synthesized attribute value.
func CheckGuard(g Guard, syn *AttrValue) (bool, error) {
	return evalGuard(g, syn)
}

// ResolveBinding resolves a source reference to a query binding within an
// instance scope.
func (is InstanceScope) ResolveBinding(src SourceRef) (sqlmini.Binding, error) {
	return is.toScope().binding(src)
}
