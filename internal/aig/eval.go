package aig

import (
	"fmt"
	"sort"

	"github.com/aigrepro/aig/internal/dtd"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/sqlmini"
	"github.com/aigrepro/aig/internal/xmltree"
)

// Env carries the execution context of an AIG evaluation: how to resolve,
// execute and cost queries over the data sources.
type Env struct {
	Schemas  sqlmini.SchemaProvider
	Data     sqlmini.DataProvider
	Stats    sqlmini.Stats
	PlanOpts sqlmini.PlanOptions

	// MaxDepth bounds tree depth to catch non-terminating recursion over
	// cyclic data (the paper's static termination analysis cannot rule
	// this out for arbitrary SQL). Zero means 256.
	MaxDepth int

	// Counters is populated during evaluation when non-nil.
	Counters *Counters
}

// Counters accumulates evaluation statistics, used by the benchmark
// harness and ablation studies.
type Counters struct {
	QueriesRun   int
	NodesCreated int
	GuardsPassed int
}

func (e *Env) maxDepth() int {
	if e.MaxDepth > 0 {
		return e.MaxDepth
	}
	return 256
}

func (e *Env) countQuery() {
	if e.Counters != nil {
		e.Counters.QueriesRun++
	}
}

func (e *Env) countNode() {
	if e.Counters != nil {
		e.Counters.NodesCreated++
	}
}

// AbortError reports that a guard evaluated to false: the evaluation is
// terminated without success (§3.3).
type AbortError struct {
	Elem  string
	Path  string
	Guard Guard
}

// Error implements error.
func (e *AbortError) Error() string {
	return fmt.Sprintf("aig: constraint %s violated: guard %s failed at %s",
		e.Guard.Origin, e.Guard, e.Path)
}

// Eval runs the conceptual evaluation strategy of §3.2: a depth-first,
// one-sweep derivation directed by the DTD and ordered by the dependency
// relations, evaluating semantic rules with tuple-at-a-time queries. It
// returns the generated document, which conforms to the DTD by
// construction; guard failures return an *AbortError.
//
// rootInh is the attribute of the AIG — the value of Inh(root), e.g. the
// report date.
func (a *AIG) Eval(env *Env, rootInh *AttrValue) (*xmltree.Node, error) {
	if rootInh == nil {
		rootInh = NewAttrValue(a.Inh[a.DTD.Root])
	}
	node, _, err := a.evalNode(env, a.DTD.Root, rootInh, 0)
	if err != nil {
		return nil, err
	}
	return node, nil
}

// scope resolves source references during the evaluation of one
// production instance.
type scope struct {
	inhElem string
	inh     *AttrValue
	syn     map[string]*AttrValue   // element type -> Syn of (first) evaluated instance
	all     map[string][]*AttrValue // element type -> Syn of every instance (star collection)
}

func (s *scope) resolve(src SourceRef) (*AttrValue, error) {
	switch src.Side {
	case InhSide:
		if s.inh == nil || src.Elem != s.inhElem {
			return nil, fmt.Errorf("aig: Inh(%s) is not in scope", src.Elem)
		}
		return s.inh, nil
	default:
		v, ok := s.syn[src.Elem]
		if !ok {
			return nil, fmt.Errorf("aig: Syn(%s) is not in scope (not yet evaluated?)", src.Elem)
		}
		return v, nil
	}
}

func (s *scope) scalar(src SourceRef) (relstore.Value, error) {
	v, err := s.resolve(src)
	if err != nil {
		return relstore.Null, err
	}
	if src.Member == "" {
		return relstore.Null, fmt.Errorf("aig: %s: whole-attribute reference where a scalar is needed", src)
	}
	return v.Scalar(src.Member)
}

func (s *scope) binding(src SourceRef) (sqlmini.Binding, error) {
	v, err := s.resolve(src)
	if err != nil {
		return sqlmini.Binding{}, err
	}
	return v.MemberBinding(src.Member)
}

// evalNode creates and evaluates the subtree for one element instance:
// first its inherited attribute is already given, then its subtree is
// derived, and finally its synthesized attribute is computed and guards
// are checked — the visit discipline of §3.2.
func (a *AIG) evalNode(env *Env, elem string, inh *AttrValue, depth int) (*xmltree.Node, *AttrValue, error) {
	if depth > env.maxDepth() {
		return nil, nil, fmt.Errorf("aig: recursion exceeded depth %d at element %s (cyclic source data?)", env.maxDepth(), elem)
	}
	node := xmltree.NewElement(a.Label(elem))
	env.countNode()
	p, ok := a.DTD.Production(elem)
	if !ok {
		return nil, nil, fmt.Errorf("aig: element type %q has no production", elem)
	}
	r := a.Rules[elem]

	var syn *AttrValue
	var err error
	switch p.Kind {
	case dtd.ProdText:
		syn, err = a.evalText(env, elem, node, r, inh)
	case dtd.ProdEmpty:
		syn, err = a.evalEmpty(env, r, inh)
	case dtd.ProdSeq:
		syn, err = a.evalSeq(env, elem, node, p, r, inh, depth)
	case dtd.ProdStar:
		syn, err = a.evalStar(env, elem, node, p, r, inh, depth)
	case dtd.ProdChoice:
		syn, err = a.evalChoice(env, elem, node, p, r, inh, depth)
	default:
		err = fmt.Errorf("aig: bad production kind for %s", elem)
	}
	if err != nil {
		return nil, nil, err
	}
	if r != nil {
		for _, g := range r.Guards {
			ok, err := evalGuard(g, syn)
			if err != nil {
				return nil, nil, fmt.Errorf("aig: at %s: %v", node.Path(), err)
			}
			if !ok {
				return nil, nil, &AbortError{Elem: elem, Path: node.Path(), Guard: g}
			}
			if env.Counters != nil {
				env.Counters.GuardsPassed++
			}
		}
	}
	return node, syn, nil
}

func (a *AIG) evalText(env *Env, elem string, node *xmltree.Node, r *Rule, inh *AttrValue) (*AttrValue, error) {
	sc := &scope{inhElem: elem, inh: inh}
	text := ""
	if r != nil && r.TextSrc != (SourceRef{}) {
		v, err := sc.scalar(r.TextSrc)
		if err != nil {
			return nil, err
		}
		text = v.Text()
	} else if scalars := inh.ScalarTuple(); len(scalars) == 1 {
		// Default: a text element with a single inherited scalar emits it.
		text = scalars[0].Text()
	}
	node.AppendText(text)
	env.countNode()
	return a.evalSynRule(env, elem, synRuleOf(r), sc)
}

func (a *AIG) evalEmpty(env *Env, r *Rule, inh *AttrValue) (*AttrValue, error) {
	var elem string
	if r != nil {
		elem = r.Elem
	}
	sc := &scope{inhElem: elem, inh: inh}
	return a.evalSynRule(env, elem, synRuleOf(r), sc)
}

func synRuleOf(r *Rule) *SynRule {
	if r == nil {
		return nil
	}
	return r.Syn
}

func (a *AIG) evalSeq(env *Env, elem string, node *xmltree.Node, p dtd.Production, r *Rule, inh *AttrValue, depth int) (*AttrValue, error) {
	order, err := a.SiblingOrder(elem)
	if err != nil {
		return nil, err
	}
	sc := &scope{inhElem: elem, inh: inh, syn: make(map[string]*AttrValue), all: make(map[string][]*AttrValue)}
	// Occurrence counts per type, to create one node per occurrence.
	occurrences := make(map[string]int)
	for _, c := range p.Children {
		occurrences[c]++
	}
	built := make(map[string][]*xmltree.Node)
	for _, childType := range order {
		var ir *InhRule
		if r != nil {
			ir = r.Inh[childType]
		}
		for i := 0; i < occurrences[childType]; i++ {
			childInh := NewAttrValue(a.Inh[childType])
			if ir != nil {
				if err := a.evalInhSingle(env, ir, childType, childInh, sc); err != nil {
					return nil, err
				}
			}
			childNode, childSyn, err := a.evalNode(env, childType, childInh, depth+1)
			if err != nil {
				return nil, err
			}
			built[childType] = append(built[childType], childNode)
			if _, first := sc.syn[childType]; !first {
				sc.syn[childType] = childSyn
			}
			sc.all[childType] = append(sc.all[childType], childSyn)
		}
	}
	// Attach subtrees in document (production) order.
	consumed := make(map[string]int)
	for _, c := range p.Children {
		node.AppendChild(built[c][consumed[c]])
		consumed[c]++
	}
	// Syn(A) = g(Syn(B1..Bn)): Inh is out of scope here.
	synScope := &scope{syn: sc.syn, all: sc.all}
	return a.evalSynRule(env, elem, synRuleOf(r), synScope)
}

func (a *AIG) evalStar(env *Env, elem string, node *xmltree.Node, p dtd.Production, r *Rule, inh *AttrValue, depth int) (*AttrValue, error) {
	child := p.Children[0]
	if r == nil || r.Inh[child] == nil {
		return nil, fmt.Errorf("aig: star production of %s has no rule for %s", elem, child)
	}
	ir := r.Inh[child]
	sc := &scope{inhElem: elem, inh: inh}

	rows, schema, err := a.starRows(env, ir, sc)
	if err != nil {
		return nil, err
	}
	childScalars := a.Inh[child].ScalarSchema().Names()
	all := make([]*AttrValue, 0, len(rows))
	var firstSyn *AttrValue
	for _, row := range rows {
		childInh := NewAttrValue(a.Inh[child])
		if err := childInh.BindScalarsFromRow(childScalars, schema, row); err != nil {
			return nil, fmt.Errorf("aig: %s children of %s: %v", child, elem, err)
		}
		// Copy assignments accompanying a star query fill the members the
		// query does not produce (e.g. Inh(patient).date = Inh(report).date).
		if ir.IsQuery() {
			for _, c := range ir.Copies {
				v, err := sc.scalar(c.Src)
				if err != nil {
					return nil, err
				}
				if err := childInh.SetScalar(c.TargetMember, v); err != nil {
					return nil, err
				}
			}
		}
		childNode, childSyn, err := a.evalNode(env, child, childInh, depth+1)
		if err != nil {
			return nil, err
		}
		node.AppendChild(childNode)
		all = append(all, childSyn)
		if firstSyn == nil {
			firstSyn = childSyn
		}
	}
	synScope := &scope{syn: map[string]*AttrValue{}, all: map[string][]*AttrValue{child: all}}
	if firstSyn != nil {
		synScope.syn[child] = firstSyn
	}
	return a.evalSynRule(env, elem, synRuleOf(r), synScope)
}

// starRows computes the iteration set for a star production: the query
// result, or the rows of a copied collection member. Rows are sorted by
// tuple value (stable, duplicates preserved): SQL makes no order
// guarantee, so the implementation canonicalizes sibling order among star
// children, which also makes the conceptual and mediator evaluators
// produce identical documents.
func (a *AIG) starRows(env *Env, ir *InhRule, sc *scope) ([]relstore.Tuple, relstore.Schema, error) {
	var rows []relstore.Tuple
	var schema relstore.Schema
	if ir.IsQuery() {
		out, err := a.runInhQuery(env, ir, sc)
		if err != nil {
			return nil, nil, err
		}
		rows, schema = out.Rows(), out.Schema()
	} else {
		if len(ir.Copies) != 1 {
			return nil, nil, fmt.Errorf("aig: star rule for %s must have a query or one collection copy", ir.Child)
		}
		b, err := sc.binding(ir.Copies[0].Src)
		if err != nil {
			return nil, nil, err
		}
		rows, schema = b.Rows, b.Schema
	}
	sorted := make([]relstore.Tuple, len(rows))
	copy(sorted, rows)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Compare(sorted[j]) < 0 })
	return sorted, schema, nil
}

func (a *AIG) evalChoice(env *Env, elem string, node *xmltree.Node, p dtd.Production, r *Rule, inh *AttrValue, depth int) (*AttrValue, error) {
	if r == nil || r.Cond == nil {
		return nil, fmt.Errorf("aig: choice production of %s has no condition query", elem)
	}
	sc := &scope{inhElem: elem, inh: inh}
	out, err := a.runQuery(env, r.Cond, r.CondParams, sc, nil)
	if err != nil {
		return nil, err
	}
	if out.Len() == 0 || out.Row(0)[0].Kind() != relstore.KindInt {
		return nil, fmt.Errorf("aig: condition query of %s must return one integer, got %s", elem, out)
	}
	i := int(out.Row(0)[0].AsInt())
	if i < 1 || i > len(p.Children) {
		return nil, fmt.Errorf("aig: condition query of %s returned %d, want 1..%d", elem, i, len(p.Children))
	}
	child := p.Children[i-1]
	var branch Branch
	if i-1 < len(r.Branches) {
		branch = r.Branches[i-1]
	}
	childInh := NewAttrValue(a.Inh[child])
	if branch.Inh != nil {
		if err := a.evalInhSingle(env, branch.Inh, child, childInh, sc); err != nil {
			return nil, err
		}
	}
	childNode, childSyn, err := a.evalNode(env, child, childInh, depth+1)
	if err != nil {
		return nil, err
	}
	node.AppendChild(childNode)
	synScope := &scope{
		syn: map[string]*AttrValue{child: childSyn},
		all: map[string][]*AttrValue{child: {childSyn}},
	}
	return a.evalSynRule(env, elem, branch.Syn, synScope)
}

// evalInhSingle evaluates a non-star inherited-attribute rule into target.
func (a *AIG) evalInhSingle(env *Env, ir *InhRule, child string, target *AttrValue, sc *scope) error {
	if ir.IsQuery() {
		out, err := a.runInhQuery(env, ir, sc)
		if err != nil {
			return err
		}
		if ir.TargetCollection != "" {
			if err := target.SetCollection(ir.TargetCollection, out.Rows()); err != nil {
				return err
			}
		} else if out.Len() > 0 {
			scalars := target.Decl.ScalarSchema().Names()
			if err := target.BindScalarsFromRow(scalars, out.Schema(), out.Row(0)); err != nil {
				return err
			}
		}
		// Fall through: copies fill members the query did not produce.
	}
	for _, c := range ir.Copies {
		m, ok := target.Decl.Member(c.TargetMember)
		if !ok {
			return fmt.Errorf("aig: Inh(%s) has no member %q", child, c.TargetMember)
		}
		if m.Kind == Scalar {
			v, err := sc.scalar(c.Src)
			if err != nil {
				return err
			}
			if err := target.SetScalar(c.TargetMember, v); err != nil {
				return err
			}
			continue
		}
		b, err := sc.binding(c.Src)
		if err != nil {
			return err
		}
		if err := target.SetCollection(c.TargetMember, b.Rows); err != nil {
			return err
		}
	}
	return nil
}

// runInhQuery executes an inherited-attribute query rule: either the
// original (possibly multi-source) query, or the decomposed single-source
// chain, threading each step's output into the next step's $prev
// parameter.
func (a *AIG) runInhQuery(env *Env, ir *InhRule, sc *scope) (*relstore.Table, error) {
	if ir.Query != nil {
		return a.runQuery(env, ir.Query, ir.QueryParams, sc, nil)
	}
	var prev *relstore.Table
	for i, q := range ir.Chain {
		extra := make(sqlmini.Params, 1)
		if prev != nil {
			extra[PrevParam] = sqlmini.TableBinding(prev)
		}
		out, err := a.runQuery(env, q, ir.QueryParams, sc, extra)
		if err != nil {
			return nil, fmt.Errorf("aig: chain step %d for %s: %v", i+1, ir.Child, err)
		}
		prev = out
	}
	if prev == nil {
		return nil, fmt.Errorf("aig: empty query chain for %s", ir.Child)
	}
	return prev, nil
}

// runQuery binds the query's parameters from the scope (and the extra
// pre-bound parameters) and executes it against the sources.
func (a *AIG) runQuery(env *Env, q *sqlmini.Query, paramSrcs map[string]SourceRef, sc *scope, extra sqlmini.Params) (*relstore.Table, error) {
	params := make(sqlmini.Params)
	for _, name := range q.Params() {
		if b, ok := extra[name]; ok {
			params[name] = b
			continue
		}
		src, ok := paramSrcs[name]
		if !ok {
			return nil, fmt.Errorf("aig: query parameter $%s has no source (query: %s)", name, q)
		}
		b, err := sc.binding(src)
		if err != nil {
			return nil, err
		}
		params[name] = b
	}
	env.countQuery()
	return sqlmini.Run("q", q, env.Schemas, env.Data, env.Stats, params, env.PlanOpts)
}

// evalSynRule computes the synthesized attribute of elem from the scope.
func (a *AIG) evalSynRule(env *Env, elem string, r *SynRule, sc *scope) (*AttrValue, error) {
	decl := a.Syn[elem]
	out := NewAttrValue(decl)
	if r == nil {
		return out, nil
	}
	for _, m := range decl.Members {
		expr, ok := r.Exprs[m.Name]
		if !ok {
			continue
		}
		if m.Kind == Scalar {
			se, ok := expr.(ScalarOf)
			if !ok {
				return nil, fmt.Errorf("aig: Syn(%s).%s is scalar but its rule is %s", elem, m.Name, expr)
			}
			v, err := sc.scalar(se.Src)
			if err != nil {
				return nil, err
			}
			if err := out.SetScalar(m.Name, v); err != nil {
				return nil, err
			}
			continue
		}
		rows, err := a.evalSetExpr(expr, sc, len(m.Fields))
		if err != nil {
			return nil, fmt.Errorf("aig: Syn(%s).%s: %v", elem, m.Name, err)
		}
		if err := out.SetCollection(m.Name, rows); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// evalSetExpr evaluates a collection-valued expression to its rows.
func (a *AIG) evalSetExpr(expr SynExpr, sc *scope, arity int) ([]relstore.Tuple, error) {
	switch e := expr.(type) {
	case EmptyOf:
		return nil, nil
	case SingletonOf:
		row := make(relstore.Tuple, len(e.Srcs))
		for i, s := range e.Srcs {
			v, err := sc.scalar(s)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		return []relstore.Tuple{row}, nil
	case CollectionOf:
		b, err := sc.binding(e.Src)
		if err != nil {
			return nil, err
		}
		return b.Rows, nil
	case UnionOf:
		var rows []relstore.Tuple
		for _, t := range e.Terms {
			part, err := a.evalSetExpr(t, sc, arity)
			if err != nil {
				return nil, err
			}
			rows = append(rows, part...)
		}
		return rows, nil
	case CollectChildren:
		var rows []relstore.Tuple
		for _, childSyn := range sc.all[e.Child] {
			m, ok := childSyn.Decl.Member(e.Member)
			if !ok {
				return nil, fmt.Errorf("Syn(%s) has no member %q", e.Child, e.Member)
			}
			if m.Kind == Scalar {
				rows = append(rows, relstore.Tuple{childSyn.Scalars[e.Member]})
				continue
			}
			rows = append(rows, childSyn.Collections[e.Member].Rows()...)
		}
		return rows, nil
	default:
		return nil, fmt.Errorf("set-valued rule has unsupported expression %T", expr)
	}
}

// evalGuard checks one guard against a synthesized attribute value.
func evalGuard(g Guard, syn *AttrValue) (bool, error) {
	switch g.Kind {
	case GuardUnique:
		t, err := syn.Collection(g.Member)
		if err != nil {
			return false, err
		}
		seen := make(map[string]bool, t.Len())
		for _, row := range t.Rows() {
			k := row.Key()
			if seen[k] {
				return false, nil
			}
			seen[k] = true
		}
		return true, nil
	case GuardSubset:
		sub, err := syn.Collection(g.Sub)
		if err != nil {
			return false, err
		}
		super, err := syn.Collection(g.Super)
		if err != nil {
			return false, err
		}
		have := make(map[string]bool, super.Len())
		for _, row := range super.Rows() {
			have[row.Key()] = true
		}
		for _, row := range sub.Rows() {
			if !have[row.Key()] {
				return false, nil
			}
		}
		return true, nil
	default:
		return false, fmt.Errorf("aig: unknown guard kind %d", g.Kind)
	}
}
