package aig_test

import (
	"strings"
	"testing"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/dtd"
	"github.com/aigrepro/aig/internal/hospital"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/sqlmini"
	"github.com/aigrepro/aig/internal/xconstraint"
	"github.com/aigrepro/aig/internal/xmltree"
)

func TestSigma0Validates(t *testing.T) {
	a := hospital.Sigma0(true)
	cat := hospital.TinyCatalog()
	if err := a.Validate(sqlmini.CatalogSchemas{Catalog: cat}); err != nil {
		t.Fatalf("σ0 fails validation: %v", err)
	}
}

func TestSigma0EvalD1(t *testing.T) {
	a := hospital.Sigma0(true)
	cat := hospital.TinyCatalog()
	env := hospital.EnvFor(cat)
	env.Counters = &aig.Counters{}

	doc, err := a.Eval(env, hospital.RootInh(a, "d1"))
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}

	// The output conforms to the DTD...
	if err := dtd.Conforms(a.DTD, doc); err != nil {
		t.Errorf("output violates DTD: %v\n%s", err, doc)
	}
	// ...and satisfies the constraints (checked independently).
	if v := xconstraint.CheckAll(a.Constraints, doc); len(v) != 0 {
		t.Errorf("output violates constraints: %v", v)
	}

	patients := doc.Descendants("patient")
	if len(patients) != 3 {
		t.Fatalf("%d patients, want 3 (alice, bob, carol)\n%s", len(patients), doc)
	}

	var alice *xmltree.Node
	for _, p := range patients {
		if p.Child("pname").StringValue() == "alice" {
			alice = p
		}
	}
	if alice == nil {
		t.Fatal("alice missing")
	}

	// Alice: treatments t1 and t2; t2's procedure nests t4, which nests t5.
	top := alice.Child("treatments").Elements()
	if len(top) != 2 {
		t.Fatalf("alice has %d top-level treatments, want 2\n%s", len(top), alice)
	}
	ids := []string{top[0].Child("trId").StringValue(), top[1].Child("trId").StringValue()}
	if ids[0] != "t1" || ids[1] != "t2" {
		t.Errorf("alice treatment ids = %v (sorted order expected)", ids)
	}
	t2 := top[1]
	nested := t2.Child("procedure").Elements()
	if len(nested) != 1 || nested[0].Child("trId").StringValue() != "t4" {
		t.Fatalf("t2 procedure = %v", nested)
	}
	deep := nested[0].Child("procedure").Elements()
	if len(deep) != 1 || deep[0].Child("trId").StringValue() != "t5" {
		t.Fatalf("t4 procedure = %v", deep)
	}
	if len(deep[0].Child("procedure").Elements()) != 0 {
		t.Error("t5 should have an empty procedure")
	}

	// Alice's bill covers exactly {t1, t2, t4, t5} with billing prices —
	// context-dependent construction driven by the synthesized trIdS.
	items := alice.Child("bill").Elements()
	var got []string
	for _, it := range items {
		got = append(got, it.Child("trId").StringValue()+":"+it.Child("price").StringValue())
	}
	want := "t1:100,t2:250,t4:999,t5:40"
	if strings.Join(got, ",") != want {
		t.Errorf("alice bill = %v, want %s", got, want)
	}

	// Counters moved.
	if env.Counters.QueriesRun == 0 || env.Counters.NodesCreated == 0 {
		t.Error("counters not incremented")
	}
}

func TestSigma0EvalD2(t *testing.T) {
	a := hospital.Sigma0(false)
	cat := hospital.TinyCatalog()
	doc, err := a.Eval(hospital.EnvFor(cat), hospital.RootInh(a, "d2"))
	if err != nil {
		t.Fatal(err)
	}
	patients := doc.Descendants("patient")
	// Only bob visited on d2.
	if len(patients) != 1 || patients[0].Child("pname").StringValue() != "bob" {
		t.Fatalf("d2 patients wrong:\n%s", doc)
	}
	// bob (silver) visited t1 on d2; silver covers t1.
	if got := patients[0].Child("treatments").Elements(); len(got) != 1 || got[0].Child("trId").StringValue() != "t1" {
		t.Errorf("bob treatments wrong:\n%s", patients[0])
	}
}

func TestSigma0EvalEmptyDate(t *testing.T) {
	a := hospital.Sigma0(false)
	cat := hospital.TinyCatalog()
	doc, err := a.Eval(hospital.EnvFor(cat), hospital.RootInh(a, "d999"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Descendants("patient")) != 0 {
		t.Errorf("no-visit date produced patients:\n%s", doc)
	}
	if err := dtd.Conforms(a.DTD, doc); err != nil {
		t.Errorf("empty report violates DTD: %v", err)
	}
}

func TestEvalIsDeterministic(t *testing.T) {
	a := hospital.Sigma0(false)
	cat := hospital.TinyCatalog()
	env := hospital.EnvFor(cat)
	d1, err := a.Eval(env, hospital.RootInh(a, "d1"))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := a.Eval(env, hospital.RootInh(a, "d1"))
	if err != nil {
		t.Fatal(err)
	}
	if !d1.Equal(d2) {
		t.Error("two evaluations differ")
	}
}

func TestRecursionDepthLimit(t *testing.T) {
	a := hospital.Sigma0(false)
	cat := hospital.TinyCatalog()
	// Make the procedure hierarchy cyclic: t5's procedure contains t2,
	// closing a loop t2 -> t4 -> t5 -> t2.
	proc, err := cat.Table("DB4", "procedure")
	if err != nil {
		t.Fatal(err)
	}
	proc.MustInsert(relstore.Tuple{relstore.String("t5"), relstore.String("t2")})

	env := hospital.EnvFor(cat)
	env.MaxDepth = 40
	_, err = a.Eval(env, hospital.RootInh(a, "d1"))
	if err == nil || !strings.Contains(err.Error(), "depth") {
		t.Errorf("cyclic data did not hit the depth limit: %v", err)
	}
}

func TestGuardAbortsEvaluation(t *testing.T) {
	// Attach a unique() guard over a bag that will contain duplicates:
	// collect every item trId under the report (t3 appears for bob and
	// carol), so the guard must fire.
	a := hospital.Sigma0(false)
	a.Syn["item"] = aig.Attr(aig.BagMember("B", "trId:string"))
	a.Rules["item"].Syn = aig.Syn1("B", aig.SingletonOf{Srcs: []aig.SourceRef{aig.SynOf("trId", "val")}})
	a.Syn["bill"] = aig.Attr(aig.BagMember("B", "trId:string"))
	a.Rules["bill"].Syn = aig.Syn1("B", aig.CollectChildren{Child: "item", Member: "B"})
	a.Syn["patient"] = aig.Attr(aig.BagMember("B", "trId:string"))
	a.Rules["patient"].Syn = aig.Syn1("B", aig.CollectionOf{Src: aig.SynOf("bill", "B")})
	a.Syn["report"] = aig.Attr(aig.BagMember("B", "trId:string"))
	a.Rules["report"].Syn = aig.Syn1("B", aig.CollectChildren{Child: "patient", Member: "B"})
	a.Rules["report"].Guards = []aig.Guard{{
		Kind:   aig.GuardUnique,
		Member: "B",
		Origin: xconstraint.MustParse("report(item.trId -> item)"),
	}}
	cat := hospital.TinyCatalog()
	if err := a.Validate(sqlmini.CatalogSchemas{Catalog: cat}); err != nil {
		t.Fatalf("modified AIG invalid: %v", err)
	}
	_, err := a.Eval(hospital.EnvFor(cat), hospital.RootInh(a, "d1"))
	var abort *aig.AbortError
	if err == nil {
		t.Fatal("evaluation succeeded despite duplicate keys at report scope")
	}
	if !errorsAs(err, &abort) {
		t.Fatalf("error is %T (%v), want *AbortError", err, err)
	}
	if abort.Elem != "report" {
		t.Errorf("abort at %q, want report", abort.Elem)
	}
	if !strings.Contains(abort.Error(), "unique") {
		t.Errorf("abort message: %v", abort)
	}
}

// errorsAs avoids importing errors just for one call.
func errorsAs(err error, target **aig.AbortError) bool {
	for err != nil {
		if ae, ok := err.(*aig.AbortError); ok {
			*target = ae
			return true
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestChoiceProduction(t *testing.T) {
	// A small grammar with a choice: result -> cheap + pricey, selected by
	// a condition query over the data.
	d := dtd.MustParse(`
		<!ELEMENT result (cheap | pricey)>
		<!ELEMENT cheap (#PCDATA)>
		<!ELEMENT pricey (#PCDATA)>
	`)
	cat := relstore.NewCatalog()
	db := relstore.NewDatabase("DB")
	bands := db.CreateTable("bands", relstore.MustSchema("trId:string", "band:int"))
	bands.MustInsert(relstore.Tuple{relstore.String("t1"), relstore.Int(1)})
	bands.MustInsert(relstore.Tuple{relstore.String("t2"), relstore.Int(2)})
	cat.Add(db)

	a := aig.New(d)
	a.Inh["result"] = aig.Attr(aig.StringMember("trId"))
	a.Inh["cheap"] = aig.Attr(aig.StringMember("val"))
	a.Inh["pricey"] = aig.Attr(aig.StringMember("val"))
	a.Syn["result"] = aig.Attr(aig.StringMember("chosen"))
	a.Syn["cheap"] = aig.Attr(aig.StringMember("v"))
	a.Syn["pricey"] = aig.Attr(aig.StringMember("v"))

	a.Rules["cheap"] = &aig.Rule{Elem: "cheap", TextSrc: aig.InhOf("cheap", "val"),
		Syn: aig.Syn1("v", aig.ScalarOf{Src: aig.InhOf("cheap", "val")})}
	a.Rules["pricey"] = &aig.Rule{Elem: "pricey", TextSrc: aig.InhOf("pricey", "val"),
		Syn: aig.Syn1("v", aig.ScalarOf{Src: aig.InhOf("pricey", "val")})}
	a.Rules["result"] = &aig.Rule{
		Elem:       "result",
		Cond:       sqlmini.MustParse(`select band from DB:bands where trId = $v.trId`),
		CondParams: aig.ParamMap("v", aig.InhOf("result", "")),
		Branches: []aig.Branch{
			{
				Inh: &aig.InhRule{Child: "cheap", Copies: []aig.CopyAssign{aig.Copy("val", aig.InhOf("result", "trId"))}},
				Syn: aig.Syn1("chosen", aig.ScalarOf{Src: aig.SynOf("cheap", "v")}),
			},
			{
				Inh: &aig.InhRule{Child: "pricey", Copies: []aig.CopyAssign{aig.Copy("val", aig.InhOf("result", "trId"))}},
				Syn: aig.Syn1("chosen", aig.ScalarOf{Src: aig.SynOf("pricey", "v")}),
			},
		},
	}
	if err := a.Validate(sqlmini.CatalogSchemas{Catalog: cat}); err != nil {
		t.Fatalf("choice AIG invalid: %v", err)
	}

	env := &aig.Env{
		Schemas: sqlmini.CatalogSchemas{Catalog: cat},
		Data:    sqlmini.CatalogData{Catalog: cat},
		Stats:   sqlmini.CatalogStats{Catalog: cat},
	}
	inh := aig.NewAttrValue(a.Inh["result"])
	if err := inh.SetScalar("trId", relstore.String("t1")); err != nil {
		t.Fatal(err)
	}
	doc, err := a.Eval(env, inh)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Child("cheap") == nil || doc.Child("pricey") != nil {
		t.Errorf("t1 should pick cheap:\n%s", doc)
	}
	if err := dtd.Conforms(d, doc); err != nil {
		t.Error(err)
	}

	if err := inh.SetScalar("trId", relstore.String("t2")); err != nil {
		t.Fatal(err)
	}
	doc, err = a.Eval(env, inh)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Child("pricey") == nil {
		t.Errorf("t2 should pick pricey:\n%s", doc)
	}

	// Out-of-range condition value is an error.
	if err := inh.SetScalar("trId", relstore.String("t9")); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Eval(env, inh); err == nil {
		t.Error("missing band row should make the condition query fail")
	}
}

func TestValidateCatchesBadAIGs(t *testing.T) {
	cat := hospital.TinyCatalog()
	schemas := sqlmini.CatalogSchemas{Catalog: cat}

	// Cyclic dependency: treatments depends on bill and bill on treatments.
	a := hospital.Sigma0(false)
	a.Rules["patient"].Inh["treatments"].Copies = append(
		a.Rules["patient"].Inh["treatments"].Copies,
		aig.Copy("date", aig.SynOf("bill", "date")))
	a.Syn["bill"] = aig.Attr(aig.StringMember("date"))
	if err := a.Validate(schemas); err == nil || !strings.Contains(err.Error(), "cyclic") {
		t.Errorf("cyclic dependency not caught: %v", err)
	}

	// Unknown member in a copy.
	a = hospital.Sigma0(false)
	a.Rules["patient"].Inh["SSN"].Copies[0].Src = aig.InhOf("patient", "nonexistent")
	if err := a.Validate(schemas); err == nil {
		t.Error("unknown member not caught")
	}

	// Query referencing an unknown table.
	a = hospital.Sigma0(false)
	a.Rules["bill"].Inh["item"].Query = sqlmini.MustParse(`select trId, price from DB3:nope where trId in $V`)
	if err := a.Validate(schemas); err == nil {
		t.Error("unknown table not caught")
	}

	// Query parameter without a source.
	a = hospital.Sigma0(false)
	a.Rules["bill"].Inh["item"].QueryParams = nil
	if err := a.Validate(schemas); err == nil {
		t.Error("unbound parameter not caught")
	}

	// Kind mismatch in a copy (string into int).
	a = hospital.Sigma0(false)
	a.Rules["item"].Inh["price"].Copies[0].Src = aig.InhOf("item", "trId")
	if err := a.Validate(schemas); err == nil {
		t.Error("kind mismatch not caught")
	}

	// Syn rule for an undeclared member.
	a = hospital.Sigma0(false)
	a.Rules["treatments"].Syn = aig.Syn1("nope", aig.EmptyOf{})
	if err := a.Validate(schemas); err == nil {
		t.Error("undeclared Syn member not caught")
	}

	// Scalar member computed by a set expression.
	a = hospital.Sigma0(false)
	a.Rules["trId"].Syn = aig.Syn1("val", aig.EmptyOf{})
	if err := a.Validate(schemas); err == nil {
		t.Error("set expression for scalar member not caught")
	}

	// Syn referencing Inh in a sequence production (§3.1 forbids it).
	a = hospital.Sigma0(false)
	a.Syn["patient"] = aig.Attr(aig.StringMember("d"))
	a.Rules["patient"].Syn = aig.Syn1("d", aig.ScalarOf{Src: aig.InhOf("patient", "date")})
	if err := a.Validate(schemas); err == nil {
		t.Error("Inh reference in sequence Syn rule not caught")
	}

	// Star production without a rule.
	a = hospital.Sigma0(false)
	delete(a.Rules, "report")
	if err := a.Validate(schemas); err == nil {
		t.Error("ruleless star production not caught")
	}

	// Guard on a missing member.
	a = hospital.Sigma0(false)
	a.Rules["patient"].Guards = []aig.Guard{{Kind: aig.GuardUnique, Member: "ghost"}}
	if err := a.Validate(schemas); err == nil {
		t.Error("guard on missing member not caught")
	}
}

func TestSiblingOrderRespectsDependencies(t *testing.T) {
	a := hospital.Sigma0(false)
	order, err := a.SiblingOrder("patient")
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[string]int, len(order))
	for i, e := range order {
		pos[e] = i
	}
	if pos["bill"] < pos["treatments"] {
		t.Errorf("bill must evaluate after treatments: %v", order)
	}
	if len(order) != 4 {
		t.Errorf("order = %v", order)
	}
	if _, err := a.SiblingOrder("report"); err == nil {
		t.Error("SiblingOrder on a star production should error")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := hospital.Sigma0(true)
	c := a.Clone()
	c.Rules["bill"].Inh["item"].Query.From[0].Source = "DB9"
	c.Inh["report"] = aig.Attr(aig.StringMember("other"))
	c.DTD.DefineText("extra")
	if a.Rules["bill"].Inh["item"].Query.From[0].Source != "DB3" {
		t.Error("Clone shares query ASTs")
	}
	if a.Inh["report"].Members[0].Name != "date" {
		t.Error("Clone shares attribute maps")
	}
	if _, ok := a.DTD.Production("extra"); ok {
		t.Error("Clone shares the DTD")
	}
	cat := hospital.TinyCatalog()
	if err := a.Validate(sqlmini.CatalogSchemas{Catalog: cat}); err != nil {
		t.Errorf("original invalid after clone mutation: %v", err)
	}
}

func TestQueriesEnumeration(t *testing.T) {
	a := hospital.Sigma0(false)
	qs := a.Queries()
	// Q1 (report), Q2 (treatments), Q3 (procedure), Q4 (bill).
	if len(qs) != 4 {
		t.Fatalf("Queries() returned %d, want 4", len(qs))
	}
	multi := 0
	for _, q := range qs {
		if len(q.Query.Sources()) > 1 {
			multi++
		}
	}
	if multi != 1 {
		t.Errorf("%d multi-source queries, want 1 (Q2)", multi)
	}
}

func TestAttrValueOps(t *testing.T) {
	decl := aig.Attr(aig.StringMember("a"), aig.ScalarMember("n", relstore.KindInt),
		aig.SetMember("s", "x:string"), aig.BagMember("b", "y:int"))
	v := aig.NewAttrValue(decl)
	if err := v.SetScalar("a", relstore.String("hello")); err != nil {
		t.Fatal(err)
	}
	if err := v.SetScalar("missing", relstore.Null); err == nil {
		t.Error("SetScalar on missing member succeeded")
	}
	if err := v.SetCollection("s", []relstore.Tuple{{relstore.String("p")}, {relstore.String("p")}}); err != nil {
		t.Fatal(err)
	}
	s, err := v.Collection("s")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Errorf("set member kept duplicates: %d rows", s.Len())
	}
	if err := v.SetCollection("b", []relstore.Tuple{{relstore.Int(1)}, {relstore.Int(1)}}); err != nil {
		t.Fatal(err)
	}
	b, _ := v.Collection("b")
	if b.Len() != 2 {
		t.Errorf("bag member dropped duplicates: %d rows", b.Len())
	}
	if err := v.SetCollection("a", nil); err == nil {
		t.Error("SetCollection on scalar succeeded")
	}
	// Binding of scalars: (a, n) in declaration order.
	bind := v.ScalarBinding()
	if len(bind.Schema) != 2 || bind.Schema[0].Name != "a" || len(bind.Rows) != 1 {
		t.Errorf("ScalarBinding = %+v", bind)
	}
	cl := v.Clone()
	if !cl.Equal(v) {
		t.Error("clone not equal")
	}
	if err := cl.SetScalar("a", relstore.String("bye")); err != nil {
		t.Fatal(err)
	}
	if cl.Equal(v) {
		t.Error("mutated clone still equal")
	}
	if !strings.Contains(v.String(), "a='hello'") {
		t.Errorf("String() = %s", v)
	}
}
