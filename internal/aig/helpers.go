package aig

import "github.com/aigrepro/aig/internal/relstore"

// This file holds terse constructors for building AIGs programmatically;
// the aigspec package builds the same structures from text.

// InhOf references a member of an inherited attribute; pass "" for the
// whole scalar tuple.
func InhOf(elem, member string) SourceRef {
	return SourceRef{Side: InhSide, Elem: elem, Member: member}
}

// SynOf references a member of a synthesized attribute.
func SynOf(elem, member string) SourceRef {
	return SourceRef{Side: SynSide, Elem: elem, Member: member}
}

// ScalarMember declares a scalar member.
func ScalarMember(name string, kind relstore.Kind) MemberDecl {
	return MemberDecl{Name: name, Kind: Scalar, ValueKind: kind}
}

// StringMember declares a string-valued scalar member, the common case.
func StringMember(name string) MemberDecl {
	return ScalarMember(name, relstore.KindString)
}

// SetMember declares a set member with "name:kind" field specs.
func SetMember(name string, fields ...string) MemberDecl {
	return MemberDecl{Name: name, Kind: Set, Fields: relstore.MustSchema(fields...)}
}

// BagMember declares a bag member with "name:kind" field specs.
func BagMember(name string, fields ...string) MemberDecl {
	return MemberDecl{Name: name, Kind: Bag, Fields: relstore.MustSchema(fields...)}
}

// Attr assembles an attribute declaration.
func Attr(members ...MemberDecl) AttrDecl { return AttrDecl{Members: members} }

// Copy builds a member-to-member copy assignment.
func Copy(target string, src SourceRef) CopyAssign {
	return CopyAssign{TargetMember: target, Src: src}
}

// CopyAll builds copy assignments for same-named scalar members from the
// given source attribute (e.g. Inh(treatments) = Inh(patient)(date, SSN,
// policy)).
func CopyAll(side Side, elem string, members ...string) []CopyAssign {
	out := make([]CopyAssign, len(members))
	for i, m := range members {
		out[i] = CopyAssign{TargetMember: m, Src: SourceRef{Side: side, Elem: elem, Member: m}}
	}
	return out
}

// Params builds a query-parameter source map from alternating name/ref
// pairs.
func ParamMap(pairs ...any) map[string]SourceRef {
	out := make(map[string]SourceRef, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		out[pairs[i].(string)] = pairs[i+1].(SourceRef)
	}
	return out
}

// Syn1 builds a synthesized rule with a single member expression.
func Syn1(member string, expr SynExpr) *SynRule {
	return &SynRule{Exprs: map[string]SynExpr{member: expr}}
}

// SynExprs builds a synthesized rule from alternating member/expr pairs.
func SynExprs(pairs ...any) *SynRule {
	r := &SynRule{Exprs: make(map[string]SynExpr, len(pairs)/2)}
	for i := 0; i+1 < len(pairs); i += 2 {
		r.Exprs[pairs[i].(string)] = pairs[i+1].(SynExpr)
	}
	return r
}
