// Package srcpos provides source positions (line and column) and
// positioned errors for the textual languages of the repository: the
// aigspec specification language, DTD declarations, and XML constraint
// syntax. It is a leaf package so that both the parsers and the AST
// packages (aig, dtd, xconstraint) can attach positions without import
// cycles.
//
// Positions are 1-based; the zero Pos means "unknown". Columns count
// bytes, which coincides with characters for the ASCII-only languages
// parsed here.
package srcpos

import (
	"errors"
	"fmt"
)

// Pos is a position in a source file: 1-based line and column. The zero
// value means the position is unknown.
type Pos struct {
	Line int
	Col  int
}

// At builds a position.
func At(line, col int) Pos { return Pos{Line: line, Col: col} }

// IsValid reports whether the position carries a real location.
func (p Pos) IsValid() bool { return p.Line > 0 }

// String renders "line:col", "line" when the column is unknown, or "-"
// for the zero position.
func (p Pos) String() string {
	switch {
	case p.Line <= 0:
		return "-"
	case p.Col <= 0:
		return fmt.Sprintf("%d", p.Line)
	default:
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
}

// Shift returns the position moved down by lines (columns are preserved).
// Shifting an unknown position yields an unknown position.
func (p Pos) Shift(lines int) Pos {
	if !p.IsValid() {
		return p
	}
	p.Line += lines
	return p
}

// Before reports whether p sorts before q (unknown positions sort first).
func (p Pos) Before(q Pos) bool {
	if p.Line != q.Line {
		return p.Line < q.Line
	}
	return p.Col < q.Col
}

// Error is an error carrying a source position. Parsers return *Error so
// that tooling (aiglint, editors) can surface exact locations; Error()
// renders the conventional "line:col: message" form.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string {
	if !e.Pos.IsValid() {
		return e.Msg
	}
	return e.Pos.String() + ": " + e.Msg
}

// Errorf builds a positioned error.
func Errorf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// PosOf extracts the position from an error produced by Errorf (directly
// or wrapped); the zero Pos when the error carries none.
func PosOf(err error) Pos {
	var pe *Error
	if errors.As(err, &pe) {
		return pe.Pos
	}
	return Pos{}
}

// ShiftErr moves a positioned error down by lines, so that section
// parsers reporting positions relative to their section can be composed
// into whole-file positions. Non-positioned errors pass through
// unchanged.
func ShiftErr(err error, lines int) error {
	var pe *Error
	if err == nil || !errors.As(err, &pe) {
		return err
	}
	return &Error{Pos: pe.Pos.Shift(lines), Msg: pe.Msg}
}

// LineCol converts a byte offset into input text to a 1-based line and
// column. Each call scans from the start of input; parsers converting
// many offsets of the same input should use a Tracker instead.
func LineCol(input string, offset int) Pos {
	if offset < 0 {
		offset = 0
	}
	if offset > len(input) {
		offset = len(input)
	}
	line, col := 1, 1
	for i := 0; i < offset; i++ {
		if input[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return Pos{Line: line, Col: col}
}

// Tracker converts byte offsets of one input to positions, scanning the
// input at most once overall for non-decreasing offsets — the pattern of
// a parser recording positions as it advances. (Repeatedly calling
// LineCol from a parser is quadratic in the input size.) Offsets before
// the last one fall back to a fresh scan, so Tracker.At agrees with
// LineCol on every input.
type Tracker struct {
	input string
	off   int
	pos   Pos
}

// NewTracker builds a tracker over input, starting at offset 0 = 1:1.
func NewTracker(input string) *Tracker {
	return &Tracker{input: input, pos: At(1, 1)}
}

// At converts a byte offset to its position.
func (t *Tracker) At(offset int) Pos {
	if offset > len(t.input) {
		offset = len(t.input)
	}
	if offset < t.off {
		return LineCol(t.input, offset)
	}
	for ; t.off < offset; t.off++ {
		if t.input[t.off] == '\n' {
			t.pos.Line++
			t.pos.Col = 1
		} else {
			t.pos.Col++
		}
	}
	return t.pos
}
