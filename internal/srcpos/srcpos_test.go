package srcpos

import (
	"errors"
	"fmt"
	"testing"
)

func TestPosString(t *testing.T) {
	cases := []struct {
		pos  Pos
		want string
	}{
		{Pos{}, "-"},
		{Pos{Line: 3}, "3"},
		{Pos{Line: 3, Col: 7}, "3:7"},
	}
	for _, c := range cases {
		if got := c.pos.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.pos, got, c.want)
		}
	}
	if (Pos{}).IsValid() {
		t.Error("zero Pos is valid")
	}
	if !(Pos{Line: 1, Col: 1}).IsValid() {
		t.Error("1:1 is invalid")
	}
}

func TestErrorRendering(t *testing.T) {
	err := Errorf(At(4, 2), "bad %s", "token")
	if got, want := err.Error(), "4:2: bad token"; got != want {
		t.Errorf("Error() = %q, want %q", got, want)
	}
	if got := PosOf(err); got != At(4, 2) {
		t.Errorf("PosOf = %v", got)
	}
	wrapped := fmt.Errorf("outer: %w", err)
	if got := PosOf(wrapped); got != At(4, 2) {
		t.Errorf("PosOf(wrapped) = %v", got)
	}
	if got := PosOf(errors.New("plain")); got.IsValid() {
		t.Errorf("PosOf(plain) = %v, want zero", got)
	}
}

func TestShiftErr(t *testing.T) {
	err := Errorf(At(2, 5), "oops")
	shifted := ShiftErr(err, 10)
	if got := PosOf(shifted); got != At(12, 5) {
		t.Errorf("shifted pos = %v, want 12:5", got)
	}
	plain := errors.New("plain")
	if got := ShiftErr(plain, 10); got != plain {
		t.Errorf("ShiftErr changed a plain error: %v", got)
	}
	if got := ShiftErr(nil, 3); got != nil {
		t.Errorf("ShiftErr(nil) = %v", got)
	}
}

func TestLineCol(t *testing.T) {
	input := "ab\ncd\n\nef"
	cases := []struct {
		off  int
		want Pos
	}{
		{0, At(1, 1)},
		{1, At(1, 2)},
		{3, At(2, 1)},
		{4, At(2, 2)},
		{6, At(3, 1)},
		{7, At(4, 1)},
		{99, At(4, 3)}, // clamped to end
	}
	for _, c := range cases {
		if got := LineCol(input, c.off); got != c.want {
			t.Errorf("LineCol(%d) = %v, want %v", c.off, got, c.want)
		}
	}
}

func TestTrackerAgreesWithLineCol(t *testing.T) {
	input := "ab\ncd\n\nef"
	tr := NewTracker(input)
	// Forward (the amortized-O(1) path), including repeats and clamping.
	for _, off := range []int{0, 1, 1, 3, 4, 6, 7, 99} {
		if got, want := tr.At(off), LineCol(input, off); got != want {
			t.Errorf("Tracker.At(%d) = %v, want %v", off, got, want)
		}
	}
	// Backward offsets fall back to a scan but stay correct.
	if got, want := tr.At(3), LineCol(input, 3); got != want {
		t.Errorf("backward Tracker.At(3) = %v, want %v", got, want)
	}
	// And the tracker still answers forward queries afterwards.
	if got, want := tr.At(7), LineCol(input, 7); got != want {
		t.Errorf("Tracker.At(7) after rewind = %v, want %v", got, want)
	}
}

func TestBefore(t *testing.T) {
	if !At(1, 9).Before(At(2, 1)) {
		t.Error("1:9 should sort before 2:1")
	}
	if !At(2, 1).Before(At(2, 4)) {
		t.Error("2:1 should sort before 2:4")
	}
	if At(2, 4).Before(At(2, 4)) {
		t.Error("equal positions are not Before each other")
	}
}
