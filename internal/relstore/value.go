// Package relstore implements the in-memory relational storage engine that
// underlies every data source in the AIG middleware. It provides typed
// values, schemas, tables with hash indexes, databases, catalogs, basic
// statistics used by the cost model, and CSV import/export.
//
// The engine is deliberately small but complete: the sqlmini package plans
// and executes a SQL subset against it, and the remote package serves it
// over TCP so that it can play the role of the distributed relational
// sources (DB1..DB4) in the paper's experiments.
package relstore

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The supported value kinds. Null is the absence of a value; it appears in
// outer-union and outer-join results produced by query merging.
const (
	KindNull Kind = iota
	KindInt
	KindString
)

// String returns the lower-case name of the kind as used in schemas and CSV
// headers.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ParseKind parses a kind name ("int", "string") as written in CSV headers
// and schema declarations.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "int", "integer":
		return KindInt, nil
	case "string", "str", "text", "varchar":
		return KindString, nil
	case "null":
		return KindNull, nil
	default:
		return KindNull, fmt.Errorf("relstore: unknown kind %q", s)
	}
}

// Value is a single typed relational value. The zero Value is Null.
// Values are immutable; copying is cheap.
type Value struct {
	kind Kind
	i    int64
	s    string
}

// Null is the SQL-null placeholder value.
var Null = Value{}

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// String returns a string value.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Kind reports the value's dynamic kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is Null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload. It panics if the value is not an int;
// callers are expected to have checked kinds via the schema.
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("relstore: AsInt on %s value", v.kind))
	}
	return v.i
}

// AsString returns the string payload. It panics if the value is not a
// string.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("relstore: AsString on %s value", v.kind))
	}
	return v.s
}

// Text renders the value as the text that appears in XML PCDATA and CSV
// cells. Null renders as the empty string.
func (v Value) Text() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindString:
		return v.s
	default:
		return ""
	}
}

// String implements fmt.Stringer with a debugging representation that
// distinguishes kinds ('abc' vs 42 vs NULL).
func (v Value) String() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindString:
		return "'" + v.s + "'"
	default:
		return "NULL"
	}
}

// ParseValue parses the textual form of a value of the given kind, the
// inverse of Text.
func ParseValue(kind Kind, text string) (Value, error) {
	switch kind {
	case KindInt:
		if text == "" {
			return Null, nil
		}
		n, err := strconv.ParseInt(strings.TrimSpace(text), 10, 64)
		if err != nil {
			return Null, fmt.Errorf("relstore: parsing int %q: %v", text, err)
		}
		return Int(n), nil
	case KindString:
		return String(text), nil
	case KindNull:
		return Null, nil
	default:
		return Null, fmt.Errorf("relstore: cannot parse kind %v", kind)
	}
}

// Equal reports whether two values are identical (same kind and payload).
// Nulls compare equal to each other, which is what the duplicate-detection
// guards of constraint compilation need.
func (v Value) Equal(w Value) bool {
	if v.kind != w.kind {
		return false
	}
	switch v.kind {
	case KindInt:
		return v.i == w.i
	case KindString:
		return v.s == w.s
	default:
		return true
	}
}

// Compare orders values: Null < Int < String across kinds, numerically
// within ints and lexicographically within strings. It returns -1, 0 or 1.
func (v Value) Compare(w Value) int {
	if v.kind != w.kind {
		if v.kind < w.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindInt:
		switch {
		case v.i < w.i:
			return -1
		case v.i > w.i:
			return 1
		}
		return 0
	case KindString:
		return strings.Compare(v.s, w.s)
	default:
		return 0
	}
}

// Key returns a compact string encoding of the value suitable for use as a
// Go map key in hash indexes and duplicate detection. Distinct values have
// distinct keys.
func (v Value) Key() string {
	switch v.kind {
	case KindInt:
		return "i" + strconv.FormatInt(v.i, 10)
	case KindString:
		return "s" + v.s
	default:
		return "n"
	}
}

// ByteSize returns the approximate width in bytes of the value's wire
// representation, used by the cost model's size() estimates.
func (v Value) ByteSize() int {
	switch v.kind {
	case KindInt:
		return 8
	case KindString:
		return len(v.s) + 4
	default:
		return 1
	}
}
