package relstore_test

// Crash-recovery torture tests, in an external test package so they can
// use the fault-injecting filesystem (which imports relstore). The bulk
// seeded sweep lives in difftest.CheckRecovery / `aigdiff -recover`;
// these tests pin the individual fault-injection invariants:
//
//   - a failed WAL append aborts the mutation (no half-applied state,
//     no half-applied ChangeSet), and failure is sticky;
//   - recovery from any crash image lands on an exact prefix of the
//     mutation history, multi-row operations applied whole or not at all;
//   - a failed snapshot leaves the previous snapshot intact and
//     recoverable.

import (
	"fmt"
	"strings"
	"testing"

	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/relstore/iofault"
)

// fp renders the recovery-relevant state of a database through the
// exported API: rows in order, versions, and every ChangesSince window.
func fp(db *relstore.Database) string {
	var b strings.Builder
	fmt.Fprintf(&b, "db %s v%d\n", db.Name(), db.Version())
	for _, name := range db.TableNames() {
		t, err := db.Table(name)
		if err != nil {
			continue
		}
		fmt.Fprintf(&b, "table %s %s v%d\n", name, t.Schema(), t.Version())
		for _, row := range t.Rows() {
			fmt.Fprintf(&b, "  row %s\n", row)
		}
		for since := uint64(0); since <= t.Version()+1; since++ {
			cs := t.ChangesSince(since)
			fmt.Fprintf(&b, "  since %d: now=%d trunc=%v cause=%s", since, cs.Now, cs.Truncated, cs.Cause)
			for _, ch := range cs.Changes {
				fmt.Fprintf(&b, " [v%d %s %s]", ch.Ver, ch.Op, ch.Row)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

func newFaultDB(t *testing.T) (*relstore.Database, *relstore.Persister, *iofault.FS) {
	t.Helper()
	fs := iofault.New()
	db := relstore.NewDatabase("DB1")
	tab := db.CreateTable("t", relstore.MustSchema("k:string", "n:int"))
	for i := 0; i < 4; i++ {
		tab.MustInsert(relstore.Tuple{relstore.String(fmt.Sprintf("k%d", i)), relstore.Int(int64(i))})
	}
	p, err := db.Persist(relstore.PersistOptions{FS: fs, Fsync: relstore.FsyncAlways})
	if err != nil {
		t.Fatalf("Persist: %v", err)
	}
	return db, p, fs
}

func recoverImage(t *testing.T, fs *iofault.FS) *relstore.Database {
	t.Helper()
	db, _, err := relstore.Recover("DB1", relstore.PersistOptions{FS: fs, Fsync: relstore.FsyncAlways})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return db
}

func TestShortWriteAbortsInsertAndIsSticky(t *testing.T) {
	db, _, fs := newFaultDB(t)
	tab, _ := db.Table("t")
	before := fp(db)

	fs.InjectShortWrite(1)
	if err := tab.Insert(relstore.Tuple{relstore.String("x"), relstore.Int(9)}); err == nil {
		t.Fatal("insert succeeded through a short write")
	}
	if got := fp(db); got != before {
		t.Errorf("aborted insert changed in-memory state:\nbefore:\n%s\nafter:\n%s", before, got)
	}
	// Sticky: the journal is torn, so the database stops taking writes.
	if err := tab.Insert(relstore.Tuple{relstore.String("y"), relstore.Int(10)}); err == nil {
		t.Fatal("insert succeeded after a sticky journal failure")
	}
	// The torn tail recovers to exactly the pre-fault state.
	if got := fp(recoverImage(t, fs.Image())); got != before {
		t.Errorf("recovery after torn append diverges:\nwant:\n%s\ngot:\n%s", before, got)
	}
}

func TestShortWriteNeverHalfAppliesDeleteWhere(t *testing.T) {
	db, _, fs := newFaultDB(t)
	tab, _ := db.Table("t")
	before := fp(db)

	fs.InjectShortWrite(1)
	if n := tab.DeleteWhere(func(r relstore.Tuple) bool { return true }); n != 0 {
		t.Fatalf("DeleteWhere reported %d rows through a failed append", n)
	}
	if got := fp(db); got != before {
		t.Errorf("failed DeleteWhere changed state:\nbefore:\n%s\nafter:\n%s", before, got)
	}
	rdb := recoverImage(t, fs.Image())
	rt, _ := rdb.Table("t")
	// Whole-or-nothing: either all four rows survive with no delete
	// deltas, or none do — never a partial application.
	if rt.Len() != 4 {
		t.Errorf("recovered %d rows, want 4 (delete must not half-apply)", rt.Len())
	}
	if cs := rt.ChangesSince(rt.Version()); cs.Truncated || len(cs.Changes) != 0 {
		t.Errorf("recovered log has trailing deltas: %+v", cs)
	}
}

func TestFailedSnapshotLeavesPreviousIntact(t *testing.T) {
	for _, tc := range []struct {
		name string
		arm  func(fs *iofault.FS)
	}{
		// The snapshot's tmp-file fsync fails mid-protocol.
		{"fsync", func(fs *iofault.FS) { fs.InjectSyncError(1) }},
		// The rename that publishes the snapshot is torn.
		{"rename", func(fs *iofault.FS) { fs.InjectRenameError(1) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			db, p, fs := newFaultDB(t)
			tab, _ := db.Table("t")
			tab.MustInsert(relstore.Tuple{relstore.String("x"), relstore.Int(9)})
			want := fp(db)
			prevSnap := fs.Bytes(relstore.SnapshotFile)

			tc.arm(fs)
			if err := p.Snapshot(); err == nil {
				t.Fatal("snapshot succeeded through an injected fault")
			}
			if got := fs.Bytes(relstore.SnapshotFile); string(got) != string(prevSnap) {
				t.Error("failed snapshot replaced the previous snapshot file")
			}
			// The store must still recover — previous snapshot + WAL tail.
			if got := fp(recoverImage(t, fs.Image())); got != want {
				t.Errorf("recovery after failed snapshot diverges:\nwant:\n%s\ngot:\n%s", want, got)
			}
		})
	}
}

func TestJournalingContinuesAfterFailedSnapshot(t *testing.T) {
	db, p, fs := newFaultDB(t)
	tab, _ := db.Table("t")

	fs.InjectRenameError(1)
	if err := p.Snapshot(); err == nil {
		t.Fatal("snapshot succeeded through an injected fault")
	}
	// The WAL was not rotated, so appends still extend the valid prefix.
	tab.MustInsert(relstore.Tuple{relstore.String("x"), relstore.Int(9)})
	want := fp(db)
	if got := fp(recoverImage(t, fs.Image())); got != want {
		t.Errorf("post-failed-snapshot writes lost:\nwant:\n%s\ngot:\n%s", want, got)
	}
}

func TestCrashImageAtEveryWALPrefixIsConsistent(t *testing.T) {
	fs := iofault.New()
	db := relstore.NewDatabase("DB1")
	tab := db.CreateTable("t", relstore.MustSchema("k:string", "n:int"))
	if _, err := db.Persist(relstore.PersistOptions{FS: fs, Fsync: relstore.FsyncAlways}); err != nil {
		t.Fatal(err)
	}
	// One mutation per step; fingerprints indexed by WAL record count.
	fps := []string{fp(db)}
	tab.MustInsert(relstore.Tuple{relstore.String("a"), relstore.Int(1)})
	fps = append(fps, fp(db))
	tab.MustInsert(relstore.Tuple{relstore.String("b"), relstore.Int(2)})
	fps = append(fps, fp(db))
	tab.DeleteWhere(func(r relstore.Tuple) bool { return true })
	fps = append(fps, fp(db))

	wal := fs.Bytes(relstore.WALFile)
	startSeq, ends, err := relstore.InspectWAL(wal)
	if err != nil {
		t.Fatal(err)
	}
	if startSeq != 1 || len(ends) != 4 {
		t.Fatalf("unexpected wal shape: startSeq=%d ends=%v", startSeq, ends)
	}
	for off := int64(0); off <= int64(len(wal)); off++ {
		img := fs.Image()
		img.Truncate(relstore.WALFile, off)
		rdb, _, err := relstore.Recover("DB1", relstore.PersistOptions{FS: img, Fsync: relstore.FsyncAlways})
		if err != nil {
			t.Fatalf("truncate@%d: %v", off, err)
		}
		// Count the record frames wholly inside the cut.
		records := 0
		for i, end := range ends {
			if i > 0 && end <= off {
				records++
			}
		}
		if got := fp(rdb); got != fps[records] {
			t.Fatalf("truncate@%d (%d records): recovered state diverges:\nwant:\n%s\ngot:\n%s",
				off, records, fps[records], got)
		}
	}
}
