package relstore

import "strings"

// Tuple is a single row of a relation: an ordered list of values.
type Tuple []Value

// Clone returns a copy of the tuple that shares no storage with the
// original.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Equal reports whether two tuples have the same length and pairwise-equal
// values.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Equal(u[i]) {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically by their values. Shorter tuples
// that are prefixes of longer ones sort first.
func (t Tuple) Compare(u Tuple) int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if c := t[i].Compare(u[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(u):
		return -1
	case len(t) > len(u):
		return 1
	}
	return 0
}

// Project returns the tuple restricted to the values at the given
// positions.
func (t Tuple) Project(idx []int) Tuple {
	out := make(Tuple, len(idx))
	for i, j := range idx {
		out[i] = t[j]
	}
	return out
}

// Concat returns the concatenation of two tuples as a new tuple.
func (t Tuple) Concat(u Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(u))
	out = append(out, t...)
	out = append(out, u...)
	return out
}

// Key returns a string that uniquely encodes the tuple's values, usable as
// a Go map key for hash joins, duplicate elimination and index lookups.
func (t Tuple) Key() string {
	var b strings.Builder
	for i, v := range t {
		if i > 0 {
			b.WriteByte(0x1f) // unit separator: cannot appear in Value.Key output ambiguity
		}
		b.WriteString(v.Key())
	}
	return b.String()
}

// KeyOn returns the Key of the projection of the tuple onto the given
// column positions without materializing the projection.
func (t Tuple) KeyOn(idx []int) string {
	var b strings.Builder
	for i, j := range idx {
		if i > 0 {
			b.WriteByte(0x1f)
		}
		b.WriteString(t[j].Key())
	}
	return b.String()
}

// ByteSize returns the approximate wire size of the tuple in bytes, used by
// the communication cost model.
func (t Tuple) ByteSize() int {
	n := 0
	for _, v := range t {
		n += v.ByteSize()
	}
	return n
}

// String renders the tuple as "(v1, v2, ...)" for debugging.
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
