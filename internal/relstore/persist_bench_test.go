package relstore

import (
	"fmt"
	"testing"
)

// The write-path cost of durability: inserts against a bare table, a
// journaled table without flushing, and a journaled table fsyncing every
// record. scripts/bench_wal.sh runs these and commits the numbers to
// BENCH_wal.json.

func benchInsert(b *testing.B, persist bool, fsync FsyncMode) {
	b.Helper()
	db := NewDatabase("B")
	t := NewTable("t", MustSchema("k:string", "n:int"))
	db.AddTable(t)
	if persist {
		p, err := db.Persist(PersistOptions{Dir: b.TempDir(), Fsync: fsync, SnapshotEvery: -1})
		if err != nil {
			b.Fatal(err)
		}
		defer p.Close()
	}
	rows := make([]Tuple, 1024)
	for i := range rows {
		rows[i] = Tuple{String(fmt.Sprintf("k%04d", i)), Int(int64(i))}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.MustInsert(rows[i%len(rows)])
	}
}

func BenchmarkInsertNoWAL(b *testing.B)       { benchInsert(b, false, FsyncNever) }
func BenchmarkInsertWALNoFsync(b *testing.B)  { benchInsert(b, true, FsyncNever) }
func BenchmarkInsertWALFsyncAll(b *testing.B) { benchInsert(b, true, FsyncAlways) }
