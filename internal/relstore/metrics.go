package relstore

import "github.com/aigrepro/aig/internal/obs"

// metricInserts counts every row appended to an in-memory table — the
// storage-level view of the mediator's cache-table writes (and of dataset
// generation, which builds tables the same way).
var metricInserts = obs.Default.NewCounter("aig_relstore_inserts_total",
	"rows inserted into in-memory tables")

// metricDeletes counts rows removed from in-memory tables — the write
// path incremental view maintenance turns into delete deltas.
var metricDeletes = obs.Default.NewCounter("aig_relstore_deletes_total",
	"rows deleted from in-memory tables")
