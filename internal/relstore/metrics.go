package relstore

import "github.com/aigrepro/aig/internal/obs"

// metricInserts counts every row appended to an in-memory table — the
// storage-level view of the mediator's cache-table writes (and of dataset
// generation, which builds tables the same way).
var metricInserts = obs.Default.NewCounter("aig_relstore_inserts_total",
	"rows inserted into in-memory tables")

// metricDeletes counts rows removed from in-memory tables — the write
// path incremental view maintenance turns into delete deltas.
var metricDeletes = obs.Default.NewCounter("aig_relstore_deletes_total",
	"rows deleted from in-memory tables")

// metricWALAppends counts records journaled to write-ahead logs.
var metricWALAppends = obs.Default.NewCounter("aig_relstore_wal_appends_total",
	"records appended to write-ahead logs")

// metricWALBytes counts bytes written to write-ahead logs.
var metricWALBytes = obs.Default.NewCounter("aig_relstore_wal_bytes_total",
	"bytes appended to write-ahead logs")

// metricWALFailures counts sticky journal failures: after one, the
// affected database stops accepting mutations.
var metricWALFailures = obs.Default.NewCounter("aig_relstore_wal_failures_total",
	"write-ahead log append/sync failures (sticky per database)")

// metricWALReplayed counts records replayed during recovery.
var metricWALReplayed = obs.Default.NewCounter("aig_relstore_wal_replayed_total",
	"write-ahead log records replayed during recovery")

// metricWALTruncations counts torn tails cut off during recovery.
var metricWALTruncations = obs.Default.NewCounter("aig_relstore_wal_truncations_total",
	"torn write-ahead log tails truncated during recovery")

// metricSnapshots counts completed snapshot + WAL-rotation cycles.
var metricSnapshots = obs.Default.NewCounter("aig_relstore_snapshots_total",
	"completed database snapshots")

// metricSnapshotFailures counts failed snapshot attempts (the previous
// snapshot stays in place; journaling continues unless rotation failed).
var metricSnapshotFailures = obs.Default.NewCounter("aig_relstore_snapshot_failures_total",
	"failed database snapshot attempts")

// metricRecoveries counts successful database recoveries.
var metricRecoveries = obs.Default.NewCounter("aig_relstore_recoveries_total",
	"databases recovered from snapshot + write-ahead log")
