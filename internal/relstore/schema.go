package relstore

import (
	"fmt"
	"strings"
)

// Column describes a single attribute of a relation.
type Column struct {
	Name string
	Kind Kind
}

// String renders the column as "name:kind", the form used in CSV headers.
func (c Column) String() string { return c.Name + ":" + c.Kind.String() }

// Schema is an ordered list of columns. Column names within a schema are
// unique (case-sensitive).
type Schema []Column

// MustSchema builds a schema from "name:kind" strings, panicking on error.
// It is intended for tests and static declarations.
func MustSchema(cols ...string) Schema {
	s, err := ParseSchema(cols)
	if err != nil {
		panic(err)
	}
	return s
}

// ParseSchema builds a schema from "name:kind" strings. A missing ":kind"
// suffix defaults to string, matching how DTD PCDATA values are typed.
func ParseSchema(cols []string) (Schema, error) {
	s := make(Schema, 0, len(cols))
	seen := make(map[string]bool, len(cols))
	for _, c := range cols {
		name, kindName, found := strings.Cut(c, ":")
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("relstore: empty column name in %q", c)
		}
		kind := KindString
		if found {
			var err error
			kind, err = ParseKind(kindName)
			if err != nil {
				return nil, err
			}
		}
		if seen[name] {
			return nil, fmt.Errorf("relstore: duplicate column %q", name)
		}
		seen[name] = true
		s = append(s, Column{Name: name, Kind: kind})
	}
	return s, nil
}

// ColumnIndex returns the position of the named column, or -1 if absent.
func (s Schema) ColumnIndex(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// HasColumn reports whether the schema contains the named column.
func (s Schema) HasColumn(name string) bool { return s.ColumnIndex(name) >= 0 }

// Names returns the column names in order.
func (s Schema) Names() []string {
	names := make([]string, len(s))
	for i, c := range s {
		names[i] = c.Name
	}
	return names
}

// Equal reports whether two schemas have identical columns in identical
// order.
func (s Schema) Equal(t Schema) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Project returns the sub-schema selecting the columns at the given
// positions.
func (s Schema) Project(idx []int) Schema {
	out := make(Schema, len(idx))
	for i, j := range idx {
		out[i] = s[j]
	}
	return out
}

// Concat returns the concatenation of two schemas. Duplicate names are
// disambiguated by suffixing "_2", "_3", ... as outer unions produced by
// query merging may collide.
func (s Schema) Concat(t Schema) Schema {
	out := make(Schema, 0, len(s)+len(t))
	seen := make(map[string]bool, len(s)+len(t))
	add := func(c Column) {
		name := c.Name
		for n := 2; seen[name]; n++ {
			name = fmt.Sprintf("%s_%d", c.Name, n)
		}
		seen[name] = true
		out = append(out, Column{Name: name, Kind: c.Kind})
	}
	for _, c := range s {
		add(c)
	}
	for _, c := range t {
		add(c)
	}
	return out
}

// String renders the schema as "(a:int, b:string)".
func (s Schema) String() string {
	parts := make([]string, len(s))
	for i, c := range s {
		parts[i] = c.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Validate checks that a tuple conforms to the schema: same arity and each
// value either Null or of the column's kind.
func (s Schema) Validate(t Tuple) error {
	if len(t) != len(s) {
		return fmt.Errorf("relstore: tuple arity %d does not match schema arity %d", len(t), len(s))
	}
	for i, v := range t {
		if !v.IsNull() && v.Kind() != s[i].Kind {
			return fmt.Errorf("relstore: column %q expects %s, got %s", s[i].Name, s[i].Kind, v.Kind())
		}
	}
	return nil
}
