package relstore

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// Replica support: a mirror database tracks an origin database by
// applying the origin's row deltas at the origin's own version numbers,
// so the mirror answers TableVersions/ChangesSince with watermarks that
// mean the same thing they mean at the origin. When the mirror has no
// state (first boot) or has fallen past the origin's change-log horizon,
// it installs a consistent snapshot (CaptureSnapshot on the origin,
// InstallSnapshotTable on the mirror) and resumes from the snapshot's
// versions. ChangeSignal is the push half: subscription fan-out blocks
// on it instead of polling the version counter.

// changeSignal is the notification slot shared by all waiters: a channel
// that is closed (and replaced lazily) on the next data-version advance.
type changeSignal struct {
	mu sync.Mutex
	ch chan struct{}
}

// next returns the channel the next notify will close. Callers must grab
// it BEFORE reading the state they wait on, so an advance between the
// read and the wait still wakes them.
func (s *changeSignal) next() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ch == nil {
		s.ch = make(chan struct{})
	}
	return s.ch
}

// notify wakes every waiter holding the current channel.
func (s *changeSignal) notify() {
	s.mu.Lock()
	if s.ch != nil {
		close(s.ch)
		s.ch = nil
	}
	s.mu.Unlock()
}

// ChangeSignal returns a channel that is closed after the next operation
// that advances the database's data version (row mutations, table
// registration or removal, manual bumps). Waiters must call this before
// reading TableVersions and select on the result; a closed channel means
// "state may have moved, re-read". The channel is one-shot: call again
// for the next wakeup.
func (db *Database) ChangeSignal() <-chan struct{} { return db.sig.next() }

// notifyChanged wakes ChangeSignal waiters. Called after every
// version-advancing operation, outside the database lock.
func (db *Database) notifyChanged() { db.sig.notify() }

// TableSnap is one table's state captured for replication: schema, rows
// and the version the rows are exactly at. Rows alias the table's
// immutable published snapshot; callers must not mutate them.
type TableSnap struct {
	Name    string
	Schema  Schema
	Rows    []Tuple
	Version uint64
}

// snapState captures the table's rows and version under its mutex, so
// the pair is mutually consistent even against concurrent writers.
func (t *Table) snapState() TableSnap {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TableSnap{Name: t.name, Schema: t.schema, Rows: t.rowsSnap(), Version: t.version.Load()}
}

// CaptureSnapshot captures every table's (rows, version) pair and tries
// to certify the whole set as one consistent cut using the database's
// seqlock version: read an even database version, capture, read the same
// even version again, and the capture provably contains no torn
// multi-table state. Up to attempts tries are made; if writers keep the
// database moving, the last capture is returned with consistent=false —
// each table is still internally consistent (rows match version), and a
// subscriber converges by replaying the delta tail from the per-table
// versions, so an uncertified snapshot costs catch-up time, not
// correctness.
func (db *Database) CaptureSnapshot(attempts int) (snaps []TableSnap, dbVersion uint64, consistent bool) {
	if attempts < 1 {
		attempts = 1
	}
	capture := func() ([]TableSnap, uint64) {
		v := db.version.Load()
		db.mu.RLock()
		tables := make([]*Table, 0, len(db.tables))
		for _, t := range db.tables {
			tables = append(tables, t)
		}
		db.mu.RUnlock()
		out := make([]TableSnap, 0, len(tables))
		for _, t := range tables {
			out = append(out, t.snapState())
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
		return out, v
	}
	for i := 0; i < attempts; i++ {
		got, v := capture()
		snaps, dbVersion = got, v
		if v%2 == 0 && db.version.Load() == v {
			return snaps, v, true
		}
		runtime.Gosched()
	}
	return snaps, dbVersion, false
}

// NewTableWithState builds a table that starts at an explicit version
// with the given rows — the receiving end of a replication snapshot. The
// change-log floor is set at version with the given cause, so windows
// older than the snapshot are answered truncated with the reason the
// origin gave for the catch-up (or TruncateRestart for an initial sync).
// The table takes ownership of rows.
func NewTableWithState(name string, schema Schema, rows []Tuple, version uint64, cause TruncateCause) *Table {
	t := NewTable(name, schema)
	t.buf = rows
	t.publishLocked()
	t.version.Store(version)
	if cause == TruncateNone {
		cause = TruncateRestart
	}
	t.log.resetLocked(version, cause)
	return t
}

// InstallSnapshotTable registers a snapshot-built table, keeping the
// version exactly as the table carries it. AddTable is wrong for this:
// its replacement semantics force the newcomer's version past the
// predecessor's, but a mirror must track origin versions faithfully even
// when the origin restarted to a LOWER version (that is precisely the
// TruncateRestart catch-up case). Mirror databases are in-memory only;
// installing into a persisted database is not supported.
func (db *Database) InstallSnapshotTable(t *Table) error {
	if db.persist.Load() != nil {
		return fmt.Errorf("relstore: InstallSnapshotTable on persisted database %q unsupported", db.name)
	}
	db.mu.Lock()
	prev := db.tables[t.Name()]
	db.tables[t.Name()] = t
	db.mu.Unlock()
	if prev != nil && prev != t {
		prev.p.Store(nil) // orphaned handles must not journal
	}
	t.hookMutations(db.beginMutation, db.endMutation)
	db.version.Add(2)
	db.notifyChanged()
	return nil
}

// ApplyChanges replays an origin table's ChangeSet onto this mirror
// table at the origin's version numbers. The set must be untruncated and
// must start at or before the mirror's current version (overlapping
// deltas are skipped — reconnects and snapshot/tail seams deliver them —
// but a window starting past the mirror is a gap and an error). On
// success the mirror's version equals cs.Now exactly, so the next
// ChangesSince watermark resumes where this set ended. Returns how many
// deltas were applied. Mirror tables are in-memory only: a journaled
// table rejects ApplyChanges rather than silently skipping its WAL.
func (t *Table) ApplyChanges(cs ChangeSet) (int, error) {
	if cs.Truncated {
		return 0, cs.TruncationError()
	}
	if t.p.Load() != nil {
		return 0, fmt.Errorf("relstore: ApplyChanges on journaled table %q unsupported", t.name)
	}
	t.mu.Lock()
	start := t.version.Load()
	if cs.Now <= start {
		t.mu.Unlock()
		return 0, nil // already caught up past this window
	}
	if cs.Since > start {
		t.mu.Unlock()
		return 0, fmt.Errorf("relstore: delta gap on %q: window starts at %d, mirror is at %d",
			t.name, cs.Since, start)
	}
	t.beginMutateLocked()
	applied, lastVer := 0, start
	var failure error
	for _, ch := range cs.Changes {
		if ch.Ver <= start {
			continue // overlap with already-applied state
		}
		switch ch.Op {
		case ChangeInsert:
			if err := t.schema.Validate(ch.Row); err != nil {
				failure = fmt.Errorf("relstore: replicated insert into %q: %v", t.name, err)
			} else {
				t.buf = append(t.buf, ch.Row)
			}
		case ChangeDelete:
			pos := -1
			key := ch.Row.Key()
			for i := len(t.buf) - 1; i >= 0; i-- {
				if t.buf[i].Key() == key {
					pos = i
					break
				}
			}
			if pos < 0 {
				failure = fmt.Errorf("relstore: replicated delete from %q: row %s not present", t.name, ch.Row)
			} else {
				// The published prefix may alias buf, so removal copies
				// instead of shifting in place.
				next := make([]Tuple, 0, len(t.buf)-1)
				next = append(next, t.buf[:pos]...)
				next = append(next, t.buf[pos+1:]...)
				t.buf = next
			}
		default:
			failure = fmt.Errorf("relstore: replicated change op %d on %q unknown", ch.Op, t.name)
		}
		if failure != nil {
			break
		}
		t.log.appendLocked(ch)
		lastVer = ch.Ver
		applied++
	}
	if failure == nil {
		lastVer = cs.Now // empty or version-only windows still advance
	}
	t.publishLocked()
	t.indexes = nil
	t.version.Store(lastVer)
	t.mu.Unlock()
	t.mutated()
	return applied, failure
}
