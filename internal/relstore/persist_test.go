package relstore

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fingerprint renders the full persistent state of a database — rows in
// order, versions, and the complete ChangesSince behaviour at every
// watermark — so recovery tests can assert byte-exact equality.
func fingerprint(db *Database) string {
	var b strings.Builder
	pr := func(format string, args ...any) { fmt.Fprintf(&b, format, args...) }
	pr("db %s v%d\n", db.Name(), db.Version())
	for _, name := range db.TableNames() {
		t, err := db.Table(name)
		if err != nil {
			pr("table %s: %v\n", name, err)
			continue
		}
		pr("table %s %s v%d\n", name, t.Schema(), t.Version())
		for _, row := range t.Rows() {
			pr("  row %s\n", row)
		}
		for since := uint64(0); since <= t.Version()+1; since++ {
			cs := t.ChangesSince(since)
			pr("  since %d: now=%d trunc=%v cause=%s", since, cs.Now, cs.Truncated, cs.Cause)
			for _, ch := range cs.Changes {
				pr(" [v%d %s %s]", ch.Ver, ch.Op, ch.Row)
			}
			pr("\n")
		}
	}
	return b.String()
}

func testOptions(t *testing.T) PersistOptions {
	t.Helper()
	return PersistOptions{Dir: t.TempDir(), Fsync: FsyncAlways}
}

func buildPersisted(t *testing.T, opts PersistOptions) (*Database, *Persister) {
	t.Helper()
	db := NewDatabase("DB1")
	tab := db.CreateTable("t", MustSchema("k:string", "n:int"))
	tab.MustInsert(Tuple{String("a"), Int(1)})
	tab.MustInsert(Tuple{String("b"), Int(2)})
	p, err := db.Persist(opts)
	if err != nil {
		t.Fatalf("Persist: %v", err)
	}
	return db, p
}

func TestRecoverRoundTrip(t *testing.T) {
	opts := testOptions(t)
	db, _ := buildPersisted(t, opts)
	tab, _ := db.Table("t")
	tab.MustInsert(Tuple{String("c"), Int(3)})
	if _, err := tab.DeleteAt(0); err != nil {
		t.Fatal(err)
	}
	tab.DeleteWhere(func(r Tuple) bool { return r[0].Text() == "b" })
	tab.Sort([]int{1})
	tab.MustInsert(Tuple{String("c"), Int(3)})
	tab.Distinct()
	db.BumpVersion()
	db.CreateTable("u", MustSchema("x:int")).MustInsert(Tuple{Int(7)})
	db.DropTable("u")
	want := fingerprint(db)

	rdb, rp, err := Recover("DB1", opts)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer rp.Close()
	if got := fingerprint(rdb); got != want {
		t.Errorf("recovered state differs:\nwant:\n%s\ngot:\n%s", want, got)
	}
}

func TestRecoverAfterSnapshotAndMore(t *testing.T) {
	opts := testOptions(t)
	db, p := buildPersisted(t, opts)
	tab, _ := db.Table("t")
	tab.MustInsert(Tuple{String("c"), Int(3)})
	if err := p.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	tab.MustInsert(Tuple{String("d"), Int(4)})
	want := fingerprint(db)

	rdb, rp, err := Recover("DB1", opts)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer rp.Close()
	if got := fingerprint(rdb); got != want {
		t.Errorf("recovered state differs:\nwant:\n%s\ngot:\n%s", want, got)
	}
	if rp.Seq() != p.Seq() {
		t.Errorf("recovered seq %d, want %d", rp.Seq(), p.Seq())
	}
}

func TestRecoverTruncatedTail(t *testing.T) {
	opts := testOptions(t)
	db, _ := buildPersisted(t, opts)
	tab, _ := db.Table("t")
	before := fingerprint(db)
	tab.MustInsert(Tuple{String("c"), Int(3)})

	// Tear the tail record: every proper prefix of the final frame must
	// recover to the pre-insert state and keep accepting writes.
	walPath := filepath.Join(opts.Dir, WALFile)
	wal, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	_, ends, err := InspectWAL(wal)
	if err != nil {
		t.Fatal(err)
	}
	if len(ends) < 2 {
		t.Fatalf("want at least header+1 record, got ends %v", ends)
	}
	prevEnd := ends[len(ends)-2]
	for off := prevEnd; off < int64(len(wal)); off++ {
		dir := t.TempDir()
		copyDir(t, opts.Dir, dir)
		if err := os.Truncate(filepath.Join(dir, WALFile), off); err != nil {
			t.Fatal(err)
		}
		ropts := PersistOptions{Dir: dir, Fsync: FsyncAlways}
		rdb, rp, err := Recover("DB1", ropts)
		if err != nil {
			t.Fatalf("truncate@%d: Recover: %v", off, err)
		}
		if got := fingerprint(rdb); got != before {
			t.Fatalf("truncate@%d: recovered state differs:\nwant:\n%s\ngot:\n%s", off, before, got)
		}
		// The journal must keep working past the cut.
		rt, _ := rdb.Table("t")
		rt.MustInsert(Tuple{String("z"), Int(9)})
		after := fingerprint(rdb)
		rp.Close()
		rdb2, rp2, err := Recover("DB1", ropts)
		if err != nil {
			t.Fatalf("truncate@%d: re-recover: %v", off, err)
		}
		if got := fingerprint(rdb2); got != after {
			t.Fatalf("truncate@%d: second recovery differs:\nwant:\n%s\ngot:\n%s", off, after, got)
		}
		rp2.Close()
	}
}

func TestRecoverEmptyDirIsFreshStart(t *testing.T) {
	opts := testOptions(t)
	if HasPersistedState(opts) {
		t.Fatal("empty dir reports persisted state")
	}
	db, p, err := Recover("DB1", opts)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer p.Close()
	if len(db.TableNames()) != 0 || db.Version() != 0 {
		t.Errorf("fresh recovery not empty: tables=%v v=%d", db.TableNames(), db.Version())
	}
	db.CreateTable("t", MustSchema("x:int")).MustInsert(Tuple{Int(1)})
	if !HasPersistedState(opts) {
		t.Error("persisted state missing after writes")
	}
}

func TestRecoverWrongName(t *testing.T) {
	opts := testOptions(t)
	buildPersisted(t, opts)
	if _, _, err := Recover("DB2", opts); err == nil {
		t.Fatal("recovering under the wrong name succeeded")
	}
}

func TestSetChangeLogLimitJournaled(t *testing.T) {
	opts := testOptions(t)
	db, _ := buildPersisted(t, opts)
	tab, _ := db.Table("t")
	tab.SetChangeLogLimit(1)
	tab.MustInsert(Tuple{String("c"), Int(3)})
	tab.MustInsert(Tuple{String("d"), Int(4)})
	want := fingerprint(db)
	rdb, rp, err := Recover("DB1", opts)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer rp.Close()
	if got := fingerprint(rdb); got != want {
		t.Errorf("recovered state differs:\nwant:\n%s\ngot:\n%s", want, got)
	}
}

// TestChangesSinceSurvivesRestart is the headline behaviour: a watermark
// taken before a crash still yields exact deltas after recovery, so IVM
// does not fall back to full refreshes on restart.
func TestChangesSinceSurvivesRestart(t *testing.T) {
	opts := testOptions(t)
	db, _ := buildPersisted(t, opts)
	tab, _ := db.Table("t")
	mark := tab.Version()
	tab.MustInsert(Tuple{String("c"), Int(3)})
	tab.MustInsert(Tuple{String("d"), Int(4)})

	rdb, rp, err := Recover("DB1", opts)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer rp.Close()
	rt, _ := rdb.Table("t")
	cs := rt.ChangesSince(mark)
	if cs.Truncated {
		t.Fatalf("pre-crash watermark truncated after recovery: %+v", cs)
	}
	if len(cs.Changes) != 2 {
		t.Fatalf("want 2 deltas, got %+v", cs.Changes)
	}
}

func TestTruncationCauses(t *testing.T) {
	db := NewDatabase("DB1")
	tab := db.CreateTable("t", MustSchema("x:int"))
	tab.MustInsert(Tuple{Int(1)})

	if cs := tab.ChangesSince(tab.Version() + 5); !cs.Truncated || cs.Cause != TruncateRestart {
		t.Errorf("future watermark: got %+v, want restart truncation", cs)
	}
	if err := tab.ChangesSince(tab.Version() + 5).TruncationError(); err == nil {
		t.Error("TruncationError nil for truncated set")
	} else if e, ok := err.(*ErrLogTruncated); !ok || e.Cause != TruncateRestart {
		t.Errorf("TruncationError: got %#v", err)
	}

	tab.SetChangeLogLimit(1)
	tab.MustInsert(Tuple{Int(2)})
	tab.MustInsert(Tuple{Int(3)})
	if cs := tab.ChangesSince(0); !cs.Truncated || cs.Cause != TruncateRolled {
		t.Errorf("rolled log: got %+v, want rolled truncation", cs)
	}

	tab.Sort(nil)
	if cs := tab.ChangesSince(0); !cs.Truncated || cs.Cause != TruncateReset {
		t.Errorf("after sort: got %+v, want reset truncation", cs)
	}
	if cs := tab.ChangesSince(tab.Version()); cs.Truncated {
		t.Errorf("current watermark truncated: %+v", cs)
	}
}

func copyDir(t *testing.T, from, to string) {
	t.Helper()
	entries, err := os.ReadDir(from)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(from, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(to, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
