package relstore

import (
	"fmt"
	"sync"
	"testing"
)

func deltaTable(t *testing.T) *Table {
	t.Helper()
	tab := NewTable("p", Schema{{Name: "id", Kind: KindString}, {Name: "n", Kind: KindInt}})
	tab.MustInsert(Tuple{String("a"), Int(1)})
	tab.MustInsert(Tuple{String("b"), Int(2)})
	tab.MustInsert(Tuple{String("c"), Int(3)})
	return tab
}

func TestVersionAdvancesPerMutation(t *testing.T) {
	tab := deltaTable(t)
	if got := tab.Version(); got != 3 {
		t.Fatalf("version after 3 inserts = %d, want 3", got)
	}
	if _, err := tab.DeleteAt(1); err != nil {
		t.Fatal(err)
	}
	if got := tab.Version(); got != 4 {
		t.Fatalf("version after delete = %d, want 4", got)
	}
	if tab.Len() != 2 {
		t.Fatalf("len after delete = %d, want 2", tab.Len())
	}
}

func TestChangesSinceReplaysToCurrentState(t *testing.T) {
	tab := deltaTable(t)
	base := tab.Version()
	baseRows := tab.Rows()
	tab.MustInsert(Tuple{String("d"), Int(4)})
	if _, err := tab.DeleteAt(0); err != nil {
		t.Fatal(err)
	}
	cs := tab.ChangesSince(base)
	if cs.Truncated {
		t.Fatal("unexpected truncation")
	}
	if cs.Since != base || cs.Now != tab.Version() {
		t.Fatalf("window = (%d,%d], want (%d,%d]", cs.Since, cs.Now, base, tab.Version())
	}
	// Replay the deltas over the base snapshot; the multiset must equal
	// the current rows.
	counts := make(map[string]int)
	for _, row := range baseRows {
		counts[row.Key()]++
	}
	for _, ch := range cs.Changes {
		switch ch.Op {
		case ChangeInsert:
			counts[ch.Row.Key()]++
		case ChangeDelete:
			counts[ch.Row.Key()]--
		}
	}
	for _, row := range tab.Rows() {
		counts[row.Key()]--
	}
	for k, n := range counts {
		if n != 0 {
			t.Fatalf("replay mismatch at %q: %+d", k, n)
		}
	}
}

func TestChangesSinceBeyondNowIsTruncated(t *testing.T) {
	tab := deltaTable(t)
	cs := tab.ChangesSince(tab.Version() + 10)
	if !cs.Truncated {
		t.Fatal("future since must report truncated")
	}
}

func TestSortResetsLog(t *testing.T) {
	tab := deltaTable(t)
	base := tab.Version()
	tab.Sort(nil)
	cs := tab.ChangesSince(base)
	if !cs.Truncated {
		t.Fatal("window spanning a Sort must be truncated")
	}
	if cs2 := tab.ChangesSince(tab.Version()); cs2.Truncated || len(cs2.Changes) != 0 {
		t.Fatalf("empty window after Sort: %+v", cs2)
	}
}

func TestDistinctLogsDeletes(t *testing.T) {
	tab := deltaTable(t)
	tab.MustInsert(Tuple{String("a"), Int(1)}) // duplicate
	base := tab.Version()
	tab.Distinct()
	cs := tab.ChangesSince(base)
	if cs.Truncated {
		t.Fatal("Distinct should be delta-expressible")
	}
	if len(cs.Changes) != 1 || cs.Changes[0].Op != ChangeDelete {
		t.Fatalf("changes = %+v, want one delete", cs.Changes)
	}
}

func TestBoundedLogTruncates(t *testing.T) {
	tab := NewTable("p", Schema{{Name: "n", Kind: KindInt}})
	tab.SetChangeLogLimit(4)
	for i := 0; i < 10; i++ {
		tab.MustInsert(Tuple{Int(int64(i))})
	}
	if cs := tab.ChangesSince(0); !cs.Truncated {
		t.Fatal("window older than the bounded log must be truncated")
	}
	cs := tab.ChangesSince(6)
	if cs.Truncated || len(cs.Changes) != 4 {
		t.Fatalf("recent window = %+v, want 4 changes", cs)
	}
}

func TestDisabledLogAlwaysTruncates(t *testing.T) {
	tab := NewTable("p", Schema{{Name: "n", Kind: KindInt}})
	tab.SetChangeLogLimit(-1)
	v := tab.Version()
	tab.MustInsert(Tuple{Int(1)})
	if cs := tab.ChangesSince(v); !cs.Truncated {
		t.Fatal("disabled log must truncate every non-empty window")
	}
}

func TestDeleteWhereLogsEachRow(t *testing.T) {
	tab := deltaTable(t)
	base := tab.Version()
	n := tab.DeleteWhere(func(row Tuple) bool { return row[1].Compare(Int(2)) <= 0 })
	if n != 2 {
		t.Fatalf("DeleteWhere removed %d, want 2", n)
	}
	if got := tab.Version(); got != base+1 {
		t.Fatalf("DeleteWhere bumped version to %d, want %d", got, base+1)
	}
	cs := tab.ChangesSince(base)
	if cs.Truncated || len(cs.Changes) != 2 {
		t.Fatalf("changes = %+v, want 2 deletes", cs)
	}
}

func TestAddTableReplacementKeepsVersionsMonotonic(t *testing.T) {
	db := NewDatabase("DB1")
	a := NewTable("p", Schema{{Name: "n", Kind: KindInt}})
	db.AddTable(a)
	a.MustInsert(Tuple{Int(1)})
	a.MustInsert(Tuple{Int(2)})
	seen := a.Version()

	b := NewTable("p", Schema{{Name: "n", Kind: KindInt}})
	b.MustInsert(Tuple{Int(9)})
	db.AddTable(b)
	if b.Version() <= seen {
		t.Fatalf("replacement version %d not past predecessor's %d", b.Version(), seen)
	}
	cs, err := db.ChangesSince("p", seen)
	if err != nil {
		t.Fatal(err)
	}
	if !cs.Truncated {
		t.Fatal("delta window across a table replacement must be truncated")
	}
	vers := db.TableVersions()
	if vers["p"] != b.Version() {
		t.Fatalf("TableVersions = %v, want p=%d", vers, b.Version())
	}
}

func TestConcurrentReadersSeeConsistentSnapshots(t *testing.T) {
	tab := NewTable("p", Schema{{Name: "id", Kind: KindString}, {Name: "n", Kind: KindInt}})
	tab.MustInsert(Tuple{String("seed"), Int(0)})
	const writes = 400
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := tab.Version()
				rows := tab.Rows()
				// A snapshot loaded after observing version v must
				// contain at least the rows present at v (inserts only
				// grow this table).
				if uint64(len(rows)) < v {
					t.Errorf("version %d but snapshot has %d rows", v, len(rows))
					return
				}
				for _, row := range rows {
					_ = row.Key() // must never observe torn tuples
				}
				_ = tab.DistinctCount(1)
				_ = tab.ByteSize()
			}
		}()
	}
	for i := 0; i < writes; i++ {
		tab.MustInsert(Tuple{String(fmt.Sprintf("w%d", i)), Int(int64(i))})
	}
	close(stop)
	wg.Wait()
}
