package relstore

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// WriteCSV writes the table to w as CSV. The first record is a header of
// "name:kind" cells so that kinds round-trip.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(t.schema))
	for i, c := range t.schema {
		header[i] = c.String()
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	record := make([]string, len(t.schema))
	for _, row := range t.rowsSnap() {
		for i, v := range row {
			record[i] = v.Text()
		}
		if err := cw.Write(record); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a table in the format produced by WriteCSV.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relstore: reading CSV header for %q: %v", name, err)
	}
	schema, err := ParseSchema(header)
	if err != nil {
		return nil, fmt.Errorf("relstore: CSV header for %q: %v", name, err)
	}
	t := NewTable(name, schema)
	for {
		record, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relstore: reading CSV for %q: %v", name, err)
		}
		if len(record) != len(schema) {
			return nil, fmt.Errorf("relstore: CSV row for %q has %d fields, want %d", name, len(record), len(schema))
		}
		row := make(Tuple, len(schema))
		for i, cell := range record {
			row[i], err = ParseValue(schema[i].Kind, cell)
			if err != nil {
				return nil, err
			}
		}
		if err := t.Insert(row); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// SaveDir writes every table of the database as <dir>/<table>.csv,
// creating dir if needed.
func (db *Database) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range db.TableNames() {
		t, err := db.Table(name)
		if err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(dir, name+".csv"))
		if err != nil {
			return err
		}
		if err := t.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// LoadDir reads every *.csv file in dir into a new database named name.
func LoadDir(name, dir string) (*Database, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	db := NewDatabase(name)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		tableName := strings.TrimSuffix(e.Name(), ".csv")
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		t, err := ReadCSV(tableName, f)
		f.Close()
		if err != nil {
			return nil, err
		}
		db.AddTable(t)
	}
	return db, nil
}
