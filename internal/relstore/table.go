package relstore

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Table is an in-memory relation: a schema plus an ordered multiset of
// tuples. Hash indexes are built lazily per column set and invalidated on
// mutation. Tables are safe for concurrent readers; writers must be
// externally serialized with respect to readers (the mediator ships
// immutable result tables, so this matches usage).
type Table struct {
	name   string
	schema Schema
	rows   []Tuple

	mu      sync.Mutex
	indexes map[string]*hashIndex
	// onMutate is invoked after every mutating operation (insert, sort,
	// distinct). Databases hook registered tables here so that table
	// mutations advance the database's data version.
	onMutate []func()
}

type hashIndex struct {
	cols    []int
	buckets map[string][]int // tuple key -> row positions
}

// NewTable creates an empty table with the given name and schema.
func NewTable(name string, schema Schema) *Table {
	return &Table{name: name, schema: schema}
}

// Name returns the table's name.
func (t *Table) Name() string { return t.name }

// Schema returns the table's schema. Callers must not mutate it.
func (t *Table) Schema() Schema { return t.schema }

// Len returns the number of tuples (the relation's cardinality).
func (t *Table) Len() int { return len(t.rows) }

// Row returns the i-th tuple. Callers must not mutate it.
func (t *Table) Row(i int) Tuple { return t.rows[i] }

// Rows returns the underlying tuple slice. Callers must not mutate it;
// use Insert to add rows.
func (t *Table) Rows() []Tuple { return t.rows }

// addOnMutate registers a callback fired after every mutation.
func (t *Table) addOnMutate(fn func()) {
	t.mu.Lock()
	t.onMutate = append(t.onMutate, fn)
	t.mu.Unlock()
}

// mutated runs the mutation callbacks outside the table lock.
func (t *Table) mutated() {
	t.mu.Lock()
	fns := t.onMutate
	t.mu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

// Insert appends a tuple after validating it against the schema.
func (t *Table) Insert(row Tuple) error {
	if err := t.schema.Validate(row); err != nil {
		return fmt.Errorf("table %q: %v", t.name, err)
	}
	t.mu.Lock()
	t.rows = append(t.rows, row)
	t.indexes = nil // invalidate
	t.mu.Unlock()
	metricInserts.Inc()
	t.mutated()
	return nil
}

// MustInsert is Insert panicking on error, for tests and generators whose
// tuples are constructed from the schema itself.
func (t *Table) MustInsert(row Tuple) {
	if err := t.Insert(row); err != nil {
		panic(err)
	}
}

// InsertValues builds a tuple by parsing each argument according to the
// schema column kinds and inserts it. Arguments may be int64, int, string
// or Value.
func (t *Table) InsertValues(vals ...any) error {
	if len(vals) != len(t.schema) {
		return fmt.Errorf("table %q: %d values for %d columns", t.name, len(vals), len(t.schema))
	}
	row := make(Tuple, len(vals))
	for i, raw := range vals {
		switch v := raw.(type) {
		case Value:
			row[i] = v
		case int:
			row[i] = Int(int64(v))
		case int64:
			row[i] = Int(v)
		case string:
			if t.schema[i].Kind == KindInt {
				parsed, err := ParseValue(KindInt, v)
				if err != nil {
					return err
				}
				row[i] = parsed
			} else {
				row[i] = String(v)
			}
		case nil:
			row[i] = Null
		default:
			return fmt.Errorf("table %q: unsupported value %T", t.name, raw)
		}
	}
	return t.Insert(row)
}

// Lookup returns the positions of all rows whose projection onto cols
// equals key. It builds (and caches) a hash index on cols on first use.
func (t *Table) Lookup(cols []int, key Tuple) []int {
	idx := t.index(cols)
	return idx.buckets[key.Key()]
}

// LookupKey is Lookup with a precomputed Tuple.Key, avoiding the
// projection allocation in join inner loops.
func (t *Table) LookupKey(cols []int, key string) []int {
	idx := t.index(cols)
	return idx.buckets[key]
}

func (t *Table) index(cols []int) *hashIndex {
	sig := indexSignature(cols)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.indexes == nil {
		t.indexes = make(map[string]*hashIndex)
	}
	if idx, ok := t.indexes[sig]; ok {
		return idx
	}
	idx := &hashIndex{cols: cols, buckets: make(map[string][]int)}
	for i, row := range t.rows {
		k := row.KeyOn(cols)
		idx.buckets[k] = append(idx.buckets[k], i)
	}
	t.indexes[sig] = idx
	return idx
}

func indexSignature(cols []int) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = fmt.Sprint(c)
	}
	return strings.Join(parts, ",")
}

// DistinctCount returns the number of distinct values in the given column,
// used by selectivity estimation.
func (t *Table) DistinctCount(col int) int {
	seen := make(map[string]struct{}, len(t.rows))
	for _, row := range t.rows {
		seen[row[col].Key()] = struct{}{}
	}
	return len(seen)
}

// ByteSize returns the approximate total wire size of the table's rows.
func (t *Table) ByteSize() int {
	n := 0
	for _, row := range t.rows {
		n += row.ByteSize()
	}
	return n
}

// Clone returns a deep copy of the table (indexes are not copied).
func (t *Table) Clone() *Table {
	out := NewTable(t.name, t.schema)
	out.rows = make([]Tuple, len(t.rows))
	for i, row := range t.rows {
		out.rows[i] = row.Clone()
	}
	return out
}

// Sort orders the table's rows lexicographically by the given columns
// (all columns when cols is nil). Sorting is stable. The tagger relies on
// this to group rows by their path-encoding prefix.
func (t *Table) Sort(cols []int) {
	t.mu.Lock()
	t.indexes = nil
	t.mu.Unlock()
	sort.SliceStable(t.rows, func(i, j int) bool {
		a, b := t.rows[i], t.rows[j]
		if cols == nil {
			return a.Compare(b) < 0
		}
		for _, c := range cols {
			if cmp := a[c].Compare(b[c]); cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	t.mutated()
}

// Distinct removes duplicate rows in place, keeping first occurrences.
func (t *Table) Distinct() {
	seen := make(map[string]struct{}, len(t.rows))
	out := t.rows[:0]
	for _, row := range t.rows {
		k := row.Key()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, row)
	}
	t.mu.Lock()
	t.rows = out
	t.indexes = nil
	t.mu.Unlock()
	t.mutated()
}

// Equal reports whether two tables have equal schemas and equal rows as
// multisets (order-insensitive).
func (t *Table) Equal(u *Table) bool {
	if !t.schema.Equal(u.schema) || len(t.rows) != len(u.rows) {
		return false
	}
	counts := make(map[string]int, len(t.rows))
	for _, row := range t.rows {
		counts[row.Key()]++
	}
	for _, row := range u.rows {
		counts[row.Key()]--
		if counts[row.Key()] < 0 {
			return false
		}
	}
	return true
}

// String renders the table with its schema and up to 20 rows, for
// debugging and error messages.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s%s [%d rows]", t.name, t.schema, len(t.rows))
	for i, row := range t.rows {
		if i == 20 {
			b.WriteString("\n  ...")
			break
		}
		b.WriteString("\n  " + row.String())
	}
	return b.String()
}
