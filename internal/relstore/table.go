package relstore

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Table is an in-memory relation: a schema plus an ordered multiset of
// tuples. Row storage is copy-on-write: readers load an immutable
// snapshot through an atomic pointer, so reads are safe against a
// concurrent writer without locking. Writers are serialized by the table
// mutex. A position returned by Lookup is only meaningful against the
// snapshot it was built from, so callers that mix Lookup with Row must
// not race with writers (the mediator's intermediate tables never do).
//
// Every mutation advances a monotonic per-table version and, when the
// mutation is expressible as row inserts/deletes, appends the delta to a
// bounded change log consumed by incremental view maintenance.
type Table struct {
	name   string
	schema Schema

	// snap is the published row snapshot: an immutable slice with
	// len == cap, possibly aliasing a prefix of buf.
	snap atomic.Pointer[[]Tuple]

	// version counts mutations of this table, starting at zero.
	version atomic.Uint64

	mu sync.Mutex
	// buf is the writer-side buffer. The prefix published in snap is
	// never rewritten in place; appends either fill spare capacity the
	// snapshot cannot see or reallocate.
	buf     []Tuple
	indexes map[string]*hashIndex
	log     changeLog
	// onBegin fires before a mutation publishes any data, onMutate after
	// the mutation is fully visible. Databases hook registered tables
	// here so the database's seqlock-style data version goes odd for the
	// duration of the write and lands even past it — the bracket version
	// caches use to recognize consistent snapshots.
	onBegin  []func()
	onMutate []func()

	// p, when set, is the durability layer of the owning database: each
	// mutation then takes the persister's gate before the table mutex,
	// journals a WAL record, and only applies if the append succeeds.
	// Read atomically so the unpersisted fast path costs one nil check.
	p atomic.Pointer[Persister]
}

type hashIndex struct {
	cols    []int
	buckets map[string][]int // tuple key -> row positions
}

// NewTable creates an empty table with the given name and schema.
func NewTable(name string, schema Schema) *Table {
	return &Table{name: name, schema: schema}
}

// Name returns the table's name.
func (t *Table) Name() string { return t.name }

// Schema returns the table's schema. Callers must not mutate it.
func (t *Table) Schema() Schema { return t.schema }

// rowsSnap loads the current immutable row snapshot.
func (t *Table) rowsSnap() []Tuple {
	if p := t.snap.Load(); p != nil {
		return *p
	}
	return nil
}

// publishLocked makes the current buffer the visible snapshot. The
// three-index slice caps the snapshot at its length so later in-place
// appends to spare buffer capacity stay invisible to readers.
func (t *Table) publishLocked() {
	s := t.buf[:len(t.buf):len(t.buf)]
	t.snap.Store(&s)
}

// Len returns the number of tuples (the relation's cardinality).
func (t *Table) Len() int { return len(t.rowsSnap()) }

// Row returns the i-th tuple. Callers must not mutate it.
func (t *Table) Row(i int) Tuple { return t.rowsSnap()[i] }

// Rows returns the current row snapshot. Callers must not mutate it;
// use Insert to add rows. The snapshot is immutable: it does not observe
// later mutations.
func (t *Table) Rows() []Tuple { return t.rowsSnap() }

// Version returns the table's data version: a monotonic counter that
// increases on every mutating operation and never on reads. A reader
// that observes version v through Rows() sees at least the mutations up
// to v.
func (t *Table) Version() uint64 { return t.version.Load() }

// SetChangeLogLimit bounds the change log to n row deltas (0 restores
// DefaultChangeLogLimit). A negative n disables delta logging entirely:
// every ChangesSince window is reported truncated, forcing full
// refreshes.
func (t *Table) SetChangeLogLimit(n int) {
	if p := t.p.Load(); p != nil {
		p.gate.Lock()
		defer p.gate.Unlock()
		// Journaled because the limit shapes future log state: replaying
		// the same mutations under a different limit would recover a
		// different ChangesSince answer.
		if p.append(&walRecord{Kind: recLogLimit, Table: t.name, Limit: n}) != nil {
			return
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n < 0 {
		t.log.disabled = true
		t.log.limit = 0
		t.log.resetLocked(t.version.Load(), TruncateReset)
		return
	}
	t.log.disabled = false
	t.log.limit = n
	for n > 0 && len(t.log.entries) > n {
		t.log.minVer = t.log.entries[0].Ver
		t.log.cause = TruncateRolled
		t.log.entries = t.log.entries[1:]
	}
}

// ChangesSince returns the row deltas after version since, or a
// truncated ChangeSet when the bounded log no longer covers the window.
func (t *Table) ChangesSince(since uint64) ChangeSet {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.log.sinceLocked(t.name, since, t.version.Load())
}

// resetLogPastLocked is used when this table replaces another under the
// same name: its version jumps past the predecessor's so the sequence
// observed by name stays monotonic, and the log resets because already
// logged deltas carry stale version numbers.
func (t *Table) resetLogPast(prev uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if cur := t.version.Load(); cur <= prev {
		t.version.Store(prev + 1)
	}
	t.log.resetLocked(t.version.Load(), TruncateReset)
}

// hookMutations registers a (begin, end) callback pair bracketing every
// mutation.
func (t *Table) hookMutations(begin, end func()) {
	t.mu.Lock()
	t.onBegin = append(t.onBegin, begin)
	t.onMutate = append(t.onMutate, end)
	t.mu.Unlock()
}

// beginMutateLocked runs the begin callbacks. Writers call it under the
// table lock, before publishing any data.
func (t *Table) beginMutateLocked() {
	for _, fn := range t.onBegin {
		fn()
	}
}

// mutated runs the end-of-mutation callbacks outside the table lock.
func (t *Table) mutated() {
	t.mu.Lock()
	fns := t.onMutate
	t.mu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

// Insert appends a tuple after validating it against the schema.
func (t *Table) Insert(row Tuple) error {
	if err := t.schema.Validate(row); err != nil {
		return fmt.Errorf("table %q: %v", t.name, err)
	}
	if p := t.p.Load(); p != nil {
		p.gate.Lock()
		defer p.gate.Unlock()
		if err := p.append(&walRecord{Kind: recInsert, DBDelta: 2, Table: t.name,
			Ver: t.version.Load() + 1, Row: rowToWal(row)}); err != nil {
			return err
		}
	}
	t.mu.Lock()
	t.beginMutateLocked()
	t.buf = append(t.buf, row)
	t.publishLocked()
	t.indexes = nil // invalidate
	ver := t.version.Add(1)
	t.log.appendLocked(Change{Ver: ver, Op: ChangeInsert, Row: row})
	t.mu.Unlock()
	metricInserts.Inc()
	t.mutated()
	return nil
}

// MustInsert is Insert panicking on error, for tests and generators whose
// tuples are constructed from the schema itself.
func (t *Table) MustInsert(row Tuple) {
	if err := t.Insert(row); err != nil {
		panic(err)
	}
}

// InsertValues builds a tuple by parsing each argument according to the
// schema column kinds and inserts it. Arguments may be int64, int, string
// or Value.
func (t *Table) InsertValues(vals ...any) error {
	if len(vals) != len(t.schema) {
		return fmt.Errorf("table %q: %d values for %d columns", t.name, len(vals), len(t.schema))
	}
	row := make(Tuple, len(vals))
	for i, raw := range vals {
		switch v := raw.(type) {
		case Value:
			row[i] = v
		case int:
			row[i] = Int(int64(v))
		case int64:
			row[i] = Int(v)
		case string:
			if t.schema[i].Kind == KindInt {
				parsed, err := ParseValue(KindInt, v)
				if err != nil {
					return err
				}
				row[i] = parsed
			} else {
				row[i] = String(v)
			}
		case nil:
			row[i] = Null
		default:
			return fmt.Errorf("table %q: unsupported value %T", t.name, raw)
		}
	}
	return t.Insert(row)
}

// DeleteAt removes the i-th row and returns it.
func (t *Table) DeleteAt(i int) (Tuple, error) {
	if p := t.p.Load(); p != nil {
		p.gate.Lock()
		defer p.gate.Unlock()
		// Validate against the published snapshot — the gate excludes
		// writers, so it equals the buffer — before journaling, so an
		// out-of-range index never reaches the log.
		if n := len(t.rowsSnap()); i < 0 || i >= n {
			return nil, fmt.Errorf("table %q: delete index %d out of range [0,%d)", t.name, i, n)
		}
		if err := p.append(&walRecord{Kind: recDeleteAt, DBDelta: 2, Table: t.name,
			Ver: t.version.Load() + 1, Index: i}); err != nil {
			return nil, err
		}
	}
	t.mu.Lock()
	if i < 0 || i >= len(t.buf) {
		n := len(t.buf)
		t.mu.Unlock()
		return nil, fmt.Errorf("table %q: delete index %d out of range [0,%d)", t.name, i, n)
	}
	row := t.buf[i]
	t.beginMutateLocked()
	// The published prefix may alias buf, so removal copies instead of
	// shifting in place.
	next := make([]Tuple, 0, len(t.buf)-1)
	next = append(next, t.buf[:i]...)
	next = append(next, t.buf[i+1:]...)
	t.buf = next
	t.publishLocked()
	t.indexes = nil
	ver := t.version.Add(1)
	t.log.appendLocked(Change{Ver: ver, Op: ChangeDelete, Row: row})
	t.mu.Unlock()
	metricDeletes.Inc()
	t.mutated()
	return row, nil
}

// DeleteWhere removes every row the predicate matches, returning the
// count. All removals are logged under a single new table version.
func (t *Table) DeleteWhere(match func(Tuple) bool) int {
	if p := t.p.Load(); p != nil {
		p.gate.Lock()
		defer p.gate.Unlock()
		// Predicates cannot be journaled; the matched positions can. The
		// gate excludes writers, so the published snapshot the predicate
		// runs over is the state the positions will apply to.
		var idx []int
		for i, row := range t.rowsSnap() {
			if match(row) {
				idx = append(idx, i)
			}
		}
		if len(idx) == 0 {
			return 0
		}
		if err := p.append(&walRecord{Kind: recDeleteRows, DBDelta: 2, Table: t.name,
			Ver: t.version.Load() + 1, Indices: idx}); err != nil {
			return 0
		}
		return t.deleteIndices(idx)
	}
	t.mu.Lock()
	var removed []Tuple
	next := make([]Tuple, 0, len(t.buf))
	for _, row := range t.buf {
		if match(row) {
			removed = append(removed, row)
		} else {
			next = append(next, row)
		}
	}
	if len(removed) == 0 {
		t.mu.Unlock()
		return 0
	}
	t.beginMutateLocked()
	t.buf = next
	t.publishLocked()
	t.indexes = nil
	ver := t.version.Add(1)
	for _, row := range removed {
		t.log.appendLocked(Change{Ver: ver, Op: ChangeDelete, Row: row})
	}
	t.mu.Unlock()
	metricDeletes.Add(int64(len(removed)))
	t.mutated()
	return len(removed)
}

// deleteIndices removes the rows at the given ascending positions,
// logging every removal under one new version — the journaled (and
// replayed) core of DeleteWhere.
func (t *Table) deleteIndices(idx []int) int {
	t.mu.Lock()
	removed := make([]Tuple, 0, len(idx))
	next := make([]Tuple, 0, len(t.buf)-len(idx))
	j := 0
	for i, row := range t.buf {
		if j < len(idx) && idx[j] == i {
			removed = append(removed, row)
			j++
		} else {
			next = append(next, row)
		}
	}
	t.beginMutateLocked()
	t.buf = next
	t.publishLocked()
	t.indexes = nil
	ver := t.version.Add(1)
	for _, row := range removed {
		t.log.appendLocked(Change{Ver: ver, Op: ChangeDelete, Row: row})
	}
	t.mu.Unlock()
	metricDeletes.Add(int64(len(removed)))
	t.mutated()
	return len(removed)
}

// Lookup returns the positions of all rows whose projection onto cols
// equals key. It builds (and caches) a hash index on cols on first use.
func (t *Table) Lookup(cols []int, key Tuple) []int {
	idx := t.index(cols)
	return idx.buckets[key.Key()]
}

// LookupKey is Lookup with a precomputed Tuple.Key, avoiding the
// projection allocation in join inner loops.
func (t *Table) LookupKey(cols []int, key string) []int {
	idx := t.index(cols)
	return idx.buckets[key]
}

func (t *Table) index(cols []int) *hashIndex {
	sig := indexSignature(cols)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.indexes == nil {
		t.indexes = make(map[string]*hashIndex)
	}
	if idx, ok := t.indexes[sig]; ok {
		return idx
	}
	idx := &hashIndex{cols: cols, buckets: make(map[string][]int)}
	for i, row := range t.rowsSnap() {
		k := row.KeyOn(cols)
		idx.buckets[k] = append(idx.buckets[k], i)
	}
	t.indexes[sig] = idx
	return idx
}

func indexSignature(cols []int) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = fmt.Sprint(c)
	}
	return strings.Join(parts, ",")
}

// DistinctCount returns the number of distinct values in the given column,
// used by selectivity estimation.
func (t *Table) DistinctCount(col int) int {
	rows := t.rowsSnap()
	seen := make(map[string]struct{}, len(rows))
	for _, row := range rows {
		seen[row[col].Key()] = struct{}{}
	}
	return len(seen)
}

// ByteSize returns the approximate total wire size of the table's rows.
func (t *Table) ByteSize() int {
	n := 0
	for _, row := range t.rowsSnap() {
		n += row.ByteSize()
	}
	return n
}

// Clone returns a deep copy of the table (indexes, version and change
// log are not copied: the clone is a fresh incarnation at version zero).
func (t *Table) Clone() *Table {
	rows := t.rowsSnap()
	out := NewTable(t.name, t.schema)
	out.buf = make([]Tuple, len(rows))
	for i, row := range rows {
		out.buf[i] = row.Clone()
	}
	out.publishLocked()
	return out
}

// Sort orders the table's rows lexicographically by the given columns
// (all columns when cols is nil). Sorting is stable. The tagger relies on
// this to group rows by their path-encoding prefix. Reordering is not
// expressible as row deltas, so Sort resets the change log: pending
// ChangesSince windows come back truncated.
func (t *Table) Sort(cols []int) {
	if p := t.p.Load(); p != nil {
		p.gate.Lock()
		defer p.gate.Unlock()
		// Replay re-executes the (stable, hence deterministic) sort.
		if p.append(&walRecord{Kind: recSort, DBDelta: 2, Table: t.name,
			Ver: t.version.Load() + 1, Cols: cols, HasCols: cols != nil}) != nil {
			return
		}
	}
	t.mu.Lock()
	t.beginMutateLocked()
	next := make([]Tuple, len(t.buf))
	copy(next, t.buf)
	sort.SliceStable(next, func(i, j int) bool {
		a, b := next[i], next[j]
		if cols == nil {
			return a.Compare(b) < 0
		}
		for _, c := range cols {
			if cmp := a[c].Compare(b[c]); cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	t.buf = next
	t.publishLocked()
	t.indexes = nil
	ver := t.version.Add(1)
	t.log.resetLocked(ver, TruncateReset)
	t.mu.Unlock()
	t.mutated()
}

// Distinct removes duplicate rows, keeping first occurrences. Dropped
// duplicates are logged as deletes (order of survivors is unchanged).
func (t *Table) Distinct() {
	if p := t.p.Load(); p != nil {
		p.gate.Lock()
		defer p.gate.Unlock()
		// Replay re-executes: keeping first occurrences is deterministic.
		if p.append(&walRecord{Kind: recDistinct, DBDelta: 2, Table: t.name,
			Ver: t.version.Load() + 1}) != nil {
			return
		}
	}
	t.mu.Lock()
	t.beginMutateLocked()
	seen := make(map[string]struct{}, len(t.buf))
	out := make([]Tuple, 0, len(t.buf))
	var dropped []Tuple
	for _, row := range t.buf {
		k := row.Key()
		if _, dup := seen[k]; dup {
			dropped = append(dropped, row)
			continue
		}
		seen[k] = struct{}{}
		out = append(out, row)
	}
	t.buf = out
	t.publishLocked()
	t.indexes = nil
	ver := t.version.Add(1)
	for _, row := range dropped {
		t.log.appendLocked(Change{Ver: ver, Op: ChangeDelete, Row: row})
	}
	t.mu.Unlock()
	t.mutated()
}

// Equal reports whether two tables have equal schemas and equal rows as
// multisets (order-insensitive).
func (t *Table) Equal(u *Table) bool {
	trows, urows := t.rowsSnap(), u.rowsSnap()
	if !t.schema.Equal(u.schema) || len(trows) != len(urows) {
		return false
	}
	counts := make(map[string]int, len(trows))
	for _, row := range trows {
		counts[row.Key()]++
	}
	for _, row := range urows {
		counts[row.Key()]--
		if counts[row.Key()] < 0 {
			return false
		}
	}
	return true
}

// String renders the table with its schema and up to 20 rows, for
// debugging and error messages.
func (t *Table) String() string {
	rows := t.rowsSnap()
	var b strings.Builder
	fmt.Fprintf(&b, "%s%s [%d rows]", t.name, t.schema, len(rows))
	for i, row := range rows {
		if i == 20 {
			b.WriteString("\n  ...")
			break
		}
		b.WriteString("\n  " + row.String())
	}
	return b.String()
}
