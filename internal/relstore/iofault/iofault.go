// Package iofault is an in-memory filesystem for crash and fault
// testing of the relstore durability layer. It implements relstore.FS
// with three extras:
//
//   - injectable faults: short writes, fsync errors, and failed renames,
//     armed as countdowns so a test can target "the Nth write from now";
//   - Image(), a deep copy of the current file set — the disk as a crash
//     at this instant would leave it (writes are applied synchronously,
//     so an image is always write-ordered);
//   - Truncate(), to model the torn tail a mid-record crash leaves.
//
// Everything is safe for concurrent use.
package iofault

import (
	"fmt"
	"os"
	"sync"

	"github.com/aigrepro/aig/internal/relstore"
)

var _ relstore.FS = (*FS)(nil)

// FS is the in-memory fault-injecting filesystem.
type FS struct {
	mu    sync.Mutex
	files map[string][]byte

	// Fault countdowns: at 1 the next matching operation fails (short
	// writes persist half their payload first); 0 is disarmed.
	shortWriteIn int
	syncErrIn    int
	renameErrIn  int
}

// New returns an empty filesystem.
func New() *FS {
	return &FS{files: make(map[string][]byte)}
}

// InjectShortWrite arms a fault: counting from now, the n-th file write
// persists only half its bytes and returns an error.
func (f *FS) InjectShortWrite(n int) {
	f.mu.Lock()
	f.shortWriteIn = n
	f.mu.Unlock()
}

// InjectSyncError arms a fault: the n-th Sync (file or directory) from
// now fails.
func (f *FS) InjectSyncError(n int) {
	f.mu.Lock()
	f.syncErrIn = n
	f.mu.Unlock()
}

// InjectRenameError arms a fault: the n-th Rename from now fails without
// renaming — the old destination, if any, survives intact (a torn
// rename, as a crash before the directory update would leave it).
func (f *FS) InjectRenameError(n int) {
	f.mu.Lock()
	f.renameErrIn = n
	f.mu.Unlock()
}

// fire decrements a countdown and reports whether it hit zero now.
func fire(counter *int) bool {
	if *counter == 0 {
		return false
	}
	*counter--
	return *counter == 0
}

// Image returns a deep copy of the current file set: the crash-
// consistent state a power loss at this instant would leave (modulo
// flushing, which the in-memory model treats as immediate).
func (f *FS) Image() *FS {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := New()
	for name, b := range f.files {
		cp := make([]byte, len(b))
		copy(cp, b)
		out.files[name] = cp
	}
	return out
}

// Bytes returns a copy of the named file's content (nil if absent).
func (f *FS) Bytes(name string) []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	b, ok := f.files[name]
	if !ok {
		return nil
	}
	cp := make([]byte, len(b))
	copy(cp, b)
	return cp
}

// Truncate cuts the named file to n bytes, modelling a torn tail.
func (f *FS) Truncate(name string, n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if b, ok := f.files[name]; ok && int64(len(b)) > n {
		f.files[name] = b[:n:n]
	}
}

// Exists reports whether the named file exists.
func (f *FS) Exists(name string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, ok := f.files[name]
	return ok
}

// OpenAppend implements relstore.FS.
func (f *FS) OpenAppend(name string) (relstore.File, int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.files[name]; !ok {
		f.files[name] = nil
	}
	return &File{fs: f, name: name}, int64(len(f.files[name])), nil
}

// Create implements relstore.FS.
func (f *FS) Create(name string) (relstore.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.files[name] = nil
	return &File{fs: f, name: name}, nil
}

// ReadFile implements relstore.FS.
func (f *FS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	b, ok := f.files[name]
	if !ok {
		return nil, fmt.Errorf("iofault: %s: %w", name, os.ErrNotExist)
	}
	cp := make([]byte, len(b))
	copy(cp, b)
	return cp, nil
}

// Rename implements relstore.FS.
func (f *FS) Rename(oldname, newname string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if fire(&f.renameErrIn) {
		return fmt.Errorf("iofault: injected rename error %s -> %s", oldname, newname)
	}
	b, ok := f.files[oldname]
	if !ok {
		return fmt.Errorf("iofault: %s: %w", oldname, os.ErrNotExist)
	}
	f.files[newname] = b
	delete(f.files, oldname)
	return nil
}

// Remove implements relstore.FS.
func (f *FS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.files, name)
	return nil
}

// SyncDir implements relstore.FS.
func (f *FS) SyncDir() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if fire(&f.syncErrIn) {
		return fmt.Errorf("iofault: injected directory sync error")
	}
	return nil
}

// File is an open file of an FS.
type File struct {
	fs     *FS
	name   string
	closed bool
}

// Write appends to the file, honouring an armed short-write fault.
func (w *File) Write(p []byte) (int, error) {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	if w.closed {
		return 0, fmt.Errorf("iofault: write to closed file %s", w.name)
	}
	if fire(&w.fs.shortWriteIn) {
		n := len(p) / 2
		w.fs.files[w.name] = append(w.fs.files[w.name], p[:n]...)
		return n, fmt.Errorf("iofault: injected short write on %s (%d of %d bytes)", w.name, n, len(p))
	}
	w.fs.files[w.name] = append(w.fs.files[w.name], p...)
	return len(p), nil
}

// Sync honours an armed fsync fault.
func (w *File) Sync() error {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	if fire(&w.fs.syncErrIn) {
		return fmt.Errorf("iofault: injected fsync error on %s", w.name)
	}
	return nil
}

// Truncate cuts the file; later writes append past the cut.
func (w *File) Truncate(size int64) error {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	if b := w.fs.files[w.name]; int64(len(b)) > size {
		w.fs.files[w.name] = b[:size:size]
	}
	return nil
}

// Close marks the handle closed.
func (w *File) Close() error {
	w.fs.mu.Lock()
	w.closed = true
	w.fs.mu.Unlock()
	return nil
}
