package relstore

import "testing"

// newVersionedDB builds a database with one registered two-column table.
func newVersionedDB(t *testing.T) (*Database, *Table) {
	t.Helper()
	db := NewDatabase("DB1")
	tab := db.CreateTable("patient", MustSchema("SSN:string", "pname:string"))
	if err := tab.InsertValues("s1", "alice"); err != nil {
		t.Fatal(err)
	}
	return db, tab
}

func TestVersionBumpsOnMutations(t *testing.T) {
	db, tab := newVersionedDB(t)

	steps := []struct {
		name string
		op   func()
	}{
		{"Insert", func() { tab.MustInsert(Tuple{String("s2"), String("bob")}) }},
		{"InsertValues", func() { must(tab.InsertValues("s3", "carol")) }},
		{"Sort", func() { tab.Sort(nil) }},
		{"Distinct", func() { tab.Distinct() }},
		{"AddTable", func() { db.AddTable(NewTable("extra", MustSchema("x:int"))) }},
		{"CreateTable", func() { db.CreateTable("extra2", MustSchema("y:int")) }},
		{"DropTable", func() { db.DropTable("extra") }},
		{"BumpVersion", func() { db.BumpVersion() }},
	}
	for _, s := range steps {
		before := db.Version()
		s.op()
		if after := db.Version(); after <= before {
			t.Errorf("%s: version %d -> %d, want a bump", s.name, before, after)
		}
	}
}

func TestVersionBumpsThroughLateRegisteredTable(t *testing.T) {
	// A table built standalone and registered afterwards must still bump
	// the database on subsequent inserts.
	db := NewDatabase("DB1")
	tab := NewTable("billing", MustSchema("trId:string", "price:int"))
	tab.MustInsert(Tuple{String("t1"), Int(100)}) // pre-registration: no db yet
	db.AddTable(tab)
	before := db.Version()
	tab.MustInsert(Tuple{String("t2"), Int(250)})
	if after := db.Version(); after <= before {
		t.Fatalf("insert into registered table did not bump: %d -> %d", before, after)
	}
}

func TestVersionStableOnReads(t *testing.T) {
	db, tab := newVersionedDB(t)
	before := db.Version()

	if _, err := db.Table("patient"); err != nil {
		t.Fatal(err)
	}
	db.HasTable("patient")
	db.TableNames()
	tab.Len()
	tab.Rows()
	tab.Row(0)
	tab.Schema()
	tab.Lookup([]int{0}, Tuple{String("s1")})
	tab.LookupKey([]int{1}, Tuple{String("alice")}.Key())
	tab.DistinctCount(0)
	tab.ByteSize()
	tab.Equal(tab.Clone())
	_ = tab.String()

	if after := db.Version(); after != before {
		t.Fatalf("reads moved the version: %d -> %d", before, after)
	}
}

func TestVersionCloneIsIndependent(t *testing.T) {
	db, _ := newVersionedDB(t)
	clone := db.Clone()
	if clone.Version() != 0 {
		t.Fatalf("clone starts at version %d, want 0", clone.Version())
	}
	origBefore := db.Version()
	ct, err := clone.Table("patient")
	if err != nil {
		t.Fatal(err)
	}
	ct.MustInsert(Tuple{String("s9"), String("zoe")})
	if clone.Version() == 0 {
		t.Fatal("mutating the clone's table did not bump the clone")
	}
	if db.Version() != origBefore {
		t.Fatalf("mutating the clone bumped the original: %d -> %d", origBefore, db.Version())
	}
}

func TestVersionSeqlockParity(t *testing.T) {
	db, tab := newVersionedDB(t)
	if !db.Quiesced() {
		t.Fatal("quiescent database reports a mutation in flight")
	}
	// A probe hook registered after the database's own hooks observes the
	// version mid-mutation: it must be odd (write in flight), and land
	// even again once the mutation is complete.
	var during []uint64
	tab.hookMutations(func() { during = append(during, db.Version()) }, func() {})
	tab.MustInsert(Tuple{String("s4"), String("dave")})
	if len(during) != 1 || during[0]%2 == 0 {
		t.Fatalf("version during mutation = %v, want one odd value", during)
	}
	if v := db.Version(); v%2 != 0 {
		t.Fatalf("version %d after mutation, want even", v)
	}
	tab.Sort(nil)
	tab.Distinct()
	if _, err := tab.DeleteAt(0); err != nil {
		t.Fatal(err)
	}
	if v := db.Version(); v%2 != 0 {
		t.Fatalf("version %d after mutation burst, want even", v)
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
