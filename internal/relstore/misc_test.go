package relstore

import (
	"strings"
	"testing"
)

func TestValueString(t *testing.T) {
	if Int(5).String() != "5" || String("x").String() != "'x'" || Null.String() != "NULL" {
		t.Errorf("Value.String: %s %s %s", Int(5), String("x"), Null)
	}
}

func TestSchemaProjectAndString(t *testing.T) {
	s := MustSchema("a:int", "b:string", "c:string")
	p := s.Project([]int{2, 0})
	if len(p) != 2 || p[0].Name != "c" || p[1].Name != "a" {
		t.Errorf("Project = %v", p)
	}
	if got := s.String(); got != "(a:int, b:string, c:string)" {
		t.Errorf("Schema.String = %q", got)
	}
	if s.Equal(p) || !s.Equal(MustSchema("a:int", "b:string", "c:string")) {
		t.Error("Schema.Equal wrong")
	}
	if s.Equal(MustSchema("a:int", "b:string", "c:int")) {
		t.Error("kind-differing schemas Equal")
	}
}

func TestTableMisc(t *testing.T) {
	tbl := NewTable("t", MustSchema("k:string", "n:int"))
	tbl.MustInsert(Tuple{String("a"), Int(1)})
	tbl.MustInsert(Tuple{String("b"), Int(2)})
	if tbl.Schema().String() != "(k:string, n:int)" {
		t.Errorf("Schema() = %v", tbl.Schema())
	}
	if len(tbl.Rows()) != 2 {
		t.Errorf("Rows() = %d", len(tbl.Rows()))
	}
	if got := tbl.LookupKey([]int{0}, String("b").Key()); len(got) != 1 || got[0] != 1 {
		t.Errorf("LookupKey = %v", got)
	}
	if tbl.ByteSize() != tbl.Row(0).ByteSize()+tbl.Row(1).ByteSize() {
		t.Error("Table.ByteSize inconsistent with row sizes")
	}
	if s := tbl.String(); !strings.Contains(s, "t(k:string, n:int) [2 rows]") {
		t.Errorf("Table.String = %q", s)
	}
	// Truncated rendering beyond 20 rows.
	for i := 0; i < 25; i++ {
		tbl.MustInsert(Tuple{String("x"), Int(int64(i))})
	}
	if s := tbl.String(); !strings.Contains(s, "...") {
		t.Error("Table.String does not truncate")
	}
	// Sort by a column subset.
	tbl.Sort([]int{1})
	if tbl.Row(0)[1].AsInt() > tbl.Row(1)[1].AsInt() {
		t.Error("Sort by column subset failed")
	}
}

func TestMustInsertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustInsert with bad tuple did not panic")
		}
	}()
	NewTable("t", MustSchema("a:int")).MustInsert(Tuple{String("no")})
}

func TestTupleStringAndByteSize(t *testing.T) {
	tup := Tuple{Int(1), String("ab"), Null}
	if tup.String() != "(1, 'ab', NULL)" {
		t.Errorf("Tuple.String = %q", tup.String())
	}
	if tup.ByteSize() != 8+6+1 {
		t.Errorf("Tuple.ByteSize = %d", tup.ByteSize())
	}
}

func TestDatabaseClone(t *testing.T) {
	db := NewDatabase("D")
	tbl := db.CreateTable("t", MustSchema("a:int"))
	tbl.MustInsert(Tuple{Int(1)})
	cp := db.Clone()
	cpt, err := cp.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	cpt.MustInsert(Tuple{Int(2)})
	if tbl.Len() != 1 || cpt.Len() != 2 {
		t.Error("Database.Clone not deep")
	}
}
