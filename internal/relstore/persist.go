package relstore

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
)

// FsyncMode selects when the write-ahead log is fsynced.
type FsyncMode uint8

const (
	// FsyncNever leaves flushing to the operating system: appends are
	// plain writes. A crash may lose the unflushed tail of the log, but
	// recovery still lands on a consistent prefix of the history.
	FsyncNever FsyncMode = iota
	// FsyncAlways fsyncs after every appended record: an acknowledged
	// mutation survives power loss.
	FsyncAlways
)

// String returns "never" or "always".
func (m FsyncMode) String() string {
	if m == FsyncAlways {
		return "always"
	}
	return "never"
}

// ParseFsyncMode parses the -fsync flag values "never" and "always".
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch s {
	case "never":
		return FsyncNever, nil
	case "always":
		return FsyncAlways, nil
	default:
		return FsyncNever, fmt.Errorf("relstore: fsync mode %q (want never or always)", s)
	}
}

// DefaultSnapshotEvery is the automatic snapshot cadence: a snapshot is
// taken after this many WAL records unless configured otherwise.
const DefaultSnapshotEvery = 4096

// PersistOptions configures the durability layer of one database.
type PersistOptions struct {
	// Dir is the state directory on the OS filesystem; ignored when FS
	// is set.
	Dir string
	// FS overrides the filesystem, for fault injection.
	FS FS
	// Fsync is the WAL flushing policy.
	Fsync FsyncMode
	// SnapshotEvery is the number of WAL records between automatic
	// snapshots; 0 means DefaultSnapshotEvery, negative disables
	// automatic snapshots (explicit Snapshot calls still work).
	SnapshotEvery int
}

func (o PersistOptions) fs() FS {
	if o.FS != nil {
		return o.FS
	}
	if o.Dir != "" {
		return DirFS(o.Dir)
	}
	return nil
}

func (o PersistOptions) snapEvery() int {
	if o.SnapshotEvery == 0 {
		return DefaultSnapshotEvery
	}
	return o.SnapshotEvery
}

// errPersistClosed is the sticky error of a cleanly closed persister.
var errPersistClosed = errors.New("relstore: persistence closed")

// Persister journals one database: every mutation of a registered table
// (and every catalog-level change) appends a WAL record before any of
// its effects become visible, and periodic snapshots bound replay time.
//
// The persister owns a database-wide gate mutex that every persisted
// mutation acquires before the table lock and holds until the mutation
// is fully applied (the seqlock version even again). The gate gives the
// WAL a total order identical to the apply order, and makes a snapshot
// taken under it a globally consistent cut. Unpersisted databases never
// touch the gate, so the in-memory fast path is unchanged.
//
// Failure is sticky: after the first append or sync error the database
// stops accepting mutations (reads still serve), preserving the
// invariant that the in-memory state is exactly the WAL's valid prefix.
type Persister struct {
	db   *Database
	fs   FS
	mode FsyncMode

	gate sync.Mutex

	// All fields below are guarded by gate.
	seq       uint64 // sequence number of the last appended record
	snapSeq   uint64 // LastSeq of the last completed snapshot
	snapEvery int
	sinceSnap int
	wal       File
	failed    error // sticky first failure
	snapErr   error // last snapshot failure (journaling continues)
}

// Persist attaches a write-ahead durability layer to the database: its
// current state is snapshotted and every later mutation is journaled.
// The database must be quiescent (no in-flight mutations) when Persist
// is called; typical callers attach at startup, right after loading.
func (db *Database) Persist(opts PersistOptions) (*Persister, error) {
	fs := opts.fs()
	if fs == nil {
		return nil, errors.New("relstore: PersistOptions needs Dir or FS")
	}
	p := &Persister{db: db, fs: fs, mode: opts.Fsync, snapEvery: opts.snapEvery()}
	p.gate.Lock()
	defer p.gate.Unlock()
	if err := p.snapshotLocked(); err != nil {
		return nil, err
	}
	db.attach(p)
	return p, nil
}

// HasPersistedState reports whether the options point at an existing
// snapshot or WAL — whether Recover would find anything.
func HasPersistedState(opts PersistOptions) bool {
	fs := opts.fs()
	if fs == nil {
		return false
	}
	for _, name := range []string{SnapshotFile, WALFile} {
		if _, err := fs.ReadFile(name); err == nil {
			return true
		}
	}
	return false
}

// fail records the first failure and returns it; every later append
// fails fast with the same error.
func (p *Persister) fail(err error) error {
	if p.failed == nil {
		p.failed = err
		metricWALFailures.Inc()
	}
	return p.failed
}

// append journals one record. Called with the gate held, before the
// mutation applies; an error means the mutation must not apply.
func (p *Persister) append(rec *walRecord) error {
	if p.failed != nil {
		return p.failed
	}
	// An automatic snapshot that came due on the previous append is taken
	// now, before this record is journaled: at this point every record
	// <= p.seq is fully applied (the gate is held through each apply), so
	// the cut is consistent. Taking it inside the previous append would
	// snapshot mid-mutation — the record journaled but not yet applied —
	// and the rotation would lose it.
	if p.snapEvery > 0 && p.sinceSnap >= p.snapEvery {
		if err := p.snapshotLocked(); err != nil {
			// A failed snapshot does not lose history: the previous
			// snapshot and the unrotated WAL still cover everything, so
			// journaling continues and the error is only reported.
			p.snapErr = err
			if p.failed != nil {
				return p.failed
			}
		}
	}
	rec.Seq = p.seq + 1
	buf, err := encodeFrame(rec)
	if err != nil {
		return p.fail(fmt.Errorf("relstore: wal encode: %w", err))
	}
	n, err := p.wal.Write(buf)
	if err == nil && n != len(buf) {
		err = fmt.Errorf("short write (%d of %d bytes)", n, len(buf))
	}
	if err != nil {
		return p.fail(fmt.Errorf("relstore: wal append: %w", err))
	}
	if p.mode == FsyncAlways {
		if err := p.wal.Sync(); err != nil {
			return p.fail(fmt.Errorf("relstore: wal fsync: %w", err))
		}
	}
	p.seq++
	metricWALAppends.Inc()
	metricWALBytes.Add(int64(len(buf)))
	p.sinceSnap++
	return nil
}

// snapshotLocked writes a full-state snapshot and rotates the WAL.
// Called with the gate held, so the database is quiescent and the dump
// is a consistent cut at LastSeq = p.seq.
//
// Atomicity protocol: the snapshot is written to a temporary name,
// fsynced, renamed over the previous snapshot, and the directory
// fsynced; only then is the WAL rotated the same way (temp header file,
// fsync, rename, directory fsync). A crash anywhere in between leaves
// either the old snapshot with the old WAL, or the new snapshot with a
// WAL whose surviving records recovery skips by sequence number.
func (p *Persister) snapshotLocked() error {
	snap := walSnapshot{
		Magic:     snapMagic,
		Name:      p.db.name,
		DBVersion: p.db.version.Load(),
		LastSeq:   p.seq,
	}
	p.db.mu.RLock()
	names := make([]string, 0, len(p.db.tables))
	for n := range p.db.tables {
		names = append(names, n)
	}
	tables := make([]*Table, 0, len(names))
	for _, n := range names {
		tables = append(tables, p.db.tables[n])
	}
	p.db.mu.RUnlock()
	for _, t := range tables {
		snap.Tables = append(snap.Tables, t.captureState())
	}

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&snap); err != nil {
		return fmt.Errorf("relstore: snapshot encode: %w", err)
	}
	if err := p.writeFileAtomic(snapTmpFile, SnapshotFile, appendFrame(nil, buf.Bytes())); err != nil {
		metricSnapshotFailures.Inc()
		return fmt.Errorf("relstore: snapshot: %w", err)
	}
	if err := p.rotateWALLocked(); err != nil {
		// The snapshot landed but the new WAL did not: without a log to
		// append to, accepting further mutations would lose them.
		metricSnapshotFailures.Inc()
		return p.fail(fmt.Errorf("relstore: wal rotate: %w", err))
	}
	p.snapSeq = p.seq
	p.sinceSnap = 0
	metricSnapshots.Inc()
	return nil
}

// writeFileAtomic writes content to tmp, fsyncs it, renames it to final
// and fsyncs the directory. On failure the previous final file is
// untouched.
func (p *Persister) writeFileAtomic(tmp, final string, content []byte) error {
	f, err := p.fs.Create(tmp)
	if err != nil {
		return err
	}
	n, err := f.Write(content)
	if err == nil && n != len(content) {
		err = fmt.Errorf("short write (%d of %d bytes)", n, len(content))
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		p.fs.Remove(tmp)
		return err
	}
	if err := p.fs.Rename(tmp, final); err != nil {
		p.fs.Remove(tmp)
		return err
	}
	return p.fs.SyncDir()
}

// rotateWALLocked replaces the WAL with a fresh one whose header starts
// past everything the just-written snapshot covers, then reopens it for
// appending.
func (p *Persister) rotateWALLocked() error {
	hdr, err := encodeFrame(&walHeader{Magic: walMagic, Name: p.db.name, StartSeq: p.seq + 1})
	if err != nil {
		return err
	}
	if err := p.writeFileAtomic(walTmpFile, WALFile, hdr); err != nil {
		return err
	}
	if p.wal != nil {
		p.wal.Close()
		p.wal = nil
	}
	f, _, err := p.fs.OpenAppend(WALFile)
	if err != nil {
		return err
	}
	p.wal = f
	return nil
}

// Snapshot forces a snapshot plus WAL rotation now.
func (p *Persister) Snapshot() error {
	p.gate.Lock()
	defer p.gate.Unlock()
	if p.failed != nil {
		return p.failed
	}
	return p.snapshotLocked()
}

// Sync flushes the WAL regardless of the fsync mode.
func (p *Persister) Sync() error {
	p.gate.Lock()
	defer p.gate.Unlock()
	if p.failed != nil {
		return p.failed
	}
	if p.wal == nil {
		return nil
	}
	return p.wal.Sync()
}

// Err returns the sticky failure, or nil while the journal is healthy.
func (p *Persister) Err() error {
	p.gate.Lock()
	defer p.gate.Unlock()
	if p.failed != nil {
		return p.failed
	}
	return p.snapErr
}

// Seq returns the sequence number of the last journaled record.
func (p *Persister) Seq() uint64 {
	p.gate.Lock()
	defer p.gate.Unlock()
	return p.seq
}

// SnapshotSeq returns the WAL watermark of the last completed snapshot.
func (p *Persister) SnapshotSeq() uint64 {
	p.gate.Lock()
	defer p.gate.Unlock()
	return p.snapSeq
}

// Close takes a final snapshot (making the next recovery replay-free),
// closes the WAL and detaches from the database, which reverts to plain
// in-memory operation.
func (p *Persister) Close() error {
	p.gate.Lock()
	defer p.gate.Unlock()
	var err error
	if p.failed == nil {
		err = p.snapshotLocked()
		p.fail(errPersistClosed)
	}
	if p.wal != nil {
		if cerr := p.wal.Close(); err == nil && cerr != nil {
			err = cerr
		}
		p.wal = nil
	}
	p.db.detach(p)
	return err
}
