package relstore

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleTable(t *testing.T) *Table {
	t.Helper()
	tbl := NewTable("patient", MustSchema("SSN:int", "pname:string", "policy:string"))
	tbl.MustInsert(Tuple{Int(1), String("alice"), String("gold")})
	tbl.MustInsert(Tuple{Int(2), String("bob"), String("silver")})
	tbl.MustInsert(Tuple{Int(3), String("carol"), String("gold")})
	return tbl
}

func TestSchemaParse(t *testing.T) {
	s, err := ParseSchema([]string{"a:int", "b", "c:string"})
	if err != nil {
		t.Fatal(err)
	}
	want := Schema{{"a", KindInt}, {"b", KindString}, {"c", KindString}}
	if !s.Equal(want) {
		t.Errorf("ParseSchema = %v, want %v", s, want)
	}
	if _, err := ParseSchema([]string{"a:int", "a:string"}); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := ParseSchema([]string{":int"}); err == nil {
		t.Error("empty column name accepted")
	}
	if _, err := ParseSchema([]string{"a:bogus"}); err == nil {
		t.Error("bogus kind accepted")
	}
}

func TestSchemaColumnIndex(t *testing.T) {
	s := MustSchema("a:int", "b:string")
	if s.ColumnIndex("a") != 0 || s.ColumnIndex("b") != 1 || s.ColumnIndex("z") != -1 {
		t.Errorf("ColumnIndex wrong: %d %d %d", s.ColumnIndex("a"), s.ColumnIndex("b"), s.ColumnIndex("z"))
	}
	if !s.HasColumn("a") || s.HasColumn("z") {
		t.Error("HasColumn wrong")
	}
}

func TestSchemaConcatDisambiguates(t *testing.T) {
	s := MustSchema("a:int", "b:string").Concat(MustSchema("a:string", "c:int"))
	names := s.Names()
	want := []string{"a", "b", "a_2", "c"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("Concat names = %v, want %v", names, want)
	}
}

func TestSchemaValidate(t *testing.T) {
	s := MustSchema("a:int", "b:string")
	if err := s.Validate(Tuple{Int(1), String("x")}); err != nil {
		t.Errorf("valid tuple rejected: %v", err)
	}
	if err := s.Validate(Tuple{Null, Null}); err != nil {
		t.Errorf("null tuple rejected: %v", err)
	}
	if err := s.Validate(Tuple{String("1"), String("x")}); err == nil {
		t.Error("kind mismatch accepted")
	}
	if err := s.Validate(Tuple{Int(1)}); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestTableInsertAndLookup(t *testing.T) {
	tbl := sampleTable(t)
	if tbl.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tbl.Len())
	}
	rows := tbl.Lookup([]int{2}, Tuple{String("gold")})
	if len(rows) != 2 {
		t.Fatalf("Lookup(policy=gold) = %d rows, want 2", len(rows))
	}
	if got := tbl.Row(rows[0])[1].AsString(); got != "alice" {
		t.Errorf("first gold patient = %q, want alice", got)
	}
	// Index invalidation after insert.
	tbl.MustInsert(Tuple{Int(4), String("dan"), String("gold")})
	if got := len(tbl.Lookup([]int{2}, Tuple{String("gold")})); got != 3 {
		t.Errorf("after insert Lookup = %d rows, want 3", got)
	}
}

func TestTableInsertRejectsBadTuples(t *testing.T) {
	tbl := sampleTable(t)
	if err := tbl.Insert(Tuple{String("oops"), String("x"), String("y")}); err == nil {
		t.Error("kind-mismatched insert accepted")
	}
	if err := tbl.Insert(Tuple{Int(9)}); err == nil {
		t.Error("short insert accepted")
	}
}

func TestTableInsertValues(t *testing.T) {
	tbl := NewTable("t", MustSchema("a:int", "b:string"))
	if err := tbl.InsertValues(1, "x"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.InsertValues("2", "y"); err != nil { // int parsed from string
		t.Fatal(err)
	}
	if err := tbl.InsertValues(nil, "z"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.InsertValues(Int(4), String("w")); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 4 || tbl.Row(1)[0].AsInt() != 2 {
		t.Errorf("InsertValues produced %v", tbl)
	}
	if err := tbl.InsertValues(1); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := tbl.InsertValues(1.5, "x"); err == nil {
		t.Error("unsupported type accepted")
	}
}

func TestTableDistinctAndSort(t *testing.T) {
	tbl := NewTable("t", MustSchema("a:int"))
	for _, v := range []int64{3, 1, 2, 1, 3} {
		tbl.MustInsert(Tuple{Int(v)})
	}
	tbl.Distinct()
	if tbl.Len() != 3 {
		t.Fatalf("Distinct left %d rows, want 3", tbl.Len())
	}
	tbl.Sort(nil)
	got := []int64{tbl.Row(0)[0].AsInt(), tbl.Row(1)[0].AsInt(), tbl.Row(2)[0].AsInt()}
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("Sort produced %v", got)
	}
}

func TestTableEqualIsMultisetEqual(t *testing.T) {
	a := NewTable("a", MustSchema("x:int"))
	b := NewTable("b", MustSchema("x:int"))
	for _, v := range []int64{1, 2, 2} {
		a.MustInsert(Tuple{Int(v)})
	}
	for _, v := range []int64{2, 1, 2} {
		b.MustInsert(Tuple{Int(v)})
	}
	if !a.Equal(b) {
		t.Error("permuted tables not Equal")
	}
	b.MustInsert(Tuple{Int(2)})
	if a.Equal(b) {
		t.Error("different-cardinality tables Equal")
	}
	c := NewTable("c", MustSchema("x:int"))
	for _, v := range []int64{1, 1, 2} {
		c.MustInsert(Tuple{Int(v)})
	}
	if a.Equal(c) {
		t.Error("different multiplicities Equal")
	}
}

func TestTableDistinctCount(t *testing.T) {
	tbl := sampleTable(t)
	if got := tbl.DistinctCount(2); got != 2 {
		t.Errorf("DistinctCount(policy) = %d, want 2", got)
	}
	if got := tbl.DistinctCount(0); got != 3 {
		t.Errorf("DistinctCount(SSN) = %d, want 3", got)
	}
}

func TestTableCloneIsDeep(t *testing.T) {
	tbl := sampleTable(t)
	cp := tbl.Clone()
	cp.MustInsert(Tuple{Int(4), String("dan"), String("gold")})
	if tbl.Len() != 3 || cp.Len() != 4 {
		t.Errorf("Clone not independent: %d vs %d", tbl.Len(), cp.Len())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := sampleTable(t)
	tbl.MustInsert(Tuple{Int(5), String("has,comma"), String("\"quoted\"")})
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("patient", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Equal(got) {
		t.Errorf("CSV round trip changed table:\n%v\n%v", tbl, got)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("t", strings.NewReader("a:bogus\n1\n")); err == nil {
		t.Error("bad header accepted")
	}
	if _, err := ReadCSV("t", strings.NewReader("a:int\nxyz\n")); err == nil {
		t.Error("bad int cell accepted")
	}
	if _, err := ReadCSV("t", strings.NewReader("a:int,b:string\n1\n")); err == nil {
		t.Error("short row accepted")
	}
}

func TestDatabaseAndCatalog(t *testing.T) {
	db := NewDatabase("DB1")
	db.AddTable(sampleTable(t))
	if !db.HasTable("patient") {
		t.Fatal("HasTable(patient) = false")
	}
	if _, err := db.Table("nope"); err == nil {
		t.Error("missing table lookup succeeded")
	}
	db.CreateTable("visitInfo", MustSchema("SSN:int", "trId:string", "date:string"))
	names := db.TableNames()
	if len(names) != 2 || names[0] != "patient" || names[1] != "visitInfo" {
		t.Errorf("TableNames = %v", names)
	}
	db.DropTable("visitInfo")
	if db.HasTable("visitInfo") {
		t.Error("DropTable did not drop")
	}

	cat := NewCatalog()
	cat.Add(db)
	if _, err := cat.Table("DB1", "patient"); err != nil {
		t.Errorf("catalog lookup failed: %v", err)
	}
	if _, err := cat.Table("DBX", "patient"); err == nil {
		t.Error("missing database lookup succeeded")
	}
	if got := cat.DatabaseNames(); len(got) != 1 || got[0] != "DB1" {
		t.Errorf("DatabaseNames = %v", got)
	}
}

func TestDatabaseSaveLoadDir(t *testing.T) {
	dir := t.TempDir()
	db := NewDatabase("DB1")
	db.AddTable(sampleTable(t))
	if err := db.SaveDir(filepath.Join(dir, "db1")); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDir("DB1", filepath.Join(dir, "db1"))
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := db.Table("patient")
	loaded, err := got.Table("patient")
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Equal(loaded) {
		t.Error("SaveDir/LoadDir round trip changed data")
	}
}

type quickTuple struct{ T Tuple }

func (quickTuple) Generate(r *rand.Rand, _ int) reflect.Value {
	n := r.Intn(5)
	tup := make(Tuple, n)
	for i := range tup {
		tup[i] = randomValue(r)
	}
	return reflect.ValueOf(quickTuple{T: tup})
}

// Property: Tuple.Key is injective on tuples (distinct tuples get distinct
// keys, equal tuples get equal keys).
func TestTupleKeyProperty(t *testing.T) {
	f := func(a, b quickTuple) bool {
		return a.T.Equal(b.T) == (a.T.Key() == b.T.Key())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Compare is a total order consistent with Equal.
func TestTupleCompareProperty(t *testing.T) {
	f := func(a, b quickTuple) bool {
		c1, c2 := a.T.Compare(b.T), b.T.Compare(a.T)
		return c1 == -c2 && (c1 == 0) == a.T.Equal(b.T)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTupleProjectConcat(t *testing.T) {
	tup := Tuple{Int(1), String("a"), Int(3)}
	p := tup.Project([]int{2, 0})
	if !p.Equal(Tuple{Int(3), Int(1)}) {
		t.Errorf("Project = %v", p)
	}
	c := p.Concat(Tuple{String("z")})
	if !c.Equal(Tuple{Int(3), Int(1), String("z")}) {
		t.Errorf("Concat = %v", c)
	}
	if tup.KeyOn([]int{2, 0}) != p.Key() {
		t.Error("KeyOn disagrees with Project().Key()")
	}
}
