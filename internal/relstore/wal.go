package relstore

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
)

// Write-ahead log file format. The log is a sequence of frames; each
// frame is
//
//	4 bytes  big-endian payload length
//	4 bytes  big-endian IEEE CRC32 of the payload
//	n bytes  gob-encoded payload
//
// The first frame's payload is a walHeader; every later frame is one
// walRecord. Each record is encoded with a fresh gob encoder so frames
// are self-contained: recovery can decode any prefix of the file without
// stream state, and the first frame that fails its length or CRC check
// marks the torn tail of a crashed writer — everything before it is, by
// construction, a complete prefix of the mutation history.

// WALFile and SnapshotFile are the file names the durability layer uses
// inside its FS; exported so harnesses can read and truncate them.
const (
	WALFile      = "wal.log"
	walTmpFile   = "wal.tmp"
	SnapshotFile = "snapshot.gob"
	snapTmpFile  = "snapshot.tmp"
)

const (
	walMagic  = "AIGWAL1"
	snapMagic = "AIGSNAP1"
)

const frameHeaderSize = 8

// errTornFrame marks the end of the valid prefix: an incomplete or
// CRC-corrupt frame, exactly what a crash mid-append leaves behind.
var errTornFrame = errors.New("relstore: torn wal frame")

// appendFrame frames a payload onto dst.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// encodeFrame gob-encodes v and frames it.
func encodeFrame(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return appendFrame(nil, buf.Bytes()), nil
}

// readFrame reads the frame starting at off, returning its payload and
// the offset just past it. An incomplete or checksum-corrupt frame
// yields errTornFrame.
func readFrame(b []byte, off int64) (payload []byte, end int64, err error) {
	if off < 0 || int64(len(b))-off < frameHeaderSize {
		return nil, 0, errTornFrame
	}
	n := int64(binary.BigEndian.Uint32(b[off : off+4]))
	sum := binary.BigEndian.Uint32(b[off+4 : off+8])
	start := off + frameHeaderSize
	if int64(len(b))-start < n {
		return nil, 0, errTornFrame
	}
	payload = b[start : start+n]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, 0, errTornFrame
	}
	return payload, start + n, nil
}

// walHeader is the first frame of every WAL file. StartSeq is the
// sequence number of the first record the file may contain; records
// below it live in the snapshot the log was rotated against.
type walHeader struct {
	Magic    string
	Name     string
	StartSeq uint64
}

// walKind discriminates WAL record payloads.
type walKind uint8

const (
	recInsert walKind = iota + 1
	recDeleteAt
	recDeleteRows
	recSort
	recDistinct
	recLogLimit
	recAddTable
	recDropTable
	recBump
)

// walRecord is one journaled mutation. Seq numbers are contiguous per
// database. Ver is the table version the mutation produces (zero for
// records that do not advance a table version). DBDelta is how much the
// mutation advances the database's seqlock version once fully applied;
// recovery sums it so the restored database version is exactly the
// pre-crash one — the property cache stamps rely on.
type walRecord struct {
	Seq     uint64
	Kind    walKind
	DBDelta uint8
	Table   string
	Ver     uint64

	Row     []walValue // recInsert
	Index   int        // recDeleteAt
	Indices []int      // recDeleteRows, ascending row positions
	Cols    []int      // recSort
	HasCols bool       // recSort: distinguishes nil cols (all columns)
	Limit   int        // recLogLimit
	State   *walTableState
}

// walValue is Value's gob wire form (Value's fields are unexported).
type walValue struct {
	Kind uint8
	I    int64
	S    string
}

func valueToWal(v Value) walValue {
	return walValue{Kind: uint8(v.kind), I: v.i, S: v.s}
}

func (w walValue) value() Value {
	return Value{kind: Kind(w.Kind), i: w.I, s: w.S}
}

func rowToWal(row Tuple) []walValue {
	out := make([]walValue, len(row))
	for i, v := range row {
		out[i] = valueToWal(v)
	}
	return out
}

func rowFromWal(row []walValue) Tuple {
	out := make(Tuple, len(row))
	for i, w := range row {
		out[i] = w.value()
	}
	return out
}

// walChange is Change's wire form.
type walChange struct {
	Ver uint64
	Op  uint8
	Row []walValue
}

// walTableState is a full dump of one table: rows, version, and the
// complete change-log state, so recovery is change-log-exact and a
// restarted source keeps answering ChangesSince for watermarks taken
// before the crash.
type walTableState struct {
	Name        string
	Schema      []string
	Rows        [][]walValue
	Version     uint64
	LogLimit    int
	LogDisabled bool
	LogMinVer   uint64
	LogCause    uint8
	Log         []walChange
}

// walSnapshot is the snapshot file's payload: every table plus the
// database version and the WAL watermark the snapshot covers.
type walSnapshot struct {
	Magic     string
	Name      string
	DBVersion uint64
	LastSeq   uint64
	Tables    []walTableState
}

// captureState dumps the table's full persistent state under its lock.
func (t *Table) captureState() walTableState {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := walTableState{
		Name:        t.name,
		Schema:      schemaSpecs(t.schema),
		Version:     t.version.Load(),
		LogLimit:    t.log.limit,
		LogDisabled: t.log.disabled,
		LogMinVer:   t.log.minVer,
		LogCause:    uint8(t.log.cause),
	}
	st.Rows = make([][]walValue, len(t.buf))
	for i, row := range t.buf {
		st.Rows[i] = rowToWal(row)
	}
	st.Log = make([]walChange, len(t.log.entries))
	for i, ch := range t.log.entries {
		st.Log[i] = walChange{Ver: ch.Ver, Op: uint8(ch.Op), Row: rowToWal(ch.Row)}
	}
	return st
}

// schemaSpecs renders a schema as the "name:kind" specs ParseSchema
// round-trips.
func schemaSpecs(s Schema) []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.String()
	}
	return out
}

// restoreTable rebuilds a table from a captured state.
func restoreTable(st walTableState) (*Table, error) {
	schema, err := ParseSchema(st.Schema)
	if err != nil {
		return nil, fmt.Errorf("relstore: restoring table %q: %w", st.Name, err)
	}
	t := NewTable(st.Name, schema)
	t.buf = make([]Tuple, len(st.Rows))
	for i, row := range st.Rows {
		t.buf[i] = rowFromWal(row)
	}
	t.publishLocked()
	t.version.Store(st.Version)
	t.log.limit = st.LogLimit
	t.log.disabled = st.LogDisabled
	t.log.minVer = st.LogMinVer
	t.log.cause = TruncateCause(st.LogCause)
	t.log.entries = make([]Change, len(st.Log))
	for i, ch := range st.Log {
		t.log.entries[i] = Change{Ver: ch.Ver, Op: ChangeOp(ch.Op), Row: rowFromWal(ch.Row)}
	}
	return t, nil
}

// InspectWAL parses a WAL image, returning the header's StartSeq and the
// end offset of every valid frame (the header first). It stops at the
// torn tail, mirroring recovery; harnesses use the offsets to pick crash
// points on frame boundaries and within the tail record.
func InspectWAL(b []byte) (startSeq uint64, frameEnds []int64, err error) {
	payload, end, ferr := readFrame(b, 0)
	if ferr != nil {
		return 0, nil, ferr
	}
	var hdr walHeader
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&hdr); err != nil {
		return 0, nil, fmt.Errorf("relstore: wal header: %w", err)
	}
	if hdr.Magic != walMagic {
		return 0, nil, fmt.Errorf("relstore: wal magic %q", hdr.Magic)
	}
	frameEnds = append(frameEnds, end)
	off := end
	for {
		_, end, ferr := readFrame(b, off)
		if ferr != nil {
			return hdr.StartSeq, frameEnds, nil
		}
		frameEnds = append(frameEnds, end)
		off = end
	}
}
