package relstore

import (
	"io"
	"os"
	"path/filepath"
)

// FS is the filesystem surface the durability layer writes through. The
// production implementation is DirFS (a directory on the operating-system
// filesystem); tests substitute the fault-injecting in-memory filesystem
// in internal/relstore/iofault. The interface is deliberately tiny: the
// write-ahead log only ever appends, snapshots only ever go through a
// whole-file write plus rename, and recovery only ever reads whole files.
type FS interface {
	// OpenAppend opens (creating if absent) a file for appending and
	// returns its current size.
	OpenAppend(name string) (File, int64, error)
	// Create opens a file for writing, truncating any previous content.
	Create(name string) (File, error)
	// ReadFile returns the file's full content. A missing file yields an
	// error satisfying errors.Is(err, os.ErrNotExist).
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes a file. Missing files are not an error.
	Remove(name string) error
	// SyncDir makes prior renames and creations durable.
	SyncDir() error
}

// File is an open file of an FS.
type File interface {
	io.Writer
	// Sync makes the file's content durable.
	Sync() error
	// Truncate cuts the file to size bytes; later writes append past the
	// cut.
	Truncate(size int64) error
	Close() error
}

// DirFS is the production FS: files inside one directory of the
// operating-system filesystem. The directory is created on first write.
type DirFS string

func (d DirFS) path(name string) string { return filepath.Join(string(d), name) }

func (d DirFS) mkdir() error { return os.MkdirAll(string(d), 0o755) }

// OpenAppend implements FS.
func (d DirFS) OpenAppend(name string) (File, int64, error) {
	if err := d.mkdir(); err != nil {
		return nil, 0, err
	}
	f, err := os.OpenFile(d.path(name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, st.Size(), nil
}

// Create implements FS.
func (d DirFS) Create(name string) (File, error) {
	if err := d.mkdir(); err != nil {
		return nil, err
	}
	return os.Create(d.path(name))
}

// ReadFile implements FS.
func (d DirFS) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(d.path(name))
}

// Rename implements FS.
func (d DirFS) Rename(oldname, newname string) error {
	return os.Rename(d.path(oldname), d.path(newname))
}

// Remove implements FS.
func (d DirFS) Remove(name string) error {
	err := os.Remove(d.path(name))
	if err != nil && os.IsNotExist(err) {
		return nil
	}
	return err
}

// SyncDir implements FS by fsyncing the directory itself, making renames
// durable on filesystems that require it.
func (d DirFS) SyncDir() error {
	f, err := os.Open(string(d))
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}
