package relstore

// Change capture: every table carries a monotonic version and a bounded
// log of row-level deltas so that incremental view maintenance can ask
// "what changed since version v?" instead of re-reading the relation.
// Operations that cannot be expressed as inserts and deletes (sorting,
// wholesale replacement) reset the log; readers that fall off the
// retained window get ChangeSet.Truncated and must fall back to a full
// refresh.

// ChangeOp is the kind of a row-level delta.
type ChangeOp uint8

const (
	// ChangeInsert records a row appended to the table.
	ChangeInsert ChangeOp = iota
	// ChangeDelete records a row removed from the table.
	ChangeDelete
)

// String returns "insert" or "delete".
func (op ChangeOp) String() string {
	if op == ChangeInsert {
		return "insert"
	}
	return "delete"
}

// Change is one row-level delta. Ver is the table version the change
// produced; a multi-row operation (DeleteWhere, Distinct) logs all its
// rows under a single version.
type Change struct {
	Ver uint64
	Op  ChangeOp
	Row Tuple
}

// ChangeSet is the answer to "what happened to this table after version
// Since?". When Truncated is true the log no longer covers the window
// (the table was sorted or replaced, the caller's version is from a
// different incarnation, or the bounded log dropped old entries) and
// Changes must be ignored in favour of a full refresh. Otherwise
// replaying Changes over the state at Since yields the state at Now.
type ChangeSet struct {
	Table     string
	Since     uint64
	Now       uint64
	Truncated bool
	Changes   []Change
}

// DefaultChangeLogLimit bounds how many row deltas a table retains when
// no explicit limit is configured.
const DefaultChangeLogLimit = 1024

// changeLog is the bounded per-table delta log. All fields are guarded
// by the owning table's mutex.
type changeLog struct {
	limit    int // 0 = DefaultChangeLogLimit, negative = logging disabled
	disabled bool
	// minVer is the version floor: the log covers (minVer, table.version].
	// Requests for older windows are truncated.
	minVer  uint64
	entries []Change
}

func (l *changeLog) capLimit() int {
	if l.limit > 0 {
		return l.limit
	}
	return DefaultChangeLogLimit
}

// appendLocked records one delta, evicting from the front when the
// bound is exceeded. Eviction moves the floor to the evicted version, so
// partially retained multi-row versions are reported truncated rather
// than half-replayed.
func (l *changeLog) appendLocked(ch Change) {
	if l.disabled {
		l.minVer = ch.Ver
		return
	}
	l.entries = append(l.entries, ch)
	for len(l.entries) > l.capLimit() {
		l.minVer = l.entries[0].Ver
		l.entries = l.entries[1:]
	}
}

// resetLocked drops the log and moves the floor to now: every window
// starting before now becomes truncated.
func (l *changeLog) resetLocked(now uint64) {
	l.minVer = now
	l.entries = nil
}

// sinceLocked collects the deltas after since, or reports truncation.
func (l *changeLog) sinceLocked(table string, since, now uint64) ChangeSet {
	cs := ChangeSet{Table: table, Since: since, Now: now}
	if since > now || since < l.minVer {
		cs.Truncated = true
		return cs
	}
	for _, ch := range l.entries {
		if ch.Ver > since {
			cs.Changes = append(cs.Changes, ch)
		}
	}
	return cs
}
