package relstore

import "fmt"

// Change capture: every table carries a monotonic version and a bounded
// log of row-level deltas so that incremental view maintenance can ask
// "what changed since version v?" instead of re-reading the relation.
// Operations that cannot be expressed as inserts and deletes (sorting,
// wholesale replacement) reset the log; readers that fall off the
// retained window get ChangeSet.Truncated and must fall back to a full
// refresh.

// ChangeOp is the kind of a row-level delta.
type ChangeOp uint8

const (
	// ChangeInsert records a row appended to the table.
	ChangeInsert ChangeOp = iota
	// ChangeDelete records a row removed from the table.
	ChangeDelete
)

// String returns "insert" or "delete".
func (op ChangeOp) String() string {
	if op == ChangeInsert {
		return "insert"
	}
	return "delete"
}

// Change is one row-level delta. Ver is the table version the change
// produced; a multi-row operation (DeleteWhere, Distinct) logs all its
// rows under a single version.
type Change struct {
	Ver uint64
	Op  ChangeOp
	Row Tuple
}

// TruncateCause explains why a ChangeSet could not cover its window.
// Consumers route on it: a rolled log means the caller simply fell
// behind and should resync, a restart means the caller's watermark is
// from an incarnation this table never reached — with durable storage
// that now only happens for sources that run without it.
type TruncateCause uint8

const (
	// TruncateNone: the window was covered; the set is not truncated.
	TruncateNone TruncateCause = iota
	// TruncateRolled: the bounded log evicted deltas the window needs.
	TruncateRolled
	// TruncateReset: the log was reset wholesale — the table was sorted,
	// replaced under its name, or delta logging was disabled.
	TruncateReset
	// TruncateRestart: the caller's watermark is ahead of the table's
	// current version, i.e. from a previous incarnation that had
	// advanced further than this one (a cold restart).
	TruncateRestart
)

// String names the cause for metrics and errors.
func (c TruncateCause) String() string {
	switch c {
	case TruncateNone:
		return "none"
	case TruncateRolled:
		return "rolled"
	case TruncateReset:
		return "reset"
	case TruncateRestart:
		return "restart"
	default:
		return "unknown"
	}
}

// ChangeSet is the answer to "what happened to this table after version
// Since?". When Truncated is true the log no longer covers the window
// (Cause says why) and Changes must be ignored in favour of a full
// refresh. Otherwise replaying Changes over the state at Since yields
// the state at Now.
type ChangeSet struct {
	Table     string
	Since     uint64
	Now       uint64
	Truncated bool
	Cause     TruncateCause
	Changes   []Change
}

// ErrLogTruncated is the typed error for a truncated delta window: the
// caller wanted deltas since Want but the table can only answer from
// its current state at Have. Cause distinguishes "the log rolled" from
// "the source restarted" so consumers can metric and handle each
// separately.
type ErrLogTruncated struct {
	Table string
	Want  uint64 // the caller's stale watermark (ChangeSet.Since)
	Have  uint64 // the table's current version (ChangeSet.Now)
	Cause TruncateCause
}

// Error implements error.
func (e *ErrLogTruncated) Error() string {
	return fmt.Sprintf("relstore: change log of %q truncated (%s): want deltas since %d, have state at %d",
		e.Table, e.Cause, e.Want, e.Have)
}

// TruncationError returns a typed *ErrLogTruncated when the set is
// truncated, nil otherwise.
func (cs ChangeSet) TruncationError() error {
	if !cs.Truncated {
		return nil
	}
	return &ErrLogTruncated{Table: cs.Table, Want: cs.Since, Have: cs.Now, Cause: cs.Cause}
}

// DefaultChangeLogLimit bounds how many row deltas a table retains when
// no explicit limit is configured.
const DefaultChangeLogLimit = 1024

// changeLog is the bounded per-table delta log. All fields are guarded
// by the owning table's mutex.
type changeLog struct {
	limit    int // 0 = DefaultChangeLogLimit, negative = logging disabled
	disabled bool
	// minVer is the version floor: the log covers (minVer, table.version].
	// Requests for older windows are truncated.
	minVer uint64
	// cause records why the floor last moved, reported on truncation.
	cause   TruncateCause
	entries []Change
}

func (l *changeLog) capLimit() int {
	if l.limit > 0 {
		return l.limit
	}
	return DefaultChangeLogLimit
}

// appendLocked records one delta, evicting from the front when the
// bound is exceeded. Eviction moves the floor to the evicted version, so
// partially retained multi-row versions are reported truncated rather
// than half-replayed.
func (l *changeLog) appendLocked(ch Change) {
	if l.disabled {
		l.minVer = ch.Ver
		l.cause = TruncateReset
		return
	}
	l.entries = append(l.entries, ch)
	for len(l.entries) > l.capLimit() {
		l.minVer = l.entries[0].Ver
		l.cause = TruncateRolled
		l.entries = l.entries[1:]
	}
}

// resetLocked drops the log and moves the floor to now: every window
// starting before now becomes truncated with the given cause.
func (l *changeLog) resetLocked(now uint64, cause TruncateCause) {
	l.minVer = now
	l.cause = cause
	l.entries = nil
}

// sinceLocked collects the deltas after since, or reports truncation.
func (l *changeLog) sinceLocked(table string, since, now uint64) ChangeSet {
	cs := ChangeSet{Table: table, Since: since, Now: now}
	if since > now {
		cs.Truncated = true
		cs.Cause = TruncateRestart
		return cs
	}
	if since < l.minVer {
		cs.Truncated = true
		cs.Cause = l.cause
		if cs.Cause == TruncateNone {
			cs.Cause = TruncateRolled
		}
		return cs
	}
	for _, ch := range l.entries {
		if ch.Ver > since {
			cs.Changes = append(cs.Changes, ch)
		}
	}
	return cs
}
