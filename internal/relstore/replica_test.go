package relstore

import (
	"sync"
	"testing"
	"time"
)

func replicaSchema(t *testing.T) Schema {
	t.Helper()
	s, err := ParseSchema([]string{"k:string", "n:int"})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestChangeSignalWakesOnMutation(t *testing.T) {
	db := NewDatabase("D")
	tab := db.CreateTable("t", replicaSchema(t))

	sig := db.ChangeSignal()
	select {
	case <-sig:
		t.Fatal("signal fired before any mutation")
	default:
	}
	if err := tab.InsertValues("a", 1); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sig:
	case <-time.After(2 * time.Second):
		t.Fatal("signal did not fire after a row mutation")
	}

	// Catalog-level operations signal too.
	sig = db.ChangeSignal()
	db.DropTable("t")
	select {
	case <-sig:
	case <-time.After(2 * time.Second):
		t.Fatal("signal did not fire after DropTable")
	}
}

func TestChangeSignalNoMissedWakeup(t *testing.T) {
	// The contract: grab the channel, read state, wait. A mutation
	// landing between grab and wait must still wake the waiter.
	db := NewDatabase("D")
	tab := db.CreateTable("t", replicaSchema(t))
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		sig := db.ChangeSignal()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tab.MustInsert(Tuple{String("x"), Int(int64(i))})
		}(i)
		select {
		case <-sig:
		case <-time.After(5 * time.Second):
			t.Error("missed wakeup")
		}
		wg.Wait()
	}
}

func TestCaptureSnapshotCertified(t *testing.T) {
	db := NewDatabase("D")
	a := db.CreateTable("a", replicaSchema(t))
	b := db.CreateTable("b", replicaSchema(t))
	a.MustInsert(Tuple{String("x"), Int(1)})
	b.MustInsert(Tuple{String("y"), Int(2)})
	b.MustInsert(Tuple{String("z"), Int(3)})

	snaps, dbv, consistent := db.CaptureSnapshot(5)
	if !consistent {
		t.Fatal("quiescent capture should certify")
	}
	if dbv != db.Version() {
		t.Fatalf("capture version %d, database at %d", dbv, db.Version())
	}
	if len(snaps) != 2 || snaps[0].Name != "a" || snaps[1].Name != "b" {
		t.Fatalf("snaps = %+v, want sorted [a b]", snaps)
	}
	if len(snaps[1].Rows) != 2 || snaps[1].Version != b.Version() {
		t.Fatalf("table b snap = %+v", snaps[1])
	}
}

func TestNewTableWithStateFloorsLog(t *testing.T) {
	rows := []Tuple{{String("a"), Int(1)}}
	tab := NewTableWithState("t", replicaSchema(t), rows, 42, TruncateRolled)
	if tab.Version() != 42 || tab.Len() != 1 {
		t.Fatalf("version=%d len=%d, want 42/1", tab.Version(), tab.Len())
	}
	// Windows from before the snapshot report the install cause.
	cs := tab.ChangesSince(40)
	if !cs.Truncated || cs.Cause != TruncateRolled {
		t.Fatalf("pre-snapshot window = %+v, want truncated (rolled)", cs)
	}
	// The snapshot version itself is a clean (empty) window.
	if cs := tab.ChangesSince(42); cs.Truncated || len(cs.Changes) != 0 {
		t.Fatalf("at-snapshot window = %+v, want empty untruncated", cs)
	}
}

func TestInstallSnapshotTableKeepsLowerVersion(t *testing.T) {
	db := NewDatabase("D")
	old := NewTableWithState("t", replicaSchema(t), nil, 100, TruncateRestart)
	if err := db.InstallSnapshotTable(old); err != nil {
		t.Fatal(err)
	}
	// An origin restart hands the mirror a LOWER version; unlike
	// AddTable, the install must keep it (watermark fidelity).
	fresh := NewTableWithState("t", replicaSchema(t), []Tuple{{String("a"), Int(1)}}, 3, TruncateRestart)
	if err := db.InstallSnapshotTable(fresh); err != nil {
		t.Fatal(err)
	}
	got, err := db.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if got.Version() != 3 {
		t.Fatalf("installed version = %d, want 3", got.Version())
	}
}

func TestApplyChangesReplaysAtOriginVersions(t *testing.T) {
	origin := NewDatabase("O")
	src := origin.CreateTable("t", replicaSchema(t))
	src.MustInsert(Tuple{String("a"), Int(1)})

	mirror := NewTableWithState("t", replicaSchema(t), []Tuple{{String("a"), Int(1)}}, src.Version(), TruncateRestart)
	base := src.Version()

	src.MustInsert(Tuple{String("b"), Int(2)})
	src.MustInsert(Tuple{String("c"), Int(3)})
	if _, err := src.DeleteAt(0); err != nil {
		t.Fatal(err)
	}
	n := src.DeleteWhere(func(r Tuple) bool { return r[1].AsInt() >= 2 }) // multi-row, one version
	if n != 2 {
		t.Fatalf("DeleteWhere removed %d, want 2", n)
	}

	cs := src.ChangesSince(base)
	if cs.Truncated {
		t.Fatalf("origin window truncated: %+v", cs)
	}
	applied, err := mirror.ApplyChanges(cs)
	if err != nil {
		t.Fatal(err)
	}
	if applied != len(cs.Changes) {
		t.Fatalf("applied %d of %d changes", applied, len(cs.Changes))
	}
	if mirror.Version() != src.Version() || !mirror.Equal(src) {
		t.Fatalf("mirror (v%d, %d rows) != origin (v%d, %d rows)",
			mirror.Version(), mirror.Len(), src.Version(), src.Len())
	}

	// Idempotence: re-applying the same window is a no-op (overlap skip).
	if n, err := mirror.ApplyChanges(cs); err != nil || n != 0 {
		t.Fatalf("re-apply = (%d, %v), want (0, nil)", n, err)
	}

	// A gap (window starting past the mirror) must be rejected, not
	// silently absorbed.
	gap := ChangeSet{Table: "t", Since: src.Version() + 5, Now: src.Version() + 6,
		Changes: []Change{{Ver: src.Version() + 6, Op: ChangeInsert, Row: Tuple{String("z"), Int(9)}}}}
	if _, err := mirror.ApplyChanges(gap); err == nil {
		t.Fatal("gap window applied without error")
	}

	// A delete for a row the mirror does not have is divergence.
	bad := ChangeSet{Table: "t", Since: mirror.Version(), Now: mirror.Version() + 1,
		Changes: []Change{{Ver: mirror.Version() + 1, Op: ChangeDelete, Row: Tuple{String("nope"), Int(0)}}}}
	if _, err := mirror.ApplyChanges(bad); err == nil {
		t.Fatal("divergent delete applied without error")
	}
}

func TestApplyChangesAdvancesEmptyWindows(t *testing.T) {
	origin := NewDatabase("O")
	src := origin.CreateTable("t", replicaSchema(t))
	src.MustInsert(Tuple{String("a"), Int(1)})
	src.MustInsert(Tuple{String("a"), Int(1)})
	mirrorRows := make([]Tuple, len(src.Rows()))
	copy(mirrorRows, src.Rows())
	mirror := NewTableWithState("t", replicaSchema(t), mirrorRows, src.Version(), TruncateRestart)

	base := src.Version()
	src.Distinct() // drops one duplicate under one version
	cs := src.ChangesSince(base)
	if _, err := mirror.ApplyChanges(cs); err != nil {
		t.Fatal(err)
	}
	if mirror.Version() != src.Version() || !mirror.Equal(src) {
		t.Fatalf("mirror diverged after multi-row version: v%d vs v%d", mirror.Version(), src.Version())
	}

	// A version advance with no row deltas (Distinct finding nothing)
	// still moves the watermark, or the subscriber re-fetches forever.
	base = src.Version()
	src.Distinct()
	cs = src.ChangesSince(base)
	if len(cs.Changes) != 0 || cs.Now == base {
		t.Fatalf("expected empty version-advancing window, got %+v", cs)
	}
	if _, err := mirror.ApplyChanges(cs); err != nil {
		t.Fatal(err)
	}
	if mirror.Version() != src.Version() {
		t.Fatalf("empty window did not advance mirror: v%d vs v%d", mirror.Version(), src.Version())
	}
}
