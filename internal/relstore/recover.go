package relstore

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
)

// Recover rebuilds a database from its persisted state — the latest
// snapshot plus the WAL tail — and re-attaches persistence so the
// journal continues where it left off.
//
// Recovery invariants:
//
//   - The recovered state is a prefix of the pre-crash mutation history:
//     the snapshot's cut plus every complete, CRC-valid WAL record after
//     it, in order, stopping at the first torn frame.
//   - Records are applied whole or not at all — a multi-row DeleteWhere
//     is one record, so a recovered change log never exposes half of a
//     mutation's deltas.
//   - Tuples, per-table versions, change logs, and the database's
//     seqlock version are restored exactly: a data-version stamp taken
//     before the crash still names the same state after it.
//   - The torn tail is truncated before the WAL reopens for appending,
//     so the valid-prefix property holds across repeated crashes.
//
// A directory with no state yields an empty database with fresh
// persistence attached, so Recover subsumes first-boot.
func Recover(name string, opts PersistOptions) (*Database, *Persister, error) {
	fs := opts.fs()
	if fs == nil {
		return nil, nil, errors.New("relstore: PersistOptions needs Dir or FS")
	}
	db := NewDatabase(name)

	snap, haveSnap, err := readSnapshot(fs, name)
	if err != nil {
		return nil, nil, err
	}
	var seq, dbVer uint64
	if haveSnap {
		for _, st := range snap.Tables {
			t, err := restoreTable(st)
			if err != nil {
				return nil, nil, err
			}
			db.AddTable(t)
		}
		seq = snap.LastSeq
		dbVer = snap.DBVersion
	}

	validOff, freshHeader, err := replayWAL(db, fs, name, seq, &seq, &dbVer)
	if err != nil {
		return nil, nil, err
	}

	// Replaying through the public mutation methods advanced the version
	// via the seqlock hooks; overwrite with the exact pre-crash value
	// (snapshot cut plus the replayed records' deltas).
	db.version.Store(dbVer)

	p := &Persister{db: db, fs: fs, mode: opts.Fsync, snapEvery: opts.snapEvery()}
	p.gate.Lock()
	defer p.gate.Unlock()
	p.seq = seq
	if haveSnap {
		p.snapSeq = snap.LastSeq
	}
	f, size, err := fs.OpenAppend(WALFile)
	if err != nil {
		return nil, nil, fmt.Errorf("relstore: reopening wal: %w", err)
	}
	if freshHeader {
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("relstore: truncating wal: %w", err)
		}
		hdr, err := encodeFrame(&walHeader{Magic: walMagic, Name: name, StartSeq: seq + 1})
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		if _, err := f.Write(hdr); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("relstore: writing wal header: %w", err)
		}
	} else if size > validOff {
		// Cut the torn tail so appended records follow the valid prefix.
		if err := f.Truncate(validOff); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("relstore: truncating wal: %w", err)
		}
		metricWALTruncations.Inc()
	}
	if err := f.Sync(); err != nil && opts.Fsync == FsyncAlways {
		f.Close()
		return nil, nil, fmt.Errorf("relstore: wal fsync: %w", err)
	}
	p.wal = f
	db.attach(p)
	metricRecoveries.Inc()
	return db, p, nil
}

// readSnapshot loads and validates the snapshot file. Missing is not an
// error (fresh start); anything unreadable is.
func readSnapshot(fs FS, name string) (walSnapshot, bool, error) {
	var snap walSnapshot
	b, err := fs.ReadFile(SnapshotFile)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return snap, false, nil
		}
		return snap, false, fmt.Errorf("relstore: reading snapshot: %w", err)
	}
	payload, _, err := readFrame(b, 0)
	if err != nil {
		return snap, false, fmt.Errorf("relstore: snapshot for %q is corrupt: %w", name, err)
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
		return snap, false, fmt.Errorf("relstore: snapshot decode: %w", err)
	}
	if snap.Magic != snapMagic {
		return snap, false, fmt.Errorf("relstore: snapshot magic %q", snap.Magic)
	}
	if snap.Name != name {
		return snap, false, fmt.Errorf("relstore: snapshot is for database %q, not %q", snap.Name, name)
	}
	return snap, true, nil
}

// replayWAL applies the WAL tail beyond the snapshot cut. It returns the
// offset just past the last valid frame and whether the WAL needs a
// fresh header (missing file, or a header torn by a crash mid-rotation —
// safe to discard because rotation only runs after a durable snapshot).
// seq and dbVer advance past each applied record.
func replayWAL(db *Database, fs FS, name string, snapSeq uint64, seq, dbVer *uint64) (validOff int64, freshHeader bool, err error) {
	b, err := fs.ReadFile(WALFile)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, true, nil
		}
		return 0, false, fmt.Errorf("relstore: reading wal: %w", err)
	}
	payload, end, ferr := readFrame(b, 0)
	if ferr != nil {
		return 0, true, nil
	}
	var hdr walHeader
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&hdr); err != nil {
		return 0, true, nil
	}
	if hdr.Magic != walMagic {
		return 0, false, fmt.Errorf("relstore: wal magic %q", hdr.Magic)
	}
	if hdr.Name != name {
		return 0, false, fmt.Errorf("relstore: wal is for database %q, not %q", hdr.Name, name)
	}
	if hdr.StartSeq > snapSeq+1 {
		return 0, false, fmt.Errorf("relstore: wal starts at seq %d but snapshot covers only through %d", hdr.StartSeq, snapSeq)
	}
	validOff = end
	next := hdr.StartSeq
	for {
		payload, end, ferr := readFrame(b, validOff)
		if ferr != nil {
			return validOff, false, nil
		}
		var rec walRecord
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			// A CRC-valid frame that does not decode is a torn tail as
			// far as safety goes: stop here and keep the prefix.
			return validOff, false, nil
		}
		if rec.Seq != next {
			return 0, false, fmt.Errorf("relstore: wal sequence gap: record %d after %d", rec.Seq, next-1)
		}
		next++
		validOff = end
		if rec.Seq <= snapSeq {
			continue // already covered by the snapshot
		}
		if err := applyRecord(db, &rec); err != nil {
			return 0, false, err
		}
		*seq = rec.Seq
		*dbVer += uint64(rec.DBDelta)
		metricWALReplayed.Inc()
	}
}

// applyRecord replays one journaled mutation against the recovering
// database. Tables have no persister attached yet, so replay does not
// re-journal. Deterministic re-execution (Sort, Distinct, DeleteWhere by
// recorded positions) reproduces the original's rows, versions and
// change-log entries exactly, which the version cross-check enforces.
func applyRecord(db *Database, rec *walRecord) error {
	table := func() (*Table, error) {
		t, err := db.Table(rec.Table)
		if err != nil {
			return nil, fmt.Errorf("relstore: wal record %d: %w", rec.Seq, err)
		}
		return t, nil
	}
	checkVer := func(t *Table) error {
		if got := t.Version(); rec.Ver != 0 && got != rec.Ver {
			return fmt.Errorf("relstore: wal record %d left table %q at version %d, want %d", rec.Seq, rec.Table, got, rec.Ver)
		}
		return nil
	}
	switch rec.Kind {
	case recInsert:
		t, err := table()
		if err != nil {
			return err
		}
		if err := t.Insert(rowFromWal(rec.Row)); err != nil {
			return fmt.Errorf("relstore: wal record %d: %w", rec.Seq, err)
		}
		return checkVer(t)
	case recDeleteAt:
		t, err := table()
		if err != nil {
			return err
		}
		if _, err := t.DeleteAt(rec.Index); err != nil {
			return fmt.Errorf("relstore: wal record %d: %w", rec.Seq, err)
		}
		return checkVer(t)
	case recDeleteRows:
		t, err := table()
		if err != nil {
			return err
		}
		t.deleteIndices(rec.Indices)
		return checkVer(t)
	case recSort:
		t, err := table()
		if err != nil {
			return err
		}
		cols := rec.Cols
		if !rec.HasCols {
			cols = nil
		}
		t.Sort(cols)
		return checkVer(t)
	case recDistinct:
		t, err := table()
		if err != nil {
			return err
		}
		t.Distinct()
		return checkVer(t)
	case recLogLimit:
		t, err := table()
		if err != nil {
			return err
		}
		t.SetChangeLogLimit(rec.Limit)
		return nil
	case recAddTable:
		if rec.State == nil {
			return fmt.Errorf("relstore: wal record %d: add-table without state", rec.Seq)
		}
		t, err := restoreTable(*rec.State)
		if err != nil {
			return err
		}
		db.AddTable(t)
		return nil
	case recDropTable:
		db.DropTable(rec.Table)
		return nil
	case recBump:
		return nil // accounted by DBDelta
	default:
		return fmt.Errorf("relstore: wal record %d has unknown kind %d", rec.Seq, rec.Kind)
	}
}
