package relstore

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{KindNull: "null", KindInt: "int", KindString: "string", Kind(9): "kind(9)"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kind
		ok   bool
	}{
		{"int", KindInt, true},
		{"INTEGER", KindInt, true},
		{" string ", KindString, true},
		{"varchar", KindString, true},
		{"text", KindString, true},
		{"null", KindNull, true},
		{"bogus", KindNull, false},
	} {
		got, err := ParseKind(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("ParseKind(%q) error = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseKind(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestValueAccessors(t *testing.T) {
	if v := Int(42); v.Kind() != KindInt || v.AsInt() != 42 || v.IsNull() {
		t.Errorf("Int(42) misbehaves: %v", v)
	}
	if v := String("x"); v.Kind() != KindString || v.AsString() != "x" {
		t.Errorf("String(x) misbehaves: %v", v)
	}
	if !Null.IsNull() {
		t.Error("Null.IsNull() = false")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AsInt on string value did not panic")
		}
	}()
	String("x").AsInt()
}

func TestValueText(t *testing.T) {
	for _, tc := range []struct {
		v    Value
		want string
	}{
		{Int(-7), "-7"},
		{String("hello"), "hello"},
		{Null, ""},
	} {
		if got := tc.v.Text(); got != tc.want {
			t.Errorf("%v.Text() = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestParseValueRoundTrip(t *testing.T) {
	for _, v := range []Value{Int(0), Int(-123), Int(99999), String(""), String("a,b"), Null} {
		got, err := ParseValue(v.Kind(), v.Text())
		if err != nil {
			t.Fatalf("ParseValue(%v, %q): %v", v.Kind(), v.Text(), err)
		}
		// Empty int text parses to Null; that's the only lossy case and only
		// for Null itself.
		if !got.Equal(v) {
			t.Errorf("round trip %v -> %q -> %v", v, v.Text(), got)
		}
	}
	if _, err := ParseValue(KindInt, "not-a-number"); err == nil {
		t.Error("ParseValue(int, junk) succeeded")
	}
}

func TestValueEqualAndCompare(t *testing.T) {
	if !Int(1).Equal(Int(1)) || Int(1).Equal(Int(2)) {
		t.Error("Int equality broken")
	}
	if !String("a").Equal(String("a")) || String("a").Equal(String("b")) {
		t.Error("String equality broken")
	}
	if Int(1).Equal(String("1")) {
		t.Error("cross-kind values compare equal")
	}
	if !Null.Equal(Null) {
		t.Error("Null != Null")
	}
	ordered := []Value{Null, Int(-5), Int(0), Int(7), String(""), String("a"), String("b")}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestValueKeyInjective(t *testing.T) {
	vals := []Value{Null, Int(1), Int(-1), String("1"), String("i1"), String(""), String("n")}
	seen := make(map[string]Value)
	for _, v := range vals {
		k := v.Key()
		if prev, dup := seen[k]; dup && !prev.Equal(v) {
			t.Errorf("Key collision: %v and %v both map to %q", prev, v, k)
		}
		seen[k] = v
	}
}

// randomValue produces an arbitrary Value for property tests.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(3) {
	case 0:
		return Int(r.Int63n(1000) - 500)
	case 1:
		letters := "abcdefgh"
		n := r.Intn(6)
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[r.Intn(len(letters))]
		}
		return String(string(b))
	default:
		return Null
	}
}

type quickValue struct{ V Value }

func (quickValue) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(quickValue{V: randomValue(r)})
}

// Property: Compare is antisymmetric and consistent with Equal.
func TestValueCompareProperties(t *testing.T) {
	f := func(a, b quickValue) bool {
		c1, c2 := a.V.Compare(b.V), b.V.Compare(a.V)
		if c1 != -c2 {
			return false
		}
		if (c1 == 0) != a.V.Equal(b.V) {
			return false
		}
		return a.V.Equal(b.V) == (a.V.Key() == b.V.Key())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: text round trip preserves equality for non-null values.
func TestValueTextRoundTripProperty(t *testing.T) {
	f := func(a quickValue) bool {
		if a.V.IsNull() {
			return true
		}
		got, err := ParseValue(a.V.Kind(), a.V.Text())
		return err == nil && got.Equal(a.V)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueByteSize(t *testing.T) {
	if Int(5).ByteSize() != 8 {
		t.Errorf("Int.ByteSize() = %d, want 8", Int(5).ByteSize())
	}
	if got := String("abc").ByteSize(); got != 7 {
		t.Errorf("String(abc).ByteSize() = %d, want 7", got)
	}
	if Null.ByteSize() != 1 {
		t.Error("Null.ByteSize() != 1")
	}
}
