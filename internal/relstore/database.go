package relstore

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Database is a named collection of tables — one of the paper's relational
// sources (DB1..DB4). Table names are unique within a database.
type Database struct {
	name string

	// version is a seqlock-style data version: any operation that can
	// change what a query over this database returns (registering or
	// dropping a table, inserting rows, reordering or deduplicating a
	// registered table) advances it, reads never do. Registered-table
	// mutations bump it twice — to an odd value before any data becomes
	// visible and back to even after — so an observer that reads an even
	// version, then data, then the same even version has proof the data
	// is exactly the state at that version. Result caches key on it and
	// rely on that proof to cache only consistent snapshots.
	version atomic.Uint64

	mu     sync.RWMutex
	tables map[string]*Table

	// persist, when set, journals catalog-level changes (AddTable,
	// DropTable, BumpVersion); registered tables journal their own
	// mutations through their individual pointers. Atomic so the
	// unpersisted fast path is a nil check without the database lock.
	persist atomic.Pointer[Persister]

	// sig wakes ChangeSignal waiters (delta-subscription fan-out) after
	// every data-version advance.
	sig changeSignal
}

// NewDatabase creates an empty database with the given name.
func NewDatabase(name string) *Database {
	return &Database{name: name, tables: make(map[string]*Table)}
}

// Name returns the database's name.
func (db *Database) Name() string { return db.name }

// Version returns the database's data version: a monotonic counter that
// increases on every mutating operation and never on reads.
func (db *Database) Version() uint64 { return db.version.Load() }

// BumpVersion advances the data version by hand — the escape hatch for
// callers that mutate table contents through means the database cannot
// observe. It advances by two to preserve the even-means-quiescent
// parity convention (such mutations cannot be bracketed anyway).
func (db *Database) BumpVersion() {
	if p := db.persist.Load(); p != nil {
		p.gate.Lock()
		defer p.gate.Unlock()
		if p.append(&walRecord{Kind: recBump, DBDelta: 2}) != nil {
			return
		}
	}
	db.version.Add(2)
	db.notifyChanged()
}

// attach wires the persister into the database and every registered
// table. Called with the gate held, on a quiescent database.
func (db *Database) attach(p *Persister) {
	db.mu.Lock()
	for _, t := range db.tables {
		t.p.Store(p)
	}
	db.mu.Unlock()
	db.persist.Store(p)
}

// detach reverts the database to plain in-memory operation.
func (db *Database) detach(p *Persister) {
	db.persist.CompareAndSwap(p, nil)
	db.mu.Lock()
	for _, t := range db.tables {
		t.p.CompareAndSwap(p, nil)
	}
	db.mu.Unlock()
}

// beginMutation and endMutation bracket a registered table's mutation:
// odd while data may be in flux, even again once the mutation is fully
// visible.
func (db *Database) beginMutation() { db.version.Add(1) }
func (db *Database) endMutation() {
	db.version.Add(1)
	db.notifyChanged()
}

// Quiesced reports whether no registered-table mutation is in flight
// at the moment of the call (the version is even).
func (db *Database) Quiesced() bool { return db.version.Load()%2 == 0 }

// AddTable registers a table. It replaces any existing table with the same
// name, which is how the mediator installs temporary parameter tables.
// The table is hooked so that its future mutations bump the database's
// data version. When a table is replaced, the newcomer's version is
// advanced past the predecessor's and its change log reset, so the
// version sequence observed under one table name stays monotonic and
// replacement shows up as a truncated delta window (full refresh).
func (db *Database) AddTable(t *Table) {
	if p := db.persist.Load(); p != nil {
		p.gate.Lock()
		defer p.gate.Unlock()
		// The incoming table's full state is journaled (not its build
		// history): replay reconstructs it wholesale, then re-runs the
		// registration below so replacement semantics match.
		st := t.captureState()
		if p.append(&walRecord{Kind: recAddTable, DBDelta: 2, Table: t.Name(), State: &st}) != nil {
			return
		}
		t.p.Store(p)
	}
	db.mu.Lock()
	prev := db.tables[t.Name()]
	db.tables[t.Name()] = t
	db.mu.Unlock()
	if prev != nil && prev != t {
		prev.p.Store(nil) // orphaned handles must not journal
		t.resetLogPast(prev.Version())
	}
	t.hookMutations(db.beginMutation, db.endMutation)
	db.version.Add(2)
	db.notifyChanged()
}

// CreateTable creates, registers and returns an empty table.
func (db *Database) CreateTable(name string, schema Schema) *Table {
	t := NewTable(name, schema)
	db.AddTable(t)
	return t
}

// DropTable removes the named table if present.
func (db *Database) DropTable(name string) {
	if p := db.persist.Load(); p != nil {
		p.gate.Lock()
		defer p.gate.Unlock()
		if !db.HasTable(name) {
			return
		}
		if p.append(&walRecord{Kind: recDropTable, DBDelta: 2, Table: name}) != nil {
			return
		}
	}
	db.mu.Lock()
	prev, present := db.tables[name]
	delete(db.tables, name)
	db.mu.Unlock()
	if present {
		prev.p.Store(nil) // orphaned handles must not journal
		db.version.Add(2)
		db.notifyChanged()
	}
}

// Table returns the named table, or an error naming the database if it is
// absent.
func (db *Database) Table(name string) (*Table, error) {
	db.mu.RLock()
	t, ok := db.tables[name]
	db.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("relstore: no table %q in database %q", name, db.name)
	}
	return t, nil
}

// HasTable reports whether the named table exists.
func (db *Database) HasTable(name string) bool {
	db.mu.RLock()
	_, ok := db.tables[name]
	db.mu.RUnlock()
	return ok
}

// TableNames returns the table names in sorted order, for deterministic
// iteration.
func (db *Database) TableNames() []string {
	db.mu.RLock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	db.mu.RUnlock()
	sort.Strings(names)
	return names
}

// TableVersions returns the current data version of every table, keyed
// by table name.
func (db *Database) TableVersions() map[string]uint64 {
	db.mu.RLock()
	out := make(map[string]uint64, len(db.tables))
	for name, t := range db.tables {
		out[name] = t.Version()
	}
	db.mu.RUnlock()
	return out
}

// ChangesSince returns the named table's row deltas after version since
// (possibly truncated). Unknown tables yield an error.
func (db *Database) ChangesSince(table string, since uint64) (ChangeSet, error) {
	t, err := db.Table(table)
	if err != nil {
		return ChangeSet{}, err
	}
	return t.ChangesSince(since), nil
}

// Clone returns a deep copy of the database. The copy starts at data
// version zero with its tables hooked to bump the copy, not the
// original.
func (db *Database) Clone() *Database {
	out := NewDatabase(db.name)
	db.mu.RLock()
	clones := make([]*Table, 0, len(db.tables))
	for _, t := range db.tables {
		clones = append(clones, t.Clone())
	}
	db.mu.RUnlock()
	for _, t := range clones {
		out.tables[t.Name()] = t
		t.hookMutations(out.beginMutation, out.endMutation)
	}
	return out
}

// Catalog maps database names to databases. The AIG evaluators resolve
// source-qualified table references like "DB1:patient" against a catalog.
type Catalog struct {
	mu  sync.RWMutex
	dbs map[string]*Database
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{dbs: make(map[string]*Database)}
}

// Add registers a database, replacing any previous one with the same name.
func (c *Catalog) Add(db *Database) {
	c.mu.Lock()
	c.dbs[db.Name()] = db
	c.mu.Unlock()
}

// Database returns the named database, or an error if absent.
func (c *Catalog) Database(name string) (*Database, error) {
	c.mu.RLock()
	db, ok := c.dbs[name]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("relstore: no database %q in catalog", name)
	}
	return db, nil
}

// Table resolves a source-qualified table reference.
func (c *Catalog) Table(dbName, tableName string) (*Table, error) {
	db, err := c.Database(dbName)
	if err != nil {
		return nil, err
	}
	return db.Table(tableName)
}

// DatabaseNames returns the registered database names in sorted order.
func (c *Catalog) DatabaseNames() []string {
	c.mu.RLock()
	names := make([]string, 0, len(c.dbs))
	for n := range c.dbs {
		names = append(names, n)
	}
	c.mu.RUnlock()
	sort.Strings(names)
	return names
}
