package source

import (
	"testing"

	"github.com/aigrepro/aig/internal/hospital"
	"github.com/aigrepro/aig/internal/relstore"
)

// TestOpenDurableSeedAndRecover is the lifecycle a durable source goes
// through: seed on first open, mutate, close; reopen recovers tuples,
// versions AND the change log, so a watermark taken before the restart
// still answers with exact deltas.
func TestOpenDurableSeedAndRecover(t *testing.T) {
	dir := t.TempDir()
	opts := DurableOptions{Dir: dir}
	seed := func() (*relstore.Database, error) {
		cat := hospital.TinyCatalog()
		return cat.Database("DB1")
	}

	db, p, err := OpenDurable("DB1", opts, seed)
	if err != nil {
		t.Fatal(err)
	}
	visits, err := db.Table("visitInfo")
	if err != nil {
		t.Fatal(err)
	}
	since := visits.Version()
	visits.MustInsert(relstore.Tuple{
		relstore.String("s9"), relstore.String("t1"), relstore.String("d1")})
	wantVer, wantRows := visits.Version(), visits.Len()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	db2, p2, err := OpenDurable("DB1", opts, nil) // seed must not be consulted
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	visits2, err := db2.Table("visitInfo")
	if err != nil {
		t.Fatal(err)
	}
	if visits2.Version() != wantVer || visits2.Len() != wantRows {
		t.Fatalf("recovered version/rows %d/%d, want %d/%d",
			visits2.Version(), visits2.Len(), wantVer, wantRows)
	}
	cs := visits2.ChangesSince(since)
	if cs.Truncated {
		t.Fatalf("pre-restart watermark fell off the log: %+v", cs)
	}
	if len(cs.Changes) != 1 {
		t.Fatalf("ChangesSince(%d) = %d changes, want 1", since, len(cs.Changes))
	}
}

// TestOpenDurableEmptySeed: nil seed opens an empty database that still
// journals and recovers.
func TestOpenDurableEmptySeed(t *testing.T) {
	dir := t.TempDir()
	db, p, err := OpenDurable("X", DurableOptions{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tbl := relstore.NewTable("t", []relstore.Column{{Name: "a", Kind: relstore.KindString}})
	tbl.MustInsert(relstore.Tuple{relstore.String("v")})
	db.AddTable(tbl)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	db2, p2, err := OpenDurable("X", DurableOptions{Dir: dir}, func() (*relstore.Database, error) {
		t.Fatal("seed consulted although persisted state exists")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	t2, err := db2.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if t2.Len() != 1 {
		t.Fatalf("recovered %d rows, want 1", t2.Len())
	}
}
