// Package source abstracts the relational data sources the mediator talks
// to. A Source answers schema lookups, the query costing API of §5.2
// (eval_cost and size estimates), and executes single-source queries,
// reporting the measured execution time. Sources are either in-process
// (Local, wrapping a relstore database) or remote (the remote package's
// TCP client implements the same interface).
//
// A Registry collects the sources of one integration and adapts them to
// the sqlmini provider interfaces so that multi-source queries can be
// resolved, planned and decomposed against the combined view.
package source

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/aigrepro/aig/internal/obs"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/sqlmini"
)

// Source-level metrics: one execution and one row count per engine-side
// query, wherever that engine runs (in-process here; remote engines
// count on their own side).
var (
	metricExecs = obs.Default.NewCounter("aig_source_queries_total",
		"queries executed by in-process source engines")
	metricExecRows = obs.Default.NewCounter("aig_source_rows_returned_total",
		"result rows returned by in-process source engines")
)

// Estimate is a source's answer to a costing request: the expected
// processing time in abstract cost units, output cardinality and output
// size in bytes (§5.2's eval_cost and size).
type Estimate struct {
	Cost  float64 // processing effort (tuple operations)
	Rows  float64
	Bytes float64
}

// Source is one relational data source.
type Source interface {
	// Name returns the source's name, as used in source-qualified table
	// references ("DB1:patient").
	Name() string
	// TableSchema returns the schema of a stored table.
	TableSchema(table string) (relstore.Schema, error)
	// TableCard and ColumnDistinct expose statistics for planning.
	TableCard(table string) (int, error)
	ColumnDistinct(table, column string) (int, error)
	// DataVersion returns the source's monotonic data version: it
	// advances on every mutation of the source's data and never on
	// reads, so two equal versions observed at different times imply the
	// source would answer queries identically. Result caches key on it.
	DataVersion() (uint64, error)
	// TableVersions returns the per-table data versions of the source's
	// stored tables: a finer-grained view of DataVersion that lets
	// incremental view maintenance attribute a mutation to the tables it
	// touched.
	TableVersions() (map[string]uint64, error)
	// ChangesSince returns the named table's row deltas after version
	// since. A ChangeSet with Truncated set means the source no longer
	// retains the window (bounded log, table replacement, restart) and
	// the caller must fall back to a full refresh.
	ChangesSince(table string, since uint64) (relstore.ChangeSet, error)
	// Estimate runs the costing API for a query that references only this
	// source's tables (plus parameters). The context carries cancellation
	// and the caller's trace (obs.SpanFromContext), so source engines can
	// parent their spans under the mediator's.
	Estimate(ctx context.Context, q *sqlmini.Query, params sqlmini.ParamSchemas, opts sqlmini.PlanOptions) (Estimate, error)
	// Exec executes such a query and reports the measured wall time spent
	// inside the source engine.
	Exec(ctx context.Context, name string, q *sqlmini.Query, params sqlmini.Params, opts sqlmini.PlanOptions) (*relstore.Table, time.Duration, error)
}

// Health is optionally implemented by sources whose availability can
// degrade at runtime (remote engines, replication mirrors). Healthy
// returns nil when the source can serve, and an explanatory error when
// it cannot — readiness endpoints aggregate it so load balancers drain
// traffic away from a replica whose sources are gone. Sources that do
// not implement it are assumed healthy.
type Health interface {
	Healthy() error
}

// Local is an in-process source backed by a relstore database.
type Local struct {
	db  *relstore.Database
	cat *relstore.Catalog // single-entry catalog for the adapters
}

// NewLocal wraps a database as a source.
func NewLocal(db *relstore.Database) *Local {
	cat := relstore.NewCatalog()
	cat.Add(db)
	return &Local{db: db, cat: cat}
}

// Name implements Source.
func (l *Local) Name() string { return l.db.Name() }

// TableSchema implements Source.
func (l *Local) TableSchema(table string) (relstore.Schema, error) {
	t, err := l.db.Table(table)
	if err != nil {
		return nil, err
	}
	return t.Schema(), nil
}

// TableCard implements Source.
func (l *Local) TableCard(table string) (int, error) {
	t, err := l.db.Table(table)
	if err != nil {
		return 0, err
	}
	return t.Len(), nil
}

// ColumnDistinct implements Source.
func (l *Local) ColumnDistinct(table, column string) (int, error) {
	return sqlmini.CatalogStats{Catalog: l.cat}.ColumnDistinct(l.db.Name(), table, column)
}

// DataVersion implements Source.
func (l *Local) DataVersion() (uint64, error) { return l.db.Version(), nil }

// TableVersions implements Source.
func (l *Local) TableVersions() (map[string]uint64, error) {
	return l.db.TableVersions(), nil
}

// ChangesSince implements Source.
func (l *Local) ChangesSince(table string, since uint64) (relstore.ChangeSet, error) {
	return l.db.ChangesSince(table, since)
}

// TableData implements TableDataProvider: direct table access for
// in-process evaluation.
func (l *Local) TableData(table string) (*relstore.Table, error) { return l.db.Table(table) }

// DB exposes the wrapped database so that serving-side mutation
// endpoints (and tests) can write through the same instance the source
// reads.
func (l *Local) DB() *relstore.Database { return l.db }

func (l *Local) checkLocal(q *sqlmini.Query) error {
	for _, s := range q.Sources() {
		if s != l.db.Name() {
			return fmt.Errorf("source %s: query references foreign source %s: %s", l.db.Name(), s, q)
		}
	}
	return nil
}

// Estimate implements Source.
func (l *Local) Estimate(ctx context.Context, q *sqlmini.Query, params sqlmini.ParamSchemas, opts sqlmini.PlanOptions) (Estimate, error) {
	if err := l.checkLocal(q); err != nil {
		return Estimate{}, err
	}
	plan, err := sqlmini.PlanAndEstimate(q, sqlmini.CatalogSchemas{Catalog: l.cat}, params, sqlmini.CatalogStats{Catalog: l.cat}, opts)
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{Cost: plan.EstCost, Rows: plan.EstRows, Bytes: plan.EstBytes}, nil
}

// tracedData wraps a sqlmini.DataProvider and records one span per base
// table the engine reads, so a trace shows which stored tables a query
// plan actually touched and how large they were.
type tracedData struct {
	inner  sqlmini.DataProvider
	tracer *obs.Tracer
	parent *obs.Span
}

func (d tracedData) TableData(sourceName, table string) (*relstore.Table, error) {
	sp := d.tracer.StartSpan("scan:"+sourceName+"."+table, d.parent)
	t, err := d.inner.TableData(sourceName, table)
	if err != nil {
		sp.SetAttr("error", err.Error())
	} else {
		sp.SetAttr("rows", t.Len())
	}
	sp.End()
	return t, err
}

// Exec implements Source.
func (l *Local) Exec(ctx context.Context, name string, q *sqlmini.Query, params sqlmini.Params, opts sqlmini.PlanOptions) (*relstore.Table, time.Duration, error) {
	if err := l.checkLocal(q); err != nil {
		return nil, 0, err
	}
	var data sqlmini.DataProvider = sqlmini.CatalogData{Catalog: l.cat}
	if tr, parent := obs.SpanFromContext(ctx); tr != nil {
		data = tracedData{inner: data, tracer: tr, parent: parent}
	}
	start := time.Now()
	out, err := sqlmini.Run(name, q, sqlmini.CatalogSchemas{Catalog: l.cat}, data, sqlmini.CatalogStats{Catalog: l.cat}, params, opts)
	if err == nil {
		metricExecs.Inc()
		metricExecRows.Add(int64(out.Len()))
	}
	return out, time.Since(start), err
}

// Registry is the mediator's view of all sources.
type Registry struct {
	mu      sync.RWMutex
	sources map[string]Source
}

// NewRegistry builds a registry over the given sources.
func NewRegistry(sources ...Source) *Registry {
	r := &Registry{sources: make(map[string]Source, len(sources))}
	for _, s := range sources {
		r.sources[s.Name()] = s
	}
	return r
}

// RegistryFromCatalog wraps every database of a catalog as a local source.
func RegistryFromCatalog(cat *relstore.Catalog) *Registry {
	r := NewRegistry()
	for _, name := range cat.DatabaseNames() {
		db, err := cat.Database(name)
		if err == nil {
			r.Add(NewLocal(db))
		}
	}
	return r
}

// Add registers a source, replacing any previous source of the same name.
func (r *Registry) Add(s Source) {
	r.mu.Lock()
	r.sources[s.Name()] = s
	r.mu.Unlock()
}

// Get returns the named source.
func (r *Registry) Get(name string) (Source, error) {
	r.mu.RLock()
	s, ok := r.sources[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("source: no source %q registered", name)
	}
	return s, nil
}

// Names returns the registered source names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.sources))
	for n := range r.sources {
		out = append(out, n)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// DataVersions returns the data version of each named source (every
// registered source when names is nil). The map is a consistent cache
// key only in the absence of concurrent mutations; a mutation racing
// the snapshot invalidates at the next request, which is the usual
// read-your-writes-eventually contract of an LRU over live sources.
func (r *Registry) DataVersions(names []string) (map[string]uint64, error) {
	if names == nil {
		names = r.Names()
	}
	out := make(map[string]uint64, len(names))
	for _, n := range names {
		s, err := r.Get(n)
		if err != nil {
			return nil, err
		}
		v, err := s.DataVersion()
		if err != nil {
			return nil, fmt.Errorf("source %s: data version: %w", n, err)
		}
		out[n] = v
	}
	return out, nil
}

// TableSchema implements sqlmini.SchemaProvider across all sources.
func (r *Registry) TableSchema(sourceName, table string) (relstore.Schema, error) {
	s, err := r.Get(sourceName)
	if err != nil {
		return nil, err
	}
	return s.TableSchema(table)
}

// TableCard implements sqlmini.Stats.
func (r *Registry) TableCard(sourceName, table string) (int, error) {
	s, err := r.Get(sourceName)
	if err != nil {
		return 0, err
	}
	return s.TableCard(table)
}

// ColumnDistinct implements sqlmini.Stats.
func (r *Registry) ColumnDistinct(sourceName, table, column string) (int, error) {
	s, err := r.Get(sourceName)
	if err != nil {
		return 0, err
	}
	return s.ColumnDistinct(table, column)
}

// TableDataProvider is the optional interface of sources that can hand
// out raw table handles for in-process evaluation (the conceptual
// evaluator and partial evaluation). Local sources implement it;
// wrappers can forward it.
type TableDataProvider interface {
	TableData(table string) (*relstore.Table, error)
}

// TableData implements sqlmini.DataProvider for in-process evaluation
// (the conceptual evaluator). Remote sources do not support direct
// table reads; only sources exposing TableDataProvider do.
func (r *Registry) TableData(sourceName, table string) (*relstore.Table, error) {
	s, err := r.Get(sourceName)
	if err != nil {
		return nil, err
	}
	p, ok := s.(TableDataProvider)
	if !ok {
		return nil, fmt.Errorf("source: %q is not a local source; direct table access unavailable", sourceName)
	}
	return p.TableData(table)
}
