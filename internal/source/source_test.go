package source

import (
	"context"
	"strings"
	"testing"

	"github.com/aigrepro/aig/internal/hospital"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/sqlmini"
)

func localDB1(t *testing.T) (*Local, *relstore.Catalog) {
	t.Helper()
	cat := hospital.TinyCatalog()
	db, err := cat.Database("DB1")
	if err != nil {
		t.Fatal(err)
	}
	return NewLocal(db), cat
}

func TestLocalBasics(t *testing.T) {
	l, _ := localDB1(t)
	if l.Name() != "DB1" {
		t.Errorf("Name = %q", l.Name())
	}
	schema, err := l.TableSchema("patient")
	if err != nil || len(schema) != 3 {
		t.Errorf("TableSchema = %v, %v", schema, err)
	}
	if _, err := l.TableSchema("nope"); err == nil {
		t.Error("missing table accepted")
	}
	if n, err := l.TableCard("patient"); err != nil || n != 3 {
		t.Errorf("TableCard = %d, %v", n, err)
	}
	if _, err := l.TableCard("nope"); err == nil {
		t.Error("missing card accepted")
	}
	if n, err := l.ColumnDistinct("patient", "policy"); err != nil || n != 2 {
		t.Errorf("ColumnDistinct = %d, %v", n, err)
	}
}

func TestLocalExecAndEstimate(t *testing.T) {
	l, _ := localDB1(t)
	q := sqlmini.MustParse(`select SSN from DB1:visitInfo where date = $v.date`)
	params := sqlmini.Params{"v": sqlmini.ScalarBinding([]string{"date"}, relstore.Tuple{relstore.String("d1")})}
	out, dur, err := l.Exec(context.Background(), "out", q, params, sqlmini.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4 || dur < 0 {
		t.Errorf("Exec returned %d rows, dur %v", out.Len(), dur)
	}
	est, err := l.Estimate(context.Background(), q, sqlmini.ParamSchemas{"v": relstore.MustSchema("date:string")}, sqlmini.PlanOptions{})
	if err != nil || est.Rows <= 0 || est.Cost <= 0 || est.Bytes <= 0 {
		t.Errorf("Estimate = %+v, %v", est, err)
	}
}

func TestLocalRejectsForeignQueries(t *testing.T) {
	l, _ := localDB1(t)
	q := sqlmini.MustParse(`select trId from DB3:billing`)
	if _, _, err := l.Exec(context.Background(), "out", q, nil, sqlmini.PlanOptions{}); err == nil || !strings.Contains(err.Error(), "foreign source") {
		t.Errorf("foreign query error = %v", err)
	}
	if _, err := l.Estimate(context.Background(), q, nil, sqlmini.PlanOptions{}); err == nil {
		t.Error("foreign estimate accepted")
	}
}

func TestRegistry(t *testing.T) {
	cat := hospital.TinyCatalog()
	reg := RegistryFromCatalog(cat)
	names := reg.Names()
	if len(names) != 4 || names[0] != "DB1" || names[3] != "DB4" {
		t.Errorf("Names = %v", names)
	}
	if _, err := reg.Get("DB9"); err == nil {
		t.Error("missing source accepted")
	}

	// The registry implements the sqlmini provider interfaces across all
	// sources.
	if s, err := reg.TableSchema("DB3", "billing"); err != nil || len(s) != 2 {
		t.Errorf("TableSchema = %v, %v", s, err)
	}
	if n, err := reg.TableCard("DB2", "cover"); err != nil || n != 5 {
		t.Errorf("TableCard = %d, %v", n, err)
	}
	if n, err := reg.ColumnDistinct("DB4", "treatment", "trId"); err != nil || n != 5 {
		t.Errorf("ColumnDistinct = %d, %v", n, err)
	}
	if tbl, err := reg.TableData("DB1", "patient"); err != nil || tbl.Len() != 3 {
		t.Errorf("TableData = %v, %v", tbl, err)
	}
	if _, err := reg.TableData("DBX", "t"); err == nil {
		t.Error("TableData on missing source accepted")
	}

	// A multi-source query resolves and runs against the registry as a
	// combined view — this is what the conceptual evaluator uses.
	q := sqlmini.MustParse(`select t.tname from DB4:treatment t, DB3:billing b where t.trId = b.trId and b.price > 200`)
	out, err := sqlmini.Run("out", q, reg, reg, reg, nil, sqlmini.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 { // t2 (250) and t4 (999)
		t.Errorf("cross-source join returned %d rows, want 2", out.Len())
	}
}

func TestRegistryAddReplaces(t *testing.T) {
	cat := hospital.TinyCatalog()
	reg := RegistryFromCatalog(cat)
	other := relstore.NewDatabase("DB1")
	other.CreateTable("patient", relstore.MustSchema("SSN:string"))
	reg.Add(NewLocal(other))
	s, err := reg.TableSchema("DB1", "patient")
	if err != nil || len(s) != 1 {
		t.Errorf("replacement source not used: %v, %v", s, err)
	}
}
