package source

import (
	"fmt"

	"github.com/aigrepro/aig/internal/relstore"
)

// DurableOptions configures OpenDurable: where a source's durable state
// lives and how it is flushed.
type DurableOptions struct {
	// Dir is the state directory (snapshot + write-ahead log).
	Dir string
	// Fsync is the WAL flushing policy.
	Fsync relstore.FsyncMode
	// SnapshotEvery is the automatic snapshot cadence in WAL records
	// (0 = relstore.DefaultSnapshotEvery, negative disables).
	SnapshotEvery int
}

// OpenDurable opens the named database's durable state under Dir. When
// persisted state exists (a previous incarnation's snapshot or WAL) the
// database is recovered from it — tuples, table versions AND change
// logs, so ChangesSince watermarks taken before the restart still
// answer exactly. Otherwise seed provides the initial content (nil
// seeds an empty database) and persistence is attached to it. Either
// way every later mutation is journaled; close the returned Persister
// on shutdown for a snapshot-clean (replay-free) next start.
func OpenDurable(name string, opts DurableOptions, seed func() (*relstore.Database, error)) (*relstore.Database, *relstore.Persister, error) {
	popts := relstore.PersistOptions{Dir: opts.Dir, Fsync: opts.Fsync, SnapshotEvery: opts.SnapshotEvery}
	if relstore.HasPersistedState(popts) {
		db, p, err := relstore.Recover(name, popts)
		if err != nil {
			return nil, nil, fmt.Errorf("source %s: recover from %s: %w", name, opts.Dir, err)
		}
		return db, p, nil
	}
	var db *relstore.Database
	if seed == nil {
		db = relstore.NewDatabase(name)
	} else {
		var err error
		if db, err = seed(); err != nil {
			return nil, nil, fmt.Errorf("source %s: seed: %w", name, err)
		}
	}
	p, err := db.Persist(popts)
	if err != nil {
		return nil, nil, fmt.Errorf("source %s: persist to %s: %w", name, opts.Dir, err)
	}
	return db, p, nil
}
