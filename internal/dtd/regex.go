package dtd

import (
	"fmt"
	"strings"
)

// Regex is a general content-model regular expression over element type
// names and PCDATA, used by parsed DTDs before simplification.
type Regex interface {
	regexNode()
	String() string
}

// RText matches a single PCDATA node (#PCDATA).
type RText struct{}

// REmpty matches the empty word (EMPTY content).
type REmpty struct{}

// RName matches a single element of the given type.
type RName struct{ Name string }

// RSeq matches the concatenation of its items.
type RSeq struct{ Items []Regex }

// RChoice matches any one of its items.
type RChoice struct{ Items []Regex }

// RStar matches zero or more repetitions of its item.
type RStar struct{ Item Regex }

// RPlus matches one or more repetitions of its item.
type RPlus struct{ Item Regex }

// ROpt matches zero or one occurrence of its item.
type ROpt struct{ Item Regex }

func (RText) regexNode()   {}
func (REmpty) regexNode()  {}
func (RName) regexNode()   {}
func (RSeq) regexNode()    {}
func (RChoice) regexNode() {}
func (RStar) regexNode()   {}
func (RPlus) regexNode()   {}
func (ROpt) regexNode()    {}

func (RText) String() string   { return "#PCDATA" }
func (REmpty) String() string  { return "EMPTY" }
func (r RName) String() string { return r.Name }

func (r RSeq) String() string {
	parts := make([]string, len(r.Items))
	for i, it := range r.Items {
		parts[i] = it.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func (r RChoice) String() string {
	parts := make([]string, len(r.Items))
	for i, it := range r.Items {
		parts[i] = it.String()
	}
	return "(" + strings.Join(parts, " | ") + ")"
}

func (r RStar) String() string { return r.Item.String() + "*" }
func (r RPlus) String() string { return r.Item.String() + "+" }
func (r ROpt) String() string  { return r.Item.String() + "?" }

// nfa is a Thompson-construction automaton over content labels. Content
// models are tiny, so an epsilon-NFA with subset simulation is plenty.
type nfa struct {
	// trans[s] maps a label to successor states; epsilon transitions are
	// under the empty label.
	trans []map[string][]int
	start int
	final int
}

func newNFA() *nfa { return &nfa{} }

func (n *nfa) newState() int {
	n.trans = append(n.trans, make(map[string][]int))
	return len(n.trans) - 1
}

func (n *nfa) addEdge(from int, label string, to int) {
	n.trans[from][label] = append(n.trans[from][label], to)
}

// compile builds the fragment for r between fresh start/final states and
// returns them.
func (n *nfa) compile(r Regex) (start, final int) {
	start, final = n.newState(), n.newState()
	switch r := r.(type) {
	case RText:
		n.addEdge(start, TextType, final)
	case REmpty:
		n.addEdge(start, "", final)
	case RName:
		n.addEdge(start, r.Name, final)
	case RSeq:
		prev := start
		for _, item := range r.Items {
			s, f := n.compile(item)
			n.addEdge(prev, "", s)
			prev = f
		}
		n.addEdge(prev, "", final)
	case RChoice:
		for _, item := range r.Items {
			s, f := n.compile(item)
			n.addEdge(start, "", s)
			n.addEdge(f, "", final)
		}
	case RStar:
		s, f := n.compile(r.Item)
		n.addEdge(start, "", s)
		n.addEdge(start, "", final)
		n.addEdge(f, "", s)
		n.addEdge(f, "", final)
	case RPlus:
		s, f := n.compile(r.Item)
		n.addEdge(start, "", s)
		n.addEdge(f, "", s)
		n.addEdge(f, "", final)
	case ROpt:
		s, f := n.compile(r.Item)
		n.addEdge(start, "", s)
		n.addEdge(start, "", final)
		n.addEdge(f, "", final)
	default:
		panic(fmt.Sprintf("dtd: unknown regex node %T", r))
	}
	return start, final
}

// Matcher matches sequences of content labels against a compiled content
// model. Build one with CompileRegex and reuse it; matching is
// goroutine-safe.
type Matcher struct {
	auto  *nfa
	model Regex
}

// CompileRegex compiles a content model into a Matcher.
func CompileRegex(r Regex) *Matcher {
	a := newNFA()
	s, f := a.compile(r)
	a.start, a.final = s, f
	return &Matcher{auto: a, model: r}
}

// Match reports whether the sequence of labels is in the content model's
// language. Text nodes are represented by the TextType label.
func (m *Matcher) Match(labels []string) bool {
	cur := m.closure(map[int]bool{m.auto.start: true})
	for _, label := range labels {
		next := make(map[int]bool)
		for s := range cur {
			for _, t := range m.auto.trans[s][label] {
				next[t] = true
			}
		}
		if len(next) == 0 {
			return false
		}
		cur = m.closure(next)
	}
	return cur[m.auto.final]
}

func (m *Matcher) closure(states map[int]bool) map[int]bool {
	stack := make([]int, 0, len(states))
	for s := range states {
		stack = append(stack, s)
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range m.auto.trans[s][""] {
			if !states[t] {
				states[t] = true
				stack = append(stack, t)
			}
		}
	}
	return states
}

// Model returns the content model this matcher was compiled from.
func (m *Matcher) Model() Regex { return m.model }

// ProductionRegex converts a simplified production into the equivalent
// content-model regex, so conformance checking shares one matcher.
func ProductionRegex(p Production) Regex {
	switch p.Kind {
	case ProdText:
		return RText{}
	case ProdEmpty:
		return REmpty{}
	case ProdStar:
		return RStar{Item: RName{Name: p.Children[0]}}
	case ProdSeq:
		items := make([]Regex, len(p.Children))
		for i, c := range p.Children {
			items[i] = RName{Name: c}
		}
		return RSeq{Items: items}
	case ProdChoice:
		items := make([]Regex, len(p.Children))
		for i, c := range p.Children {
			items[i] = RName{Name: c}
		}
		return RChoice{Items: items}
	default:
		panic(fmt.Sprintf("dtd: bad production kind %d", p.Kind))
	}
}
