package dtd

import (
	"strings"
	"testing"
)

// FuzzParseGeneral throws arbitrary text at the DTD parser. Invariants:
// ParseGeneral and the normalization pipeline behind Parse never panic,
// and every element of a parsed-and-simplified DTD carries a recorded
// declaration position.
func FuzzParseGeneral(f *testing.F) {
	f.Add("<!ELEMENT report (patient*)>\n<!ELEMENT patient (SSN, pname, treatments, bill)>\n<!ELEMENT SSN (#PCDATA)>")
	f.Add("<!ELEMENT a (b | (c, d))*>\n<!ELEMENT b EMPTY>")
	f.Add("<!ELEMENT a (#PCDATA)>")
	f.Add("<!ELEMENT a (b?, c+)>")
	f.Add("<!ELEMENT treatment (trId, tname, procedure)>\n<!ELEMENT procedure (treatment*)>")
	f.Add("junk")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ParseGeneral(input)
		if err != nil {
			return
		}
		d, err := Simplify(g)
		if err != nil {
			return
		}
		for _, name := range d.Types() {
			// Entity types inherit the declaring element's position, so
			// every type of a text-parsed DTD must have one.
			if !d.Pos[name].IsValid() {
				t.Fatalf("type %q has no recorded position\ninput: %q", name, input)
			}
		}
		if err := d.Validate(); err != nil && !strings.Contains(err.Error(), "dtd:") {
			t.Fatalf("Validate error without dtd prefix: %v", err)
		}
	})
}
