// Package dtd models Document Type Definitions as used by AIGs: a set of
// element types, a production per type, and a distinguished root type.
//
// The package supports two levels of generality, mirroring §2 of the
// paper. Parsed DTDs may use arbitrary regular-expression content models
// (sequence, choice, star, plus, optional, PCDATA). Simplify converts a
// general DTD into the paper's restricted form
//
//	α ::= S | ε | B1, ..., Bn | B1 + ... + Bn | B*
//
// in linear time by introducing entity element types, and Conformance
// checking validates an XML tree against either form via a Glushkov-style
// NFA per content model.
package dtd

import (
	"fmt"
	"sort"
	"strings"

	"github.com/aigrepro/aig/internal/srcpos"
)

// TextType is the pseudo element type S denoting PCDATA in the simplified
// form.
const TextType = "#PCDATA"

// ProdKind enumerates the simplified production forms of §2.
type ProdKind uint8

// The simplified production forms.
const (
	ProdText   ProdKind = iota // A -> S
	ProdEmpty                  // A -> ε
	ProdSeq                    // A -> B1, ..., Bn
	ProdChoice                 // A -> B1 + ... + Bn
	ProdStar                   // A -> B*
)

func (k ProdKind) String() string {
	switch k {
	case ProdText:
		return "text"
	case ProdEmpty:
		return "empty"
	case ProdSeq:
		return "sequence"
	case ProdChoice:
		return "choice"
	case ProdStar:
		return "star"
	default:
		return fmt.Sprintf("prodkind(%d)", uint8(k))
	}
}

// Production is a simplified content model.
type Production struct {
	Kind     ProdKind
	Children []string // element type names; empty for Text/Empty, one for Star
}

// String renders the production body in DTD-ish syntax.
func (p Production) String() string {
	switch p.Kind {
	case ProdText:
		return "(#PCDATA)"
	case ProdEmpty:
		return "EMPTY"
	case ProdSeq:
		return "(" + strings.Join(p.Children, ", ") + ")"
	case ProdChoice:
		return "(" + strings.Join(p.Children, " | ") + ")"
	case ProdStar:
		return "(" + p.Children[0] + "*)"
	default:
		return "<bad production>"
	}
}

// DTD is a simplified-form DTD: D = (Ele, P, r).
type DTD struct {
	Root  string
	Prods map[string]Production
	// Entities lists the synthetic element types introduced by Simplify,
	// which are erased again when converting documents back (§2, fact (2)).
	Entities map[string]bool
	// Pos records where each element type was declared in the source DTD
	// text, when the DTD came from a parser. Entity types inherit the
	// position of the element whose content model spawned them.
	// Programmatically built DTDs leave it empty.
	Pos map[string]srcpos.Pos
}

// New creates an empty DTD with the given root type. Productions are added
// with Define.
func New(root string) *DTD {
	return &DTD{
		Root:     root,
		Prods:    make(map[string]Production),
		Entities: make(map[string]bool),
		Pos:      make(map[string]srcpos.Pos),
	}
}

// Define sets the production of an element type.
func (d *DTD) Define(name string, p Production) {
	d.Prods[name] = p
}

// DefineText declares A -> S.
func (d *DTD) DefineText(name string) { d.Define(name, Production{Kind: ProdText}) }

// DefineEmpty declares A -> ε.
func (d *DTD) DefineEmpty(name string) { d.Define(name, Production{Kind: ProdEmpty}) }

// DefineSeq declares A -> B1, ..., Bn.
func (d *DTD) DefineSeq(name string, children ...string) {
	d.Define(name, Production{Kind: ProdSeq, Children: children})
}

// DefineChoice declares A -> B1 + ... + Bn.
func (d *DTD) DefineChoice(name string, children ...string) {
	d.Define(name, Production{Kind: ProdChoice, Children: children})
}

// DefineStar declares A -> B*.
func (d *DTD) DefineStar(name, child string) {
	d.Define(name, Production{Kind: ProdStar, Children: []string{child}})
}

// Types returns the element type names in sorted order.
func (d *DTD) Types() []string {
	out := make([]string, 0, len(d.Prods))
	for n := range d.Prods {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Production returns the production of the given type and whether it is
// defined.
func (d *DTD) Production(name string) (Production, bool) {
	p, ok := d.Prods[name]
	return p, ok
}

// Validate checks structural sanity: the root is defined, every referenced
// child type is defined, and production shapes are legal.
func (d *DTD) Validate() error {
	if d.Root == "" {
		return fmt.Errorf("dtd: no root type")
	}
	if _, ok := d.Prods[d.Root]; !ok {
		return fmt.Errorf("dtd: root type %q is not defined", d.Root)
	}
	for name, p := range d.Prods {
		switch p.Kind {
		case ProdText, ProdEmpty:
			if len(p.Children) != 0 {
				return fmt.Errorf("dtd: %s production of %q must have no children", p.Kind, name)
			}
		case ProdStar:
			if len(p.Children) != 1 {
				return fmt.Errorf("dtd: star production of %q must have exactly one child", name)
			}
		case ProdSeq, ProdChoice:
			if len(p.Children) == 0 {
				return fmt.Errorf("dtd: %s production of %q must have children", p.Kind, name)
			}
		default:
			return fmt.Errorf("dtd: %q has invalid production kind %d", name, p.Kind)
		}
		for _, c := range p.Children {
			if _, ok := d.Prods[c]; !ok {
				return fmt.Errorf("dtd: %q references undefined type %q", name, c)
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the DTD.
func (d *DTD) Clone() *DTD {
	out := New(d.Root)
	for n, p := range d.Prods {
		out.Prods[n] = Production{Kind: p.Kind, Children: append([]string(nil), p.Children...)}
	}
	for n := range d.Entities {
		out.Entities[n] = true
	}
	for n, p := range d.Pos {
		out.Pos[n] = p
	}
	return out
}

// String renders the DTD as element declarations in deterministic order,
// root first.
func (d *DTD) String() string {
	var b strings.Builder
	write := func(name string) {
		fmt.Fprintf(&b, "<!ELEMENT %s %s>\n", name, d.Prods[name].String())
	}
	if _, ok := d.Prods[d.Root]; ok {
		write(d.Root)
	}
	for _, n := range d.Types() {
		if n != d.Root {
			write(n)
		}
	}
	return b.String()
}

// Reachable returns the set of element types reachable from the root.
func (d *DTD) Reachable() map[string]bool {
	seen := make(map[string]bool)
	var visit func(string)
	visit = func(n string) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, c := range d.Prods[n].Children {
			visit(c)
		}
	}
	if _, ok := d.Prods[d.Root]; ok {
		visit(d.Root)
	}
	return seen
}

// RecursiveTypes returns the set of element types that participate in a
// cycle of the type-reference graph (i.e. are recursively defined, like
// treatment/procedure in the paper's example).
func (d *DTD) RecursiveTypes() map[string]bool {
	// Tarjan SCC; types in a component of size > 1, or with a self-loop,
	// are recursive.
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	next := 0
	recursive := make(map[string]bool)

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		selfLoop := false
		for _, w := range d.Prods[v].Children {
			if w == v {
				selfLoop = true
			}
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			if len(comp) > 1 || selfLoop {
				for _, w := range comp {
					recursive[w] = true
				}
			}
		}
	}
	for _, n := range d.Types() {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	return recursive
}

// IsRecursive reports whether any reachable type is recursively defined.
func (d *DTD) IsRecursive() bool {
	rec := d.RecursiveTypes()
	for n := range d.Reachable() {
		if rec[n] {
			return true
		}
	}
	return false
}
