package dtd

import (
	"fmt"
	"strings"
	"unicode"

	"github.com/aigrepro/aig/internal/srcpos"
)

// General is a DTD whose content models are arbitrary regular expressions,
// the result of parsing DTD text. Simplify converts it to the restricted
// form the AIG machinery works with.
type General struct {
	Root    string
	Content map[string]Regex
	// Order preserves declaration order for deterministic output.
	Order []string
	// Pos records where each element was declared (position of the name
	// token), for positioned diagnostics. Keys match Content.
	Pos map[string]srcpos.Pos
}

// ParseGeneral parses DTD text consisting of <!ELEMENT name content>
// declarations. The root type is the first declared element. Comments
// (<!-- ... -->) and blank space between declarations are ignored.
// Parse errors are *srcpos.Error values carrying the line and column
// within input where the problem was detected.
func ParseGeneral(input string) (*General, error) {
	g := &General{Content: make(map[string]Regex), Pos: make(map[string]srcpos.Pos)}
	rest := input
	tr := srcpos.NewTracker(input)
	at := func() srcpos.Pos { return tr.At(len(input) - len(rest)) }
	for {
		rest = strings.TrimLeftFunc(rest, unicode.IsSpace)
		if rest == "" {
			break
		}
		if strings.HasPrefix(rest, "<!--") {
			end := strings.Index(rest, "-->")
			if end < 0 {
				return nil, srcpos.Errorf(at(), "dtd: unterminated comment")
			}
			rest = rest[end+3:]
			continue
		}
		declPos := at()
		if !strings.HasPrefix(rest, "<!ELEMENT") {
			return nil, srcpos.Errorf(declPos, "dtd: expected <!ELEMENT, found %q", firstLine(rest))
		}
		end := strings.Index(rest, ">")
		if end < 0 {
			return nil, srcpos.Errorf(declPos, "dtd: unterminated declaration %q", firstLine(rest))
		}
		base := len(input) - len(rest) + len("<!ELEMENT")
		decl := rest[len("<!ELEMENT"):end]
		rest = rest[end+1:]
		name, namePos, content, err := parseElementDecl(tr, base, decl)
		if err != nil {
			return nil, err
		}
		if _, dup := g.Content[name]; dup {
			return nil, srcpos.Errorf(namePos, "dtd: element %q declared twice", name)
		}
		g.Content[name] = content
		g.Order = append(g.Order, name)
		g.Pos[name] = namePos
		if g.Root == "" {
			g.Root = name
		}
	}
	if g.Root == "" {
		return nil, fmt.Errorf("dtd: no element declarations")
	}
	return g, nil
}

// MustParseGeneral is ParseGeneral panicking on error.
func MustParseGeneral(input string) *General {
	g, err := ParseGeneral(input)
	if err != nil {
		panic(err)
	}
	return g
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 60 {
		s = s[:60] + "..."
	}
	return s
}

// parseElementDecl parses the body of one <!ELEMENT ...> declaration.
// decl starts at byte offset base within the tracked DTD text; errors
// carry positions relative to that text.
func parseElementDecl(tr *srcpos.Tracker, base int, decl string) (string, srcpos.Pos, Regex, error) {
	p := &contentParser{input: decl, tr: tr, base: base}
	p.skipSpace()
	nameOff := p.pos
	name := p.ident()
	if name == "" {
		return "", srcpos.Pos{}, nil, srcpos.Errorf(p.at(), "dtd: missing element name in %q", decl)
	}
	namePos := tr.At(base + nameOff)
	p.skipSpace()
	switch {
	case p.consumeWord("EMPTY"):
		p.skipSpace()
		if !p.atEnd() {
			return "", srcpos.Pos{}, nil, srcpos.Errorf(p.at(), "dtd: junk after EMPTY in %q", decl)
		}
		return name, namePos, REmpty{}, nil
	case p.consumeWord("ANY"):
		return "", srcpos.Pos{}, nil, srcpos.Errorf(namePos, "dtd: ANY content is not supported (element %q)", name)
	}
	r, err := p.parseGroup()
	if err != nil {
		return "", srcpos.Pos{}, nil, fmt.Errorf("dtd: element %q: %w", name, err)
	}
	p.skipSpace()
	if !p.atEnd() {
		return "", srcpos.Pos{}, nil, srcpos.Errorf(p.at(), "dtd: junk after content model of %q: %q", name, p.rest())
	}
	return name, namePos, r, nil
}

type contentParser struct {
	input string
	pos   int
	// tr and base map positions within input back into the whole DTD
	// text for error reporting: input starts at byte base of the tracked
	// text.
	tr   *srcpos.Tracker
	base int
}

// at is the parser's current position within the whole DTD text.
func (p *contentParser) at() srcpos.Pos { return p.tr.At(p.base + p.pos) }

func (p *contentParser) atEnd() bool  { return p.pos >= len(p.input) }
func (p *contentParser) rest() string { return p.input[p.pos:] }
func (p *contentParser) peek() byte {
	if p.atEnd() {
		return 0
	}
	return p.input[p.pos]
}

func (p *contentParser) skipSpace() {
	for !p.atEnd() && unicode.IsSpace(rune(p.input[p.pos])) {
		p.pos++
	}
}

func (p *contentParser) ident() string {
	start := p.pos
	for !p.atEnd() {
		c := p.input[p.pos]
		if c == '_' || c == '-' || c == '.' ||
			('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9') {
			p.pos++
			continue
		}
		break
	}
	return p.input[start:p.pos]
}

func (p *contentParser) consumeWord(w string) bool {
	if strings.HasPrefix(p.input[p.pos:], w) {
		after := p.pos + len(w)
		if after >= len(p.input) || !isNameByte(p.input[after]) {
			p.pos = after
			return true
		}
	}
	return false
}

func isNameByte(c byte) bool {
	return c == '_' || c == '-' || c == '.' ||
		('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}

// parseGroup parses a parenthesized group: '(' item (sep item)* ')' with a
// consistent separator (',' for sequence, '|' for choice), followed by an
// optional repetition suffix.
func (p *contentParser) parseGroup() (Regex, error) {
	p.skipSpace()
	if p.peek() != '(' {
		return nil, srcpos.Errorf(p.at(), "expected '(', found %q", p.rest())
	}
	p.pos++
	var items []Regex
	sep := byte(0)
	for {
		item, err := p.parseItem()
		if err != nil {
			return nil, err
		}
		items = append(items, item)
		p.skipSpace()
		switch p.peek() {
		case ',', '|':
			c := p.peek()
			if sep == 0 {
				sep = c
			} else if sep != c {
				return nil, srcpos.Errorf(p.at(), "mixed ',' and '|' in one group")
			}
			p.pos++
		case ')':
			p.pos++
			var r Regex
			if len(items) == 1 {
				r = items[0]
			} else if sep == '|' {
				r = RChoice{Items: items}
			} else {
				r = RSeq{Items: items}
			}
			return p.applySuffix(r), nil
		case 0:
			return nil, srcpos.Errorf(p.at(), "unterminated group")
		default:
			return nil, srcpos.Errorf(p.at(), "unexpected %q in group", p.rest())
		}
	}
}

func (p *contentParser) parseItem() (Regex, error) {
	p.skipSpace()
	switch {
	case p.peek() == '(':
		return p.parseGroup()
	case strings.HasPrefix(p.rest(), TextType):
		p.pos += len(TextType)
		return p.applySuffix(RText{}), nil
	default:
		name := p.ident()
		if name == "" {
			return nil, srcpos.Errorf(p.at(), "expected element name, found %q", p.rest())
		}
		return p.applySuffix(RName{Name: name}), nil
	}
}

func (p *contentParser) applySuffix(r Regex) Regex {
	switch p.peek() {
	case '*':
		p.pos++
		return RStar{Item: r}
	case '+':
		p.pos++
		return RPlus{Item: r}
	case '?':
		p.pos++
		return ROpt{Item: r}
	}
	return r
}

// String renders the general DTD as declarations in declaration order.
func (g *General) String() string {
	var b strings.Builder
	for _, name := range g.Order {
		content := g.Content[name].String()
		if _, isEmpty := g.Content[name].(REmpty); !isEmpty && !strings.HasPrefix(content, "(") {
			content = "(" + content + ")"
		}
		fmt.Fprintf(&b, "<!ELEMENT %s %s>\n", name, content)
	}
	return b.String()
}
