package dtd

import (
	"strings"
	"testing"
)

// hospitalDTDText is the DTD D of Example 1.1.
const hospitalDTDText = `
<!-- the insurance report DTD of Example 1.1 -->
<!ELEMENT report (patient*)>
<!ELEMENT patient (SSN, pname, treatments, bill)>
<!ELEMENT treatments (treatment*)>
<!ELEMENT treatment (trId, tname, procedure)>
<!ELEMENT procedure (treatment*)>
<!ELEMENT bill (item*)>
<!ELEMENT item (trId, price)>
<!ELEMENT SSN (#PCDATA)>
<!ELEMENT pname (#PCDATA)>
<!ELEMENT trId (#PCDATA)>
<!ELEMENT tname (#PCDATA)>
<!ELEMENT price (#PCDATA)>
`

func hospitalDTD(t *testing.T) *DTD {
	t.Helper()
	d, err := Parse(hospitalDTDText)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestParseHospitalDTD(t *testing.T) {
	d := hospitalDTD(t)
	if d.Root != "report" {
		t.Errorf("root = %q, want report", d.Root)
	}
	if p, _ := d.Production("report"); p.Kind != ProdStar || p.Children[0] != "patient" {
		t.Errorf("report production = %v", p)
	}
	if p, _ := d.Production("patient"); p.Kind != ProdSeq || len(p.Children) != 4 {
		t.Errorf("patient production = %v", p)
	}
	if p, _ := d.Production("SSN"); p.Kind != ProdText {
		t.Errorf("SSN production = %v", p)
	}
	if len(d.Entities) != 0 {
		t.Errorf("simple DTD produced entities: %v", d.Entities)
	}
	if err := d.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRecursiveTypes(t *testing.T) {
	d := hospitalDTD(t)
	rec := d.RecursiveTypes()
	for _, want := range []string{"treatment", "procedure"} {
		if !rec[want] {
			t.Errorf("%s not detected as recursive", want)
		}
	}
	for _, not := range []string{"report", "patient", "bill", "trId"} {
		if rec[not] {
			t.Errorf("%s wrongly detected as recursive", not)
		}
	}
	if !d.IsRecursive() {
		t.Error("hospital DTD not detected as recursive")
	}

	flat := MustParse(`<!ELEMENT a (b)> <!ELEMENT b (#PCDATA)>`)
	if flat.IsRecursive() {
		t.Error("flat DTD detected as recursive")
	}

	self := MustParse(`<!ELEMENT a (a*)>`)
	if !self.RecursiveTypes()["a"] {
		t.Error("self-loop not detected")
	}
}

func TestReachable(t *testing.T) {
	d := MustParse(`<!ELEMENT a (b)> <!ELEMENT b (#PCDATA)> <!ELEMENT orphan (#PCDATA)>`)
	r := d.Reachable()
	if !r["a"] || !r["b"] || r["orphan"] {
		t.Errorf("Reachable = %v", r)
	}
}

func TestSimplifyIntroducesEntities(t *testing.T) {
	d := MustParse(`
		<!ELEMENT doc ((a | b)*, c?, d+)>
		<!ELEMENT a (#PCDATA)>
		<!ELEMENT b (#PCDATA)>
		<!ELEMENT c (#PCDATA)>
		<!ELEMENT d (#PCDATA)>
	`)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Entities) == 0 {
		t.Fatal("no entities introduced for nested content model")
	}
	// doc must now be a pure sequence of element names.
	p, _ := d.Production("doc")
	if p.Kind != ProdSeq {
		t.Errorf("doc production kind = %v", p.Kind)
	}
	for _, c := range p.Children {
		if _, ok := d.Production(c); !ok {
			t.Errorf("child %q undefined", c)
		}
	}
}

func TestParseGeneralErrors(t *testing.T) {
	bad := []string{
		`<!ELEMENT a (b)`,                   // unterminated
		`<!ELEMENT a (b)> <!ELEMENT a (c)>`, // duplicate
		`<!ELEMENT (b)>`,                    // missing name
		`<!ELEMENT a ANY>`,                  // unsupported
		`<!ELEMENT a (b,)>`,                 // trailing separator
		`<!ELEMENT a (b|c,d)>`,              // mixed separators
		`<!ELEMENT a b>`,                    // no group
		`<!ELEMENT a ()>`,                   // empty group
		`<!ELEMENT a (b) junk>`,             // trailing junk
		`<!ELEMENT a EMPTY junk>`,           // junk after EMPTY
		`junk`,                              // not a declaration
		``,                                  // nothing
		`<!-- unterminated`,                 // bad comment
	}
	for _, in := range bad {
		if _, err := ParseGeneral(in); err == nil {
			t.Errorf("ParseGeneral(%q) succeeded, want error", in)
		}
	}
}

func TestGeneralStringRoundTrip(t *testing.T) {
	g := MustParseGeneral(hospitalDTDText)
	again, err := ParseGeneral(g.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", g.String(), err)
	}
	if g.String() != again.String() {
		t.Errorf("round trip changed DTD:\n%s\n%s", g, again)
	}
}

func TestDTDValidateErrors(t *testing.T) {
	d := New("")
	if err := d.Validate(); err == nil {
		t.Error("rootless DTD validated")
	}
	d = New("a")
	if err := d.Validate(); err == nil {
		t.Error("undefined root validated")
	}
	d = New("a")
	d.DefineSeq("a", "missing")
	if err := d.Validate(); err == nil {
		t.Error("dangling reference validated")
	}
	d = New("a")
	d.Define("a", Production{Kind: ProdStar, Children: []string{"x", "y"}})
	if err := d.Validate(); err == nil {
		t.Error("two-child star validated")
	}
	d = New("a")
	d.Define("a", Production{Kind: ProdText, Children: []string{"x"}})
	if err := d.Validate(); err == nil {
		t.Error("text production with children validated")
	}
	d = New("a")
	d.Define("a", Production{Kind: ProdSeq})
	if err := d.Validate(); err == nil {
		t.Error("empty sequence validated")
	}
	d = New("a")
	d.Define("a", Production{Kind: ProdKind(99)})
	if err := d.Validate(); err == nil {
		t.Error("bad kind validated")
	}
}

func TestDTDString(t *testing.T) {
	d := hospitalDTD(t)
	s := d.String()
	if !strings.HasPrefix(s, "<!ELEMENT report") {
		t.Errorf("String() does not lead with root: %q", s[:40])
	}
	// Output must re-parse to an equivalent DTD.
	again := MustParse(s)
	if again.Root != d.Root || len(again.Prods) != len(d.Prods) {
		t.Errorf("String round trip changed DTD")
	}
}

func TestDTDClone(t *testing.T) {
	d := hospitalDTD(t)
	c := d.Clone()
	c.DefineText("extra")
	c.Prods["report"] = Production{Kind: ProdEmpty}
	if _, ok := d.Production("extra"); ok {
		t.Error("Clone shares production map")
	}
	if p, _ := d.Production("report"); p.Kind != ProdStar {
		t.Error("Clone mutated original production")
	}
}
