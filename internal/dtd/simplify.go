package dtd

import (
	"fmt"
	"sort"
)

// Simplify converts a general DTD into the paper's restricted form
//
//	α ::= S | ε | B1, ..., Bn | B1 + ... + Bn | B*
//
// by introducing entity element types for nested sub-expressions (§2,
// fact (1)). The conversion is linear in the size of the input: every
// sub-expression is visited once and produces at most one entity type.
// Entity names are derived from the owning element ("patient#1") so they
// cannot collide with XML element names, and are recorded in the result's
// Entities set for later erasure.
func Simplify(g *General) (*DTD, error) {
	d := New(g.Root)
	s := &simplifier{g: g, d: d}
	names := append([]string(nil), g.Order...)
	if len(names) == 0 {
		for n := range g.Content {
			names = append(names, n)
		}
		sort.Strings(names)
	}
	for _, name := range names {
		s.owner = name
		if err := s.defineAs(name, g.Content[name]); err != nil {
			return nil, err
		}
		if p, ok := g.Pos[name]; ok {
			d.Pos[name] = p
		}
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("dtd: simplification produced invalid DTD: %v", err)
	}
	return d, nil
}

type simplifier struct {
	g     *General
	d     *DTD
	next  int
	owner string // element whose declaration is being simplified
}

// entity creates a fresh entity element type defined by r and returns its
// name. The entity inherits the source position of the declaration that
// spawned it.
func (s *simplifier) entity(owner string, r Regex) (string, error) {
	s.next++
	name := fmt.Sprintf("%s#%d", owner, s.next)
	s.d.Entities[name] = true
	if p, ok := s.g.Pos[s.owner]; ok {
		s.d.Pos[name] = p
	}
	if err := s.defineAs(name, r); err != nil {
		return "", err
	}
	return name, nil
}

// lift returns an element-type name whose language is exactly r: the name
// itself when r is already a name reference, otherwise a fresh entity.
func (s *simplifier) lift(owner string, r Regex) (string, error) {
	if n, ok := r.(RName); ok {
		return n.Name, nil
	}
	return s.entity(owner, r)
}

// defineAs installs a simplified production for name matching r.
func (s *simplifier) defineAs(name string, r Regex) error {
	switch r := r.(type) {
	case RText:
		s.d.DefineText(name)
	case REmpty:
		s.d.DefineEmpty(name)
	case RName:
		s.d.DefineSeq(name, r.Name)
	case RSeq:
		children := make([]string, len(r.Items))
		for i, item := range r.Items {
			c, err := s.lift(name, item)
			if err != nil {
				return err
			}
			children[i] = c
		}
		s.d.DefineSeq(name, children...)
	case RChoice:
		children := make([]string, len(r.Items))
		for i, item := range r.Items {
			c, err := s.lift(name, item)
			if err != nil {
				return err
			}
			children[i] = c
		}
		s.d.DefineChoice(name, children...)
	case RStar:
		c, err := s.lift(name, r.Item)
		if err != nil {
			return err
		}
		s.d.DefineStar(name, c)
	case RPlus:
		// x+ == (x, x*): a sequence of the lifted item and a star entity.
		c, err := s.lift(name, r.Item)
		if err != nil {
			return err
		}
		star, err := s.entity(name, RStar{Item: RName{Name: c}})
		if err != nil {
			return err
		}
		s.d.DefineSeq(name, c, star)
	case ROpt:
		// x? == (x | ε): a choice between the lifted item and an empty
		// entity.
		c, err := s.lift(name, r.Item)
		if err != nil {
			return err
		}
		empty, err := s.entity(name, REmpty{})
		if err != nil {
			return err
		}
		s.d.DefineChoice(name, c, empty)
	default:
		return fmt.Errorf("dtd: cannot simplify %T", r)
	}
	return nil
}

// Parse parses DTD text and simplifies it in one call — the common path
// for AIG specifications.
func Parse(input string) (*DTD, error) {
	g, err := ParseGeneral(input)
	if err != nil {
		return nil, err
	}
	return Simplify(g)
}

// MustParse is Parse panicking on error.
func MustParse(input string) *DTD {
	d, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return d
}
