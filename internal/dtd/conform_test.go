package dtd

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/aigrepro/aig/internal/xmltree"
)

func TestMatcherBasics(t *testing.T) {
	cases := []struct {
		model  Regex
		accept [][]string
		reject [][]string
	}{
		{
			model:  RSeq{Items: []Regex{RName{"a"}, RName{"b"}}},
			accept: [][]string{{"a", "b"}},
			reject: [][]string{{}, {"a"}, {"b", "a"}, {"a", "b", "a"}},
		},
		{
			model:  RStar{Item: RName{"a"}},
			accept: [][]string{{}, {"a"}, {"a", "a", "a"}},
			reject: [][]string{{"b"}, {"a", "b"}},
		},
		{
			model:  RChoice{Items: []Regex{RName{"a"}, RName{"b"}}},
			accept: [][]string{{"a"}, {"b"}},
			reject: [][]string{{}, {"a", "b"}},
		},
		{
			model:  RPlus{Item: RName{"a"}},
			accept: [][]string{{"a"}, {"a", "a"}},
			reject: [][]string{{}},
		},
		{
			model:  ROpt{Item: RName{"a"}},
			accept: [][]string{{}, {"a"}},
			reject: [][]string{{"a", "a"}},
		},
		{
			model:  REmpty{},
			accept: [][]string{{}},
			reject: [][]string{{"a"}},
		},
		{
			model:  RText{},
			accept: [][]string{{TextType}},
			reject: [][]string{{}, {TextType, TextType}},
		},
		{
			// ((a|b)*, c)
			model: RSeq{Items: []Regex{
				RStar{Item: RChoice{Items: []Regex{RName{"a"}, RName{"b"}}}},
				RName{"c"},
			}},
			accept: [][]string{{"c"}, {"a", "c"}, {"b", "a", "b", "c"}},
			reject: [][]string{{}, {"a"}, {"c", "a"}},
		},
	}
	for _, tc := range cases {
		m := CompileRegex(tc.model)
		for _, labels := range tc.accept {
			if !m.Match(labels) {
				t.Errorf("%s rejects %v", tc.model, labels)
			}
		}
		for _, labels := range tc.reject {
			if m.Match(labels) {
				t.Errorf("%s accepts %v", tc.model, labels)
			}
		}
	}
}

func buildConformingReport() *xmltree.Node {
	report := xmltree.NewElement("report")
	patient := report.AppendElement("patient")
	patient.AppendElement("SSN").AppendText("s1")
	patient.AppendElement("pname").AppendText("alice")
	treatments := patient.AppendElement("treatments")
	tr := treatments.AppendElement("treatment")
	tr.AppendElement("trId").AppendText("t1")
	tr.AppendElement("tname").AppendText("xray")
	tr.AppendElement("procedure")
	bill := patient.AppendElement("bill")
	item := bill.AppendElement("item")
	item.AppendElement("trId").AppendText("t1")
	item.AppendElement("price").AppendText("100")
	return report
}

func TestConformsHospital(t *testing.T) {
	d := hospitalDTD(t)
	doc := buildConformingReport()
	if err := Conforms(d, doc); err != nil {
		t.Errorf("conforming document rejected: %v", err)
	}
}

func TestConformanceViolations(t *testing.T) {
	d := hospitalDTD(t)

	wrongRoot := xmltree.NewElement("patient")
	if err := Conforms(d, wrongRoot); err == nil {
		t.Error("wrong root accepted")
	}

	doc := buildConformingReport()
	// Remove the bill: patient sequence now incomplete.
	patient := doc.Child("patient")
	patient.Children = patient.Children[:3]
	if err := Conforms(d, doc); err == nil {
		t.Error("missing bill accepted")
	}

	doc = buildConformingReport()
	// Swap SSN and pname: order matters.
	p := doc.Child("patient")
	p.Children[0], p.Children[1] = p.Children[1], p.Children[0]
	if err := Conforms(d, doc); err == nil {
		t.Error("reordered sequence accepted")
	}

	doc = buildConformingReport()
	// Undeclared element.
	doc.AppendElement("alien")
	if err := Conforms(d, doc); err == nil {
		t.Error("undeclared element accepted")
	}

	doc = buildConformingReport()
	// Element content where text is required.
	ssn := doc.Child("patient").Child("SSN")
	ssn.Children = nil
	ssn.AppendElement("pname").AppendText("x")
	if err := Conforms(d, doc); err == nil {
		t.Error("element inside PCDATA-only element accepted")
	}

	if err := Conforms(d, xmltree.NewText("just text")); err == nil {
		t.Error("text root accepted")
	}
}

func TestConformanceEmptyTextLeniency(t *testing.T) {
	d := hospitalDTD(t)
	doc := buildConformingReport()
	// A pname with no text child (the empty string was dropped) still
	// conforms.
	pname := doc.Child("patient").Child("pname")
	pname.Children = nil
	if err := Conforms(d, doc); err != nil {
		t.Errorf("empty text element rejected: %v", err)
	}
}

func TestEraseEntities(t *testing.T) {
	// General DTD with nested groups.
	g := MustParseGeneral(`
		<!ELEMENT doc ((a | b)+)>
		<!ELEMENT a (#PCDATA)>
		<!ELEMENT b (#PCDATA)>
	`)
	d, err := Simplify(g)
	if err != nil {
		t.Fatal(err)
	}
	// Build a document over the simplified DTD by wrapping children in
	// whatever entities Simplify introduced: easiest to build and check
	// by construction from the production table.
	doc := xmltree.NewElement("doc")
	p, _ := d.Production("doc")
	if p.Kind != ProdSeq || len(p.Children) != 2 {
		t.Fatalf("unexpected doc production %v", p)
	}
	// doc -> (choiceEntity, starEntity); choiceEntity -> a | b;
	// starEntity -> choiceEntity*.
	choiceName := p.Children[0]
	starName := p.Children[1]
	ce := doc.AppendElement(choiceName)
	ce.AppendElement("a").AppendText("1")
	se := doc.AppendElement(starName)
	ce2 := se.AppendElement(choiceName)
	ce2.AppendElement("b").AppendText("2")
	if err := Conforms(d, doc); err != nil {
		t.Fatalf("constructed document does not conform to simplified DTD: %v", err)
	}

	erased := EraseEntities(d, doc)
	// After erasure the document must conform to the general DTD.
	if err := NewGeneralChecker(g).Check(erased); err != nil {
		t.Errorf("erased document does not conform to general DTD: %v\n%s", err, erased)
	}
	if len(erased.Elements()) != 2 || erased.Elements()[0].Label != "a" || erased.Elements()[1].Label != "b" {
		t.Errorf("erased children = %v", erased)
	}
	// Original not mutated.
	if doc.Elements()[0].Label != choiceName {
		t.Error("EraseEntities mutated its input")
	}
}

// Property: random words over {a,b} are accepted by (a|b)* and by the
// NFA compiled from the equivalent simplified DTD productions.
func TestMatcherStarChoiceProperty(t *testing.T) {
	m := CompileRegex(RStar{Item: RChoice{Items: []Regex{RName{"a"}, RName{"b"}}}})
	f := func(word []bool) bool {
		labels := make([]string, len(word))
		for i, w := range word {
			if w {
				labels[i] = "a"
			} else {
				labels[i] = "b"
			}
		}
		return m.Match(labels)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a randomly generated tree following the simplified hospital
// DTD productions always conforms.
func TestRandomGeneratedTreeConforms(t *testing.T) {
	d := hospitalDTD(t)
	checker := NewChecker(d)
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		doc := generateConforming(r, d, d.Root, 6)
		if err := checker.Check(doc); err != nil {
			t.Fatalf("trial %d: generated tree rejected: %v\n%s", trial, err, doc)
		}
	}
}

// generateConforming builds a random tree following the DTD's productions,
// bounding recursion by maxDepth (beyond it, stars emit zero children —
// the hospital DTD's recursion goes through procedure -> treatment*).
func generateConforming(r *rand.Rand, d *DTD, label string, maxDepth int) *xmltree.Node {
	n := xmltree.NewElement(label)
	p, _ := d.Production(label)
	switch p.Kind {
	case ProdText:
		n.AppendText(strings.Repeat("x", r.Intn(4)+1))
	case ProdEmpty:
	case ProdSeq:
		for _, c := range p.Children {
			n.AppendChild(generateConforming(r, d, c, maxDepth-1))
		}
	case ProdChoice:
		c := p.Children[r.Intn(len(p.Children))]
		n.AppendChild(generateConforming(r, d, c, maxDepth-1))
	case ProdStar:
		count := 0
		if maxDepth > 0 {
			count = r.Intn(3)
		}
		for i := 0; i < count; i++ {
			n.AppendChild(generateConforming(r, d, p.Children[0], maxDepth-1))
		}
	}
	return n
}
