package dtd

import (
	"fmt"
	"sync"

	"github.com/aigrepro/aig/internal/xmltree"
)

// Checker validates XML trees against a DTD (simplified or general). It
// compiles each content model to an NFA once and caches the matchers, so
// a single Checker can validate many documents.
type Checker struct {
	root string

	mu       sync.Mutex
	matchers map[string]*Matcher
	models   map[string]Regex
}

// NewChecker builds a checker for a simplified DTD.
func NewChecker(d *DTD) *Checker {
	models := make(map[string]Regex, len(d.Prods))
	for name, p := range d.Prods {
		models[name] = ProductionRegex(p)
	}
	return &Checker{root: d.Root, models: models, matchers: make(map[string]*Matcher)}
}

// NewGeneralChecker builds a checker for a general DTD.
func NewGeneralChecker(g *General) *Checker {
	models := make(map[string]Regex, len(g.Content))
	for name, r := range g.Content {
		models[name] = r
	}
	return &Checker{root: g.Root, models: models, matchers: make(map[string]*Matcher)}
}

func (c *Checker) matcher(name string) (*Matcher, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.matchers[name]; ok {
		return m, true
	}
	model, ok := c.models[name]
	if !ok {
		return nil, false
	}
	m := CompileRegex(model)
	c.matchers[name] = m
	return m, true
}

// Check validates the document rooted at root. It returns nil iff the
// document conforms: the root is labeled with the DTD's root type, every
// element's child-label sequence is in its content model's language, and
// text nodes are leaves. The first violation is reported with its path.
func (c *Checker) Check(root *xmltree.Node) error {
	if !root.IsElement() {
		return fmt.Errorf("dtd: document root is not an element")
	}
	if root.Label != c.root {
		return fmt.Errorf("dtd: root element is %q, want %q", root.Label, c.root)
	}
	return c.checkNode(root)
}

func (c *Checker) checkNode(n *xmltree.Node) error {
	if n.IsText() {
		if len(n.Children) != 0 {
			return fmt.Errorf("dtd: text node at %s has children", n.Path())
		}
		return nil
	}
	m, ok := c.matcher(n.Label)
	if !ok {
		return fmt.Errorf("dtd: element %q at %s is not declared", n.Label, n.Path())
	}
	labels := make([]string, len(n.Children))
	for i, child := range n.Children {
		if child.IsText() {
			labels[i] = TextType
		} else {
			labels[i] = child.Label
		}
	}
	if !m.Match(labels) {
		// An element whose content model requires text may legitimately
		// hold an empty string that serialization round trips drop; accept
		// a childless element where a lone empty text node would conform.
		if len(labels) != 0 || !m.Match([]string{TextType}) {
			return fmt.Errorf("dtd: children of %s do not match %s: got %v", n.Path(), m.Model(), labels)
		}
	}
	for _, child := range n.Children {
		if err := c.checkNode(child); err != nil {
			return err
		}
	}
	return nil
}

// Conforms is a one-shot convenience: check doc against the simplified
// DTD.
func Conforms(d *DTD, doc *xmltree.Node) error {
	return NewChecker(d).Check(doc)
}

// EraseEntities rewrites a tree that conforms to a simplified DTD into the
// corresponding tree over the original general DTD by splicing out entity
// elements (the linear-time document conversion of §2, fact (2)). The
// input tree is not modified.
func EraseEntities(d *DTD, doc *xmltree.Node) *xmltree.Node {
	out := &xmltree.Node{Kind: doc.Kind, Label: doc.Label, Text: doc.Text}
	var appendConverted func(parent *xmltree.Node, n *xmltree.Node)
	appendConverted = func(parent *xmltree.Node, n *xmltree.Node) {
		if n.IsElement() && d.Entities[n.Label] {
			for _, c := range n.Children {
				appendConverted(parent, c)
			}
			return
		}
		node := &xmltree.Node{Kind: n.Kind, Label: n.Label, Text: n.Text}
		parent.AppendChild(node)
		for _, c := range n.Children {
			appendConverted(node, c)
		}
	}
	for _, c := range doc.Children {
		appendConverted(out, c)
	}
	return out
}
