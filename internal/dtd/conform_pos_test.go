package dtd

import (
	"strings"
	"testing"

	"github.com/aigrepro/aig/internal/xmltree"
)

// deepReport builds a conforming hospital document whose recursion
// (procedure -> treatment*) is unrolled to the given depth, returning
// the document and the deepest treatment node.
func deepReport(depth int) (*xmltree.Node, *xmltree.Node) {
	report := xmltree.NewElement("report")
	patient := report.AppendElement("patient")
	patient.AppendElement("SSN").AppendText("s1")
	patient.AppendElement("pname").AppendText("alice")
	treatments := patient.AppendElement("treatments")
	parent := treatments
	var deepest *xmltree.Node
	for i := 0; i < depth; i++ {
		tr := parent.AppendElement("treatment")
		tr.AppendElement("trId").AppendText("t1")
		tr.AppendElement("tname").AppendText("xray")
		parent = tr.AppendElement("procedure")
		deepest = tr
	}
	bill := patient.AppendElement("bill")
	item := bill.AppendElement("item")
	item.AppendElement("trId").AppendText("t1")
	item.AppendElement("price").AppendText("100")
	return report, deepest
}

// TestConformsErrorPathDeep: a violation buried many levels down the
// recursive part of the document must be reported with the full path to
// the offending node, not some ancestor.
func TestConformsErrorPathDeep(t *testing.T) {
	d := hospitalDTD(t)
	const depth = 7
	doc, deepest := deepReport(depth)
	if err := Conforms(d, doc); err != nil {
		t.Fatalf("deep conforming document rejected: %v", err)
	}

	wantPath := "/report/patient/treatments" +
		strings.Repeat("/treatment/procedure", depth-1) + "/treatment"

	// Drop the deepest treatment's tname: its children no longer match
	// (trId, tname, procedure).
	deepest.Children = append(deepest.Children[:1:1], deepest.Children[2])
	err := Conforms(d, doc)
	if err == nil {
		t.Fatal("mutilated deep treatment accepted")
	}
	if !strings.Contains(err.Error(), wantPath+" do not match") {
		t.Errorf("error does not locate the deep node:\n  want path %s\n  got %v", wantPath, err)
	}

	// An undeclared element at the same depth is located too.
	doc, deepest = deepReport(depth)
	deepest.Child("procedure").AppendElement("alien")
	err = Conforms(d, doc)
	if err == nil {
		t.Fatal("deep undeclared element accepted")
	}
	if !strings.Contains(err.Error(), wantPath+"/procedure") {
		t.Errorf("error does not locate the undeclared element:\n  want path under %s/procedure\n  got %v", wantPath, err)
	}

	// A text node with children is malformed wherever it hides; the path
	// names the text node itself.
	doc, deepest = deepReport(depth)
	txt := deepest.Child("trId").Children[0]
	txt.AppendChild(xmltree.NewText("nested"))
	err = Conforms(d, doc)
	if err == nil {
		t.Fatal("text node with children accepted")
	}
	if !strings.Contains(err.Error(), wantPath+"/trId/#text") {
		t.Errorf("error does not locate the malformed text node:\n  want path %s/trId/#text\n  got %v", wantPath, err)
	}
}

// mixedGeneral is a general DTD with true mixed content: text and b
// elements interleave freely under note.
const mixedGeneral = `
	<!ELEMENT note (#PCDATA | b)*>
	<!ELEMENT b (#PCDATA)>
`

// TestConformsErrorPathMixedContent: violations inside mixed content are
// reported at the offending child, with interleaved text accepted around
// them.
func TestConformsErrorPathMixedContent(t *testing.T) {
	g := MustParseGeneral(mixedGeneral)
	checker := NewGeneralChecker(g)

	note := xmltree.NewElement("note")
	note.AppendText("see ")
	note.AppendElement("b").AppendText("dosage")
	note.AppendText(" before use")
	if err := checker.Check(note); err != nil {
		t.Fatalf("mixed-content document rejected: %v", err)
	}

	// An undeclared element between text runs fails note's content model:
	// the error names the mixed parent and shows the offending label.
	note.AppendText(" and ")
	note.AppendElement("q").AppendText("?")
	err := checker.Check(note)
	if err == nil {
		t.Fatal("undeclared element in mixed content accepted")
	}
	if !strings.Contains(err.Error(), "children of /note do not match") || !strings.Contains(err.Error(), "q") {
		t.Errorf("error does not locate the mixed-content mismatch: %v", err)
	}

	// Element content inside a PCDATA-only child of the mixed region.
	note = xmltree.NewElement("note")
	note.AppendText("x")
	b := note.AppendElement("b")
	b.AppendElement("b").AppendText("nested")
	err = checker.Check(note)
	if err == nil {
		t.Fatal("element inside PCDATA-only b accepted")
	}
	if !strings.Contains(err.Error(), "/note/b") {
		t.Errorf("error does not locate the offending b: %v", err)
	}
}

// TestEraseEntitiesMixedContent: simplifying mixed content introduces
// text-carrying entities; erasing them must restore the interleaved
// text/element sequence in document order, conforming to the general
// DTD, without mutating the input.
func TestEraseEntitiesMixedContent(t *testing.T) {
	g := MustParseGeneral(mixedGeneral)
	d, err := Simplify(g)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := d.Production("note")
	if p.Kind != ProdStar {
		t.Fatalf("note production = %v, want star", p)
	}
	inner, _ := d.Production(p.Children[0])
	if inner.Kind != ProdChoice || len(inner.Children) != 2 {
		t.Fatalf("star item production = %v, want 2-way choice", inner)
	}
	// Identify the entity branch carrying text vs the b branch.
	textEnt := inner.Children[0]
	if textEnt == "b" {
		textEnt = inner.Children[1]
	}
	if tp, _ := d.Production(textEnt); tp.Kind != ProdText {
		t.Fatalf("entity %q production = %v, want text", textEnt, tp)
	}

	// note -> choice*, each choice wraps either wrapped text or a b.
	doc := xmltree.NewElement("note")
	wrap := func(build func(c *xmltree.Node)) {
		c := doc.AppendElement(p.Children[0])
		build(c)
	}
	wrap(func(c *xmltree.Node) { c.AppendElement(textEnt).AppendText("see ") })
	wrap(func(c *xmltree.Node) { c.AppendElement("b").AppendText("dosage") })
	wrap(func(c *xmltree.Node) { c.AppendElement(textEnt).AppendText(" before use") })
	if err := Conforms(d, doc); err != nil {
		t.Fatalf("constructed document does not conform to simplified DTD: %v", err)
	}

	erased := EraseEntities(d, doc)
	if err := NewGeneralChecker(g).Check(erased); err != nil {
		t.Errorf("erased document does not conform to general DTD: %v\n%s", err, erased)
	}
	var kinds []string
	for _, c := range erased.Children {
		if c.IsText() {
			kinds = append(kinds, "text:"+c.Text)
		} else {
			kinds = append(kinds, "elem:"+c.Label)
		}
	}
	want := []string{"text:see ", "elem:b", "text: before use"}
	if strings.Join(kinds, "|") != strings.Join(want, "|") {
		t.Errorf("erased children = %v, want %v", kinds, want)
	}
	if len(doc.Children) != 3 || doc.Children[0].Label != p.Children[0] {
		t.Error("EraseEntities mutated its input")
	}
}
