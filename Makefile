GO ?= go

.PHONY: all build test race vet fmt ci bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# ci is what .github/workflows/ci.yml runs.
ci: vet build race

bench:
	$(GO) test -bench . -benchmem -run '^$$'

clean:
	$(GO) clean ./...
	rm -f BENCH_1.json
