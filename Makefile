GO ?= go

.PHONY: all build test race race-serve vet fmt lint fmt-check staticcheck fuzz-smoke soak soak-ivm soak-certify soak-recover soak-fragment serve loadtest smoke-serve smoke-trace smoke-restart smoke-cluster smoke-fragment bench-ivm bench-verify bench-wal bench-cluster bench-fragment ci bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-serve focuses the race detector on the packages the serving
# daemon stresses concurrently (what CI runs on every push via `race`;
# this target is the quick local loop).
race-serve:
	$(GO) test -race -count=1 ./internal/serve ./internal/mediator ./internal/remote

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# lint runs the aiglint diagnostic engine over the example specs;
# any Error-severity diagnostic (exit 1) fails the target.
lint:
	$(GO) run ./cmd/aiglint examples

# fmt-check verifies the checked-in canonical spec fixtures are in
# aigspec.Format's canonical form.
fmt-check:
	$(GO) run ./cmd/aigfmt -l internal/aigspec/testdata

# staticcheck is pinned by version and fetched on demand, so it runs in
# CI without being a module dependency. Needs network access.
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@2025.1.1 ./...

# fuzz-smoke gives each fuzz target a short budget; regressions in the
# parsers' invariants (and the remote delta wire format) surface as
# crashes.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime 10s ./internal/aigspec
	$(GO) test -run '^$$' -fuzz FuzzParseGeneral -fuzztime 10s ./internal/dtd
	$(GO) test -run '^$$' -fuzz FuzzChangeSetWire -fuzztime 10s ./internal/remote
	$(GO) test -run '^$$' -fuzz FuzzSubscribeWire -fuzztime 10s ./internal/remote
	$(GO) test -run '^$$' -fuzz FuzzConstraintParse$$ -fuzztime 10s ./internal/xconstraint
	$(GO) test -run '^$$' -fuzz FuzzPathParse -fuzztime 10s ./internal/xpath

# soak runs the differential harness for a wall-clock budget, shrinking
# any divergence to a replayable {seed, config, ops} triple. CI runs it
# for 30s on push and 10m nightly.
soak:
	$(GO) run ./cmd/aigdiff -duration 30s -shrink

# soak-ivm cross-checks incremental view maintenance: random mutation
# sequences replayed through the change-log judge against from-scratch
# evaluation, with the truncation fallback exercised separately.
soak-ivm:
	$(GO) run ./cmd/aigdiff -ivm -n 300 -mutations 25 -shrink
	$(GO) run ./cmd/aigdiff -ivm -n 50 -mutations 15 -logcap -1 -shrink

# soak-certify is the certification soundness oracle: source constraints
# discovered per seeded instance are certified, then no must-hold
# verdict may be violated at runtime while its premises hold. Race-built
# because the acceptance bar is a race-enabled sweep.
soak-certify:
	$(GO) run -race ./cmd/aigdiff -certify -n 300 -mutations 25 -shrink

# soak-recover is the crash-recovery torture sweep: seeded mutation
# sequences journaled with snapshots at random points, then the WAL
# truncated at every byte offset of its tail record; each crash image is
# recovered and must match the pre-crash oracle exactly — tuples, table
# versions AND change logs. Race-built because the acceptance bar is a
# race-enabled sweep; divergences shrink to {seed, config, ops, offset}.
soak-recover:
	$(GO) run -race ./cmd/aigdiff -recover -n 200 -mutations 20 -snapevery 4 -shrink

# soak-fragment is the fragment serving oracle: random path expressions
# over seeded instances, the partial evaluator's fragment compared
# byte-for-byte against the post-hoc path filter after every mutation,
# and the path-filtered dependency judge's Unaffected verdicts checked
# against the actual bytes. Race-built because the acceptance bar is a
# race-enabled sweep; divergences shrink to {seed, config, paths,
# mutations}.
soak-fragment:
	$(GO) run -race ./cmd/aigdiff -fragment -n 200 -mutations 15 -paths 3 -shrink

# serve boots the XML-view daemon on the built-in hospital catalog.
serve:
	$(GO) run ./cmd/aigd -demo -addr :8080

# loadtest drives a daemon started with `make serve` and refreshes the
# committed serving baseline.
loadtest:
	$(GO) run ./cmd/aigload -url http://localhost:8080 -view report \
		-param date=d1,d2,d3 -c 8 -n 5000 -json BENCH_serve.json

# smoke-serve boots aigd, drives it with aigload and requires zero
# errors plus observed cache hits; CI runs it on every push.
smoke-serve:
	./scripts/smoke_serve.sh

# smoke-trace exercises the flight recorder end to end: a race-built
# aigd with DB1 behind a race-built aigsource must serve a kept trace
# stitching daemon-side and remote-side spans, then warm-path throughput
# with the recorder on (sampling off) must stay within 5% of recorder-off.
smoke-trace:
	./scripts/smoke_trace.sh

# smoke-restart kills and restarts the whole deployment (a durable TCP
# aigsource plus aigd with -state-dir/-cache-dir): a warm restart must
# serve the first request from the restored cache without re-evaluating,
# and a mutation applied while everything was down must drop the stale
# entry and show up in the fresh document.
smoke-restart:
	./scripts/smoke_restart.sh

# smoke-cluster runs the fleet end to end, race-built: aigrouter over
# two delta-subscribed aigd replicas mirroring one aigsource. Killing a
# replica mid-load must cost zero client errors, and the restarted
# replica must catch up over the subscription stream (an offline origin
# mutation appears in its served document) and serve warm again.
smoke-cluster:
	./scripts/smoke_cluster.sh

# smoke-fragment exercises the XPath fragment layer end to end through
# aigrouter: a path=/report fragment must byte-equal the full document,
# a mutation outside a fragment's scans must leave its cache entry warm
# (delta restamp, identical bytes), and one inside must invalidate it.
smoke-fragment:
	./scripts/smoke_fragment.sh

# bench-ivm measures warm-cache serving under a mutating workload
# (cache-off baseline vs refresher-maintained cache) and refreshes the
# committed BENCH_ivm.json; fails below a 5x speedup.
bench-ivm:
	./scripts/bench_ivm.sh

# bench-verify measures what static certification buys on the warm
# path: the hospital view served with -verify=always (every request
# re-verifies the document) against -verify (the certifier proved the
# constraints, so the pass is skipped), refreshing the committed
# BENCH_verify.json.
bench-verify:
	./scripts/bench_verify.sh

# bench-wal measures what durability costs: per-insert microbenchmarks
# (bare vs journaled vs fsync-always) and the BENCH_ivm write path with
# durable sources, which must stay within 10% of in-memory throughput
# with -fsync never. Refreshes the committed BENCH_wal.json.
bench-wal:
	./scripts/bench_wal.sh

# bench-cluster measures horizontal scaling through aigrouter: the same
# warm workload (plus a 50 writes/s origin mutation stream) against one
# replica vs four, each replica capped at a simulated service-time
# floor so the ratio is meaningful on any host. Refreshes the committed
# BENCH_cluster.json; fails below a 3x fleet speedup.
bench-cluster:
	./scripts/bench_cluster.sh

# bench-fragment measures what the fragment layer buys on a Table 1
# small-scale catalog: a small fragment must beat the full document by
# 5x on cold first-byte latency and 10x on response bytes, and warm
# full-document throughput must not regress more than 5% with fragment
# traffic in the mix. Refreshes the committed BENCH_fragment.json.
bench-fragment:
	./scripts/bench_fragment.sh

# ci is what .github/workflows/ci.yml runs (plus staticcheck, which CI
# fetches pinned).
ci: vet build race lint fmt-check fuzz-smoke soak soak-ivm soak-certify soak-recover soak-fragment smoke-serve smoke-trace smoke-restart smoke-cluster smoke-fragment bench-ivm bench-verify bench-wal bench-cluster bench-fragment

bench:
	$(GO) test -bench . -benchmem -run '^$$'

clean:
	$(GO) clean ./...
	rm -f BENCH_1.json
