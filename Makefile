GO ?= go

.PHONY: all build test race vet fmt lint fmt-check staticcheck fuzz-smoke soak ci bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# lint runs the aiglint diagnostic engine over the example specs;
# any Error-severity diagnostic (exit 1) fails the target.
lint:
	$(GO) run ./cmd/aiglint examples

# fmt-check verifies the checked-in canonical spec fixtures are in
# aigspec.Format's canonical form.
fmt-check:
	$(GO) run ./cmd/aigfmt -l internal/aigspec/testdata

# staticcheck is pinned by version and fetched on demand, so it runs in
# CI without being a module dependency. Needs network access.
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@2025.1.1 ./...

# fuzz-smoke gives each fuzz target a short budget; regressions in the
# parsers' invariants surface as crashes.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime 10s ./internal/aigspec
	$(GO) test -run '^$$' -fuzz FuzzParseGeneral -fuzztime 10s ./internal/dtd

# soak runs the differential harness for a wall-clock budget, shrinking
# any divergence to a replayable {seed, config, ops} triple. CI runs it
# for 30s on push and 10m nightly.
soak:
	$(GO) run ./cmd/aigdiff -duration 30s -shrink

# ci is what .github/workflows/ci.yml runs (plus staticcheck, which CI
# fetches pinned).
ci: vet build race lint fmt-check fuzz-smoke soak

bench:
	$(GO) test -bench . -benchmem -run '^$$'

clean:
	$(GO) clean ./...
	rm -f BENCH_1.json
