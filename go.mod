module github.com/aigrepro/aig

go 1.22
